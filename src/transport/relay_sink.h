// RelaySink: the collectd-to-collectd tier.  Plugged into a leaf
// CollectorDaemon as its DaemonSink, it forwards everything the leaf
// receives -- trace segments, drop notices, control statuses -- upstream
// to a parent collectd through embedded Uplinks, turning flat collection
// into a fan-in tree (publishers -> leaf collectd -> root collectd).
//
// The invariant that makes tiering transparent: the root must see the same
// publishers it would see with flat collection, or its merged report (one
// retained-segment group per (process_name, pid), sorted) changes shape.
// So the relay keeps one upstream uplink per *origin identity* -- the
// (process_name, pid, trace_format) from the downstream handshake,
// forwarded verbatim in the uplink's own CWHS -- never muxing two origins
// onto one connection.  A publisher that reconnects to the leaf re-uses
// its route: queued bytes keep flowing in order on the same upstream
// connection, exactly as the publisher's own reconnect to a root would.
//
// Accounting composes by construction:
//   * downstream CWDN notices fold into the route's next upstream CWDN
//     (note_drops), and the relay's own shed segments join them -- the
//     root's loss ledger is the sum over the path;
//   * downstream CWST deltas fold into the route's pending delta
//     (offer_status), surviving upstream reconnects;
//   * upstream CWCT directives are relayed downstream to the live peer of
//     that route, with the root's seq recorded against the locally
//     assigned one so the eventual acknowledgement translates back -- the
//     root observes its own seq applied, never a leaf-local number.
//     Directives arriving while the origin is between reconnects are
//     dropped (the root's policy re-issues; staged control is publisher
//     state, not relay state).
//
// Sink callbacks run on the leaf daemon's thread; directive relays run on
// uplink worker threads; one mutex serializes the route table between
// them.  Stop the leaf daemon before finish() -- the flush deadline is
// shared across every route's uplink.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "transport/subscriber.h"
#include "transport/uplink.h"

namespace causeway::transport {

class RelaySink : public DaemonSink {
 public:
  struct Options {
    std::string upstream;  // parent collectd: unix:/path or tcp:host:port
    std::size_t max_inflight_bytes{4u << 20};  // per route
    std::uint64_t reconnect_initial_ms{10};
    std::uint64_t reconnect_max_ms{1000};
    bool backoff_jitter{true};
    std::uint64_t flush_timeout_ms{5000};  // finish(): shared deadline
  };

  struct Totals {
    std::uint64_t routes{0};              // distinct origin identities seen
    std::uint64_t segments_forwarded{0};  // accepted into an uplink queue
    std::uint64_t records_forwarded{0};
    std::uint64_t drop_records_forwarded{0};  // downstream CWDN, folded up
    std::uint64_t drop_segments_forwarded{0};
    std::uint64_t statuses_forwarded{0};
    std::uint64_t directives_relayed{0};  // upstream CWCT sent downstream
    // Losses this relay itself introduced: per-route back-pressure sheds
    // plus whatever the finish() deadline abandoned.  Reported upstream
    // via CWDN like any other loss.
    std::uint64_t relay_dropped_segments{0};
    std::uint64_t relay_dropped_records{0};
    std::uint64_t upstream_bytes{0};
    std::uint64_t upstream_reconnects{0};
  };

  // Throws TransportError when the upstream spec does not parse (the same
  // configure-time validation every endpoint user gets).
  explicit RelaySink(Options options);
  ~RelaySink() override;
  RelaySink(const RelaySink&) = delete;
  RelaySink& operator=(const RelaySink&) = delete;

  // The daemon this sink is attached to, for relaying directives back down
  // to publishers.  Optional (without it, directives stop here); set it
  // before the daemon starts.
  void set_downstream(CollectorDaemon* daemon) { downstream_ = daemon; }

  // Flushes every route's uplink, all bounded by one flush_timeout_ms
  // deadline.  Returns true when every queued byte was delivered upstream.
  // Idempotent; call after the downstream daemon has stopped.
  bool finish();

  Totals totals() const;

  // DaemonSink (leaf daemon thread).
  void on_connect(const PeerInfo& peer) override;
  void on_segment(const PeerInfo& peer,
                  std::span<const std::uint8_t> segment) override;
  void on_drop_notice(const PeerInfo& peer, const DropNotice& notice) override;
  void on_status(const PeerInfo& peer, const ControlStatus& status) override;
  void on_disconnect(const PeerInfo& peer, bool clean) override;

 private:
  struct Route {
    std::unique_ptr<Uplink> uplink;
    std::uint64_t live_peer{0};  // current downstream peer_id, 0 = none
    // Directive seq translation, leaf-local -> upstream, in issue order.
    std::deque<std::pair<std::uint64_t, std::uint64_t>> seq_map;
    std::uint64_t last_upstream_acked{0};
  };

  Route* route_for_peer(std::uint64_t peer_id);  // mutex_ held by caller
  void relay_directive(Route& route, const ControlDirective& directive);

  const Options options_;
  CollectorDaemon* downstream_{nullptr};

  mutable std::mutex mutex_;
  bool finished_{false};
  bool flushed_clean_{false};
  std::map<std::string, std::unique_ptr<Route>> routes_;  // by identity key
  std::unordered_map<std::uint64_t, Route*> by_peer_;
  Totals totals_;  // counter fields only; uplink-derived fields fill at read
};

}  // namespace causeway::transport
