// IngestSink: the standard DaemonSink -- live analysis plus merged trace.
//
// This is the daemon-side synthesis step of the paper's collection phase:
// segments arriving from N publisher processes are (a) decoded and fed
// epoch-by-epoch into one shared AnalysisPipeline, exactly as `--follow`
// feeds a tailed file, and/or (b) retained verbatim for a merged `.cwt`
// written at shutdown.
//
// The merged file is written *deterministically*: segments are grouped per
// publisher -- keyed by (process name, pid), so a publisher that
// reconnected keeps one group -- in arrival order within the group, and
// the groups are emitted sorted by key.  Two runs of the same workload
// thus produce merged files whose rendered reports are byte-identical to
// an in-process collection of the same workload, regardless of how the OS
// interleaved the publishers' sockets.  Segments pass through encoded
// (TraceWriter::append_encoded); the daemon never re-encodes.
//
// Drop notices become synthesized empty bundles carrying publish_dropped,
// so transport-tier loss lands in the database counters and the anomaly
// pass (kPublishDrop) without inventing records.  The merged file cannot
// carry them -- the frozen segment format has no such field -- so merge-only
// runs surface the loss in the daemon's own counters instead.
//
// Callbacks run on the daemon thread (serialized); totals() may be polled
// from any thread; finalize() must be called after CollectorDaemon::stop().
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "analysis/pipeline.h"
#include "analysis/trace_io.h"
#include "transport/subscriber.h"

namespace causeway::transport {

class IngestSink : public DaemonSink {
 public:
  struct Options {
    // Live analysis target (not owned; may be null for merge-only runs).
    analysis::AnalysisPipeline* pipeline{nullptr};
    // Merged trace path ("" = no merged file).
    std::string merged_path;
    std::uint32_t merged_format{analysis::kTraceFormatDefault};
  };

  struct Totals {
    std::uint64_t segments{0};
    std::uint64_t records{0};
    std::uint64_t publish_dropped_records{0};
    std::uint64_t publish_dropped_segments{0};
    std::size_t merged_segments{0};  // filled by finalize()
  };

  explicit IngestSink(Options options) : options_(std::move(options)) {}

  // Invoked (on the daemon thread) after each pipeline epoch; lets a tool
  // print live summaries without subclassing.
  std::function<void(const PeerInfo&, const analysis::EpochInfo&)>
      epoch_callback;

  void on_connect(const PeerInfo& peer) override;
  void on_segment(const PeerInfo& peer,
                  std::span<const std::uint8_t> segment) override;
  void on_drop_notice(const PeerInfo& peer, const DropNotice& notice) override;
  void on_disconnect(const PeerInfo& peer, bool clean) override;

  // Writes the merged trace (when configured) and returns the totals.
  // Call once, after the daemon stopped.  Throws TraceIoError on write
  // failure.
  Totals finalize();

  Totals totals() const {
    std::lock_guard lk(mutex_);
    return totals_;
  }

 private:
  using PeerKey = std::pair<std::string, std::uint64_t>;  // (name, pid)

  Options options_;
  mutable std::mutex mutex_;
  Totals totals_;
  std::map<PeerKey, std::vector<std::vector<std::uint8_t>>> retained_;
};

}  // namespace causeway::transport
