// IngestSink: the standard DaemonSink -- live analysis plus merged trace.
//
// This is the daemon-side synthesis step of the paper's collection phase:
// segments arriving from N publisher processes are (a) decoded and fed
// epoch-by-epoch into one shared AnalysisPipeline, exactly as `--follow`
// feeds a tailed file, and/or (b) retained verbatim for a merged `.cwt`
// written at shutdown.
//
// The merged file is written *deterministically*: segments are grouped per
// publisher -- keyed by (process name, pid), so a publisher that
// reconnected keeps one group -- in arrival order within the group, and
// the groups are emitted sorted by key.  Two runs of the same workload
// thus produce merged files whose rendered reports are byte-identical to
// an in-process collection of the same workload, regardless of how the OS
// interleaved the publishers' sockets.  Segments pass through encoded
// (TraceWriter::append_encoded); the daemon never re-encodes.
//
// Drop notices become synthesized empty bundles carrying publish_dropped,
// so transport-tier loss lands in the database counters and the anomaly
// pass (kPublishDrop) without inventing records.  Control statuses (CWST)
// work the same way: the publisher's sampled-out delta becomes an empty
// bundle carrying sampled_out, so suppressed-record accounting reconciles
// inside the LogDatabase.  The merged file can carry neither -- the frozen
// segment format has no such fields -- so merge-only runs surface both in
// the daemon's own counters instead.
//
// When a ControlPolicy is attached, every callback also feeds it: peer
// lifecycle, per-segment record counts, drop notices, statuses -- and
// anomaly events, which reach the policy through the pipeline's sink list
// attributed to whichever peer's segment was being ingested (the ingest
// call is bracketed with begin/end_attribution; callbacks are serialized
// on the daemon thread, so the bracket is race-free).
//
// Callbacks run on the daemon thread (serialized); totals() may be polled
// from any thread; finalize() must be called after CollectorDaemon::stop().
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "analysis/pipeline.h"
#include "analysis/trace_io.h"
#include "store/store.h"
#include "transport/policy.h"
#include "transport/subscriber.h"

namespace causeway::transport {

class IngestSink : public DaemonSink {
 public:
  struct Options {
    // Live analysis target (not owned; may be null for merge-only runs).
    analysis::AnalysisPipeline* pipeline{nullptr};
    // Merged trace path ("" = no merged file).
    std::string merged_path;
    std::uint32_t merged_format{analysis::kTraceFormatDefault};
    // Durable store directory ("" = no store).  Unlike the merged file --
    // which is buffered and written deterministically at shutdown -- the
    // store streams every segment to disk *as it arrives*, through a
    // checkpointing, rotating store::StoreWriter: segments survive a
    // daemon crash up to the live file's last checkpoint, and sealed
    // files are queryable while the daemon still runs.  With a v5
    // store_options.trace_format, columnar (v4+) segments are transcoded
    // so their columns pick up per-column compression; pre-columnar
    // segments pass through verbatim.
    std::string store_dir;
    store::StoreOptions store_options;
    // Adaptive-monitoring policy to feed (not owned; may be null).  The
    // caller must also register it as a pipeline anomaly sink -- the
    // IngestSink only provides the attribution bracket.
    ControlPolicy* policy{nullptr};
  };

  struct Totals {
    std::uint64_t segments{0};
    std::uint64_t records{0};
    std::uint64_t publish_dropped_records{0};
    std::uint64_t publish_dropped_segments{0};
    std::uint64_t sampled_out_records{0};  // reported via CWST statuses
    std::size_t merged_segments{0};  // filled by finalize()
    std::size_t store_files_sealed{0};
    std::uint64_t store_segments{0};
  };

  // Opens (and recovers) the store directory when one is configured; see
  // store::StoreWriter.  Throws analysis::TraceIoError on failure.
  explicit IngestSink(Options options);

  // Invoked (on the daemon thread) after each pipeline epoch; lets a tool
  // print live summaries without subclassing.
  std::function<void(const PeerInfo&, const analysis::EpochInfo&)>
      epoch_callback;

  void on_connect(const PeerInfo& peer) override;
  void on_segment(const PeerInfo& peer,
                  std::span<const std::uint8_t> segment) override;
  void on_drop_notice(const PeerInfo& peer, const DropNotice& notice) override;
  void on_status(const PeerInfo& peer, const ControlStatus& status) override;
  void on_disconnect(const PeerInfo& peer, bool clean) override;

  // Writes the merged trace (when configured) and returns the totals.
  // Call once, after the daemon stopped.  Throws TraceIoError on write
  // failure.
  Totals finalize();

  Totals totals() const {
    std::lock_guard lk(mutex_);
    return totals_;
  }

 private:
  using PeerKey = std::pair<std::string, std::uint64_t>;  // (name, pid)

  Options options_;
  mutable std::mutex mutex_;
  Totals totals_;
  std::map<PeerKey, std::vector<std::vector<std::uint8_t>>> retained_;
  // Touched only from the (serialized) daemon callbacks and finalize().
  std::unique_ptr<store::StoreWriter> store_;
};

}  // namespace causeway::transport
