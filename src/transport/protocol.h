// Cross-process collection transport: the wire protocol.
//
// The paper's collection phase assumes "the scattered logs are collected"
// from genuinely separate processes (Sec. 3); this protocol is that seam
// over a Unix-domain SOCK_STREAM socket.  A publisher's byte stream is:
//
//   publisher -> daemon: [handshake] ([trace segment] | [drop notice] |
//                                     [control status])*
//   daemon -> publisher: ([control directive])*
//
// There is exactly one record encoding in the codebase: the trace segments
// on the socket are byte-for-byte the segments `TraceWriter` puts in a
// `.cwt` file (v4 columnar by default, v3 writable for bisection), framed
// by their own self-delimiting headers.  The transport adds only four tiny
// envelope frames of its own:
//
//   * handshake -- "CWHS" magic, protocol version, the publisher's pid and
//     trace format, and its process name.  Sent once per connection (and
//     again after every reconnect), so the daemon can tag everything a
//     connection delivers.
//   * drop notice -- "CWDN" magic, records + segments discarded by the
//     publisher's back-pressure bound since the last notice.  Segments are
//     dropped, never blocked on, when the daemon falls behind; the notice
//     is how that loss stays observable downstream (it surfaces as
//     CollectedLogs::publish_dropped, distinct from ring overflow).
//   * control directive -- "CWCT" magic, the protocol-2 control plane: the
//     daemon's policy steers a live publisher (probe mode, chain sampling
//     rate, interface mutes) over the same socket, against the data flow.
//     Length-prefixed body so protocol-2 readers skip fields added later.
//   * control status -- "CWST" magic, the publisher's acknowledgement: the
//     last directive applied at a drain boundary, the records sampled out
//     since the previous status, and the configuration now in force.  This
//     is how suppressed-record accounting crosses the process boundary and
//     how the policy observes that its directive landed.
//
// Version negotiation keeps old binaries safe: CWHS carries the speaker's
// protocol version; the daemon accepts [kMinProtocolVersion,
// kProtocolVersion] and closes anything newer (clean per-connection
// close).  The daemon only sends CWCT to protocol >= 2 publishers, and a
// publisher only sends CWST after the first CWCT proves the daemon has a
// control plane -- so a v1 peer on either end never sees a frame it
// cannot parse.
//
// Framing errors are TransportError; segment corruption keeps trace_io's
// taxonomy (TraceIoError).  An abruptly closed connection leaves at most
// one incomplete frame, which the daemon discards -- the same clean-prefix
// discipline TraceTail applies to a crashed writer's file.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

namespace causeway::transport {

class TransportError : public std::runtime_error {
 public:
  explicit TransportError(const std::string& what)
      : std::runtime_error(what) {}
};

inline constexpr std::uint32_t kHandshakeMagic = 0x43574853;   // "CWHS"
inline constexpr std::uint32_t kDropNoticeMagic = 0x4357444E;  // "CWDN"
inline constexpr std::uint32_t kControlMagic = 0x43574354;     // "CWCT"
inline constexpr std::uint32_t kStatusMagic = 0x43575354;      // "CWST"

// Protocol 2 added the control plane (CWCT/CWST).  Protocol 1 peers are
// still accepted -- they simply never see control frames.  Anything newer
// than kProtocolVersion is rejected at handshake: a future peer knows more
// than we do, and guessing at its frames would corrupt the stream.
inline constexpr std::uint32_t kProtocolVersion = 2;
inline constexpr std::uint32_t kMinProtocolVersion = 1;

// Sanity bound on the handshake's name field; anything larger is a framing
// error, not a buffering request.
inline constexpr std::size_t kMaxProcessNameBytes = 4096;

// Fixed drop-notice frame size: magic + two u64 counters.
inline constexpr std::size_t kDropNoticeBytes = 4 + 8 + 8;

// Sanity bound on a control/status frame body; directives are tens of
// bytes plus mute names, so anything near this is a framing error.
inline constexpr std::size_t kMaxControlBodyBytes = 1 << 16;

struct Handshake {
  std::uint32_t protocol{kProtocolVersion};
  std::uint32_t trace_format{0};  // segment version the publisher emits
  std::uint64_t pid{0};
  std::string process_name;
};

struct DropNotice {
  std::uint64_t records{0};
  std::uint64_t segments{0};
};

// A daemon -> publisher control directive.  Fields are optional exactly
// like monitor::ControlUpdate (absent = leave unchanged); `seq` is the
// daemon's monotonically increasing directive number, echoed back in
// ControlStatus::applied_seq so the policy can observe the epoch boundary
// that picked its directive up.  A directive with every field absent is
// the control-channel hello the daemon sends right after a protocol >= 2
// handshake: it changes nothing, but its acknowledgement proves the
// channel is live in both directions.
struct ControlDirective {
  std::uint64_t seq{0};
  std::optional<std::uint8_t> mode;  // monitor::ProbeMode numeric value
  std::optional<std::uint8_t> sample_rate_index;  // monitor::kSampleRates
  std::optional<bool> enabled;
  std::optional<std::vector<std::string>> muted_interfaces;

  bool empty() const {
    return !mode && !sample_rate_index && !enabled && !muted_interfaces;
  }
};

// A publisher -> daemon status report, sent after a drain boundary applied
// staged control (and whenever sampling suppressed records).  sampled_out
// is a *delta* since the previous status on this connection -- the daemon
// accumulates, so suppressed-record accounting stays exact end to end.
struct ControlStatus {
  std::uint64_t applied_seq{0};
  std::uint64_t sampled_out{0};
  std::uint8_t sample_rate_index{0};
  std::uint8_t mode{0};
};

std::vector<std::uint8_t> encode_handshake(const Handshake& hs);
std::vector<std::uint8_t> encode_drop_notice(const DropNotice& notice);
std::vector<std::uint8_t> encode_control(const ControlDirective& directive);
std::vector<std::uint8_t> encode_status(const ControlStatus& status);

// Incremental decoders for the daemon's per-connection buffer: given bytes
// that start at a frame boundary, either return the frame plus its byte
// length, or nullopt when the frame is still incomplete (read more).
// Throws TransportError on bad magic, an unsupported protocol version, or
// an absurd name length.
std::optional<std::pair<Handshake, std::size_t>> try_decode_handshake(
    std::span<const std::uint8_t> bytes);
std::optional<std::pair<DropNotice, std::size_t>> try_decode_drop_notice(
    std::span<const std::uint8_t> bytes);
std::optional<std::pair<ControlDirective, std::size_t>> try_decode_control(
    std::span<const std::uint8_t> bytes);
std::optional<std::pair<ControlStatus, std::size_t>> try_decode_status(
    std::span<const std::uint8_t> bytes);

// Peeks the frame magic at the head of `bytes` (0 when fewer than four
// bytes are buffered).  Lets the daemon demultiplex envelope frames from
// trace segments without consuming anything.
std::uint32_t peek_frame_magic(std::span<const std::uint8_t> bytes);

}  // namespace causeway::transport
