// Cross-process collection transport: the wire protocol.
//
// The paper's collection phase assumes "the scattered logs are collected"
// from genuinely separate processes (Sec. 3); this protocol is that seam
// over a Unix-domain SOCK_STREAM socket.  A publisher's byte stream is:
//
//   [handshake frame] ([trace segment] | [drop notice])*
//
// There is exactly one record encoding in the codebase: the trace segments
// on the socket are byte-for-byte the segments `TraceWriter` puts in a
// `.cwt` file (v4 columnar by default, v3 writable for bisection), framed
// by their own self-delimiting headers.  The transport adds only two tiny
// envelope frames of its own:
//
//   * handshake -- "CWHS" magic, protocol version, the publisher's pid and
//     trace format, and its process name.  Sent once per connection (and
//     again after every reconnect), so the daemon can tag everything a
//     connection delivers.
//   * drop notice -- "CWDN" magic, records + segments discarded by the
//     publisher's back-pressure bound since the last notice.  Segments are
//     dropped, never blocked on, when the daemon falls behind; the notice
//     is how that loss stays observable downstream (it surfaces as
//     CollectedLogs::publish_dropped, distinct from ring overflow).
//
// Framing errors are TransportError; segment corruption keeps trace_io's
// taxonomy (TraceIoError).  An abruptly closed connection leaves at most
// one incomplete frame, which the daemon discards -- the same clean-prefix
// discipline TraceTail applies to a crashed writer's file.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

namespace causeway::transport {

class TransportError : public std::runtime_error {
 public:
  explicit TransportError(const std::string& what)
      : std::runtime_error(what) {}
};

inline constexpr std::uint32_t kHandshakeMagic = 0x43574853;   // "CWHS"
inline constexpr std::uint32_t kDropNoticeMagic = 0x4357444E;  // "CWDN"
inline constexpr std::uint32_t kProtocolVersion = 1;

// Sanity bound on the handshake's name field; anything larger is a framing
// error, not a buffering request.
inline constexpr std::size_t kMaxProcessNameBytes = 4096;

// Fixed drop-notice frame size: magic + two u64 counters.
inline constexpr std::size_t kDropNoticeBytes = 4 + 8 + 8;

struct Handshake {
  std::uint32_t protocol{kProtocolVersion};
  std::uint32_t trace_format{0};  // segment version the publisher emits
  std::uint64_t pid{0};
  std::string process_name;
};

struct DropNotice {
  std::uint64_t records{0};
  std::uint64_t segments{0};
};

std::vector<std::uint8_t> encode_handshake(const Handshake& hs);
std::vector<std::uint8_t> encode_drop_notice(const DropNotice& notice);

// Incremental decoders for the daemon's per-connection buffer: given bytes
// that start at a frame boundary, either return the frame plus its byte
// length, or nullopt when the frame is still incomplete (read more).
// Throws TransportError on bad magic, an unsupported protocol version, or
// an absurd name length.
std::optional<std::pair<Handshake, std::size_t>> try_decode_handshake(
    std::span<const std::uint8_t> bytes);
std::optional<std::pair<DropNotice, std::size_t>> try_decode_drop_notice(
    std::span<const std::uint8_t> bytes);

// Peeks the frame magic at the head of `bytes` (0 when fewer than four
// bytes are buffered).  Lets the daemon demultiplex envelope frames from
// trace segments without consuming anything.
std::uint32_t peek_frame_magic(std::span<const std::uint8_t> bytes);

}  // namespace causeway::transport
