#include "transport/protocol.h"

#include "common/strings.h"
#include "common/wire.h"

namespace causeway::transport {

std::vector<std::uint8_t> encode_handshake(const Handshake& hs) {
  if (hs.process_name.size() > kMaxProcessNameBytes) {
    throw TransportError("handshake process name too long");
  }
  WireBuffer buf;
  buf.write_u32(kHandshakeMagic);
  buf.write_u32(hs.protocol);
  buf.write_u32(hs.trace_format);
  buf.write_u64(hs.pid);
  buf.write_string(hs.process_name);
  return std::move(buf).take();
}

std::vector<std::uint8_t> encode_drop_notice(const DropNotice& notice) {
  WireBuffer buf;
  buf.write_u32(kDropNoticeMagic);
  buf.write_u64(notice.records);
  buf.write_u64(notice.segments);
  return std::move(buf).take();
}

std::optional<std::pair<Handshake, std::size_t>> try_decode_handshake(
    std::span<const std::uint8_t> bytes) {
  WireCursor cur(bytes);
  try {
    const std::uint32_t magic = cur.read_u32();
    if (magic != kHandshakeMagic) {
      throw TransportError(
          strf("bad handshake magic 0x%08x (connection is not a causeway "
               "publisher)",
               magic));
    }
    Handshake hs;
    hs.protocol = cur.read_u32();
    if (hs.protocol < kMinProtocolVersion || hs.protocol > kProtocolVersion) {
      // A peer from the future knows frames we do not; guessing would
      // corrupt the stream, so the connection is closed cleanly instead.
      throw TransportError(
          strf("unsupported transport protocol version %u (this build "
               "speaks %u..%u)",
               hs.protocol, kMinProtocolVersion, kProtocolVersion));
    }
    hs.trace_format = cur.read_u32();
    hs.pid = cur.read_u64();
    // Bounds-check the name length before read_string pends on it, so a
    // garbage length is a protocol error now rather than an unbounded
    // buffering request.
    const std::size_t header = cur.position();
    if (cur.remaining() >= 4) {
      std::uint32_t len = 0;
      for (std::size_t i = 0; i < 4; ++i) {
        len |= static_cast<std::uint32_t>(bytes[header + i]) << (8 * i);
      }
      if (len > kMaxProcessNameBytes) {
        throw TransportError(
            strf("handshake process name length %u exceeds limit", len));
      }
    }
    hs.process_name = cur.read_string();
    return std::make_pair(std::move(hs), cur.position());
  } catch (const WireError&) {
    return std::nullopt;  // incomplete frame: read more and retry
  }
}

std::optional<std::pair<DropNotice, std::size_t>> try_decode_drop_notice(
    std::span<const std::uint8_t> bytes) {
  if (bytes.size() < kDropNoticeBytes) return std::nullopt;
  WireCursor cur(bytes);
  const std::uint32_t magic = cur.read_u32();
  if (magic != kDropNoticeMagic) {
    throw TransportError(strf("bad drop-notice magic 0x%08x", magic));
  }
  DropNotice notice;
  notice.records = cur.read_u64();
  notice.segments = cur.read_u64();
  return std::make_pair(notice, cur.position());
}

namespace {

// Control and status frames share one envelope: magic, u32 body length,
// body.  The explicit length keeps the frames skippable: a protocol-2
// reader facing a body with fields appended by protocol 3 parses what it
// knows and steps over the rest.
std::vector<std::uint8_t> encode_enveloped(std::uint32_t magic,
                                           WireBuffer&& body) {
  std::vector<std::uint8_t> body_bytes = std::move(body).take();
  WireBuffer buf;
  buf.write_u32(magic);
  buf.write_u32(static_cast<std::uint32_t>(body_bytes.size()));
  buf.append_raw(body_bytes);
  return std::move(buf).take();
}

// Returns the body span (and total frame size) once fully buffered;
// nullopt while incomplete.  Throws on wrong magic or an absurd length.
std::optional<std::pair<std::span<const std::uint8_t>, std::size_t>>
try_frame_body(std::span<const std::uint8_t> bytes, std::uint32_t want_magic,
               const char* what) {
  if (bytes.size() < 8) return std::nullopt;
  WireCursor cur(bytes);
  const std::uint32_t magic = cur.read_u32();
  if (magic != want_magic) {
    throw TransportError(strf("bad %s magic 0x%08x", what, magic));
  }
  const std::uint32_t body_len = cur.read_u32();
  if (body_len > kMaxControlBodyBytes) {
    throw TransportError(strf("%s body length %u exceeds limit", what,
                              body_len));
  }
  if (bytes.size() < 8 + static_cast<std::size_t>(body_len)) {
    return std::nullopt;  // incomplete: read more and retry
  }
  return std::make_pair(bytes.subspan(8, body_len),
                        8 + static_cast<std::size_t>(body_len));
}

// ControlDirective body flag bits (presence of each optional field).
constexpr std::uint8_t kHasMode = 1;
constexpr std::uint8_t kHasSampleRate = 2;
constexpr std::uint8_t kHasEnabled = 4;
constexpr std::uint8_t kHasMutes = 8;

}  // namespace

std::vector<std::uint8_t> encode_control(const ControlDirective& directive) {
  WireBuffer body;
  body.write_u64(directive.seq);
  std::uint8_t flags = 0;
  if (directive.mode) flags |= kHasMode;
  if (directive.sample_rate_index) flags |= kHasSampleRate;
  if (directive.enabled) flags |= kHasEnabled;
  if (directive.muted_interfaces) flags |= kHasMutes;
  body.write_u8(flags);
  if (directive.mode) body.write_u8(*directive.mode);
  if (directive.sample_rate_index) body.write_u8(*directive.sample_rate_index);
  if (directive.enabled) body.write_u8(*directive.enabled ? 1 : 0);
  if (directive.muted_interfaces) {
    body.write_varint(directive.muted_interfaces->size());
    for (const std::string& name : *directive.muted_interfaces) {
      body.write_string(name);
    }
  }
  return encode_enveloped(kControlMagic, std::move(body));
}

std::vector<std::uint8_t> encode_status(const ControlStatus& status) {
  WireBuffer body;
  body.write_u64(status.applied_seq);
  body.write_u64(status.sampled_out);
  body.write_u8(status.sample_rate_index);
  body.write_u8(status.mode);
  return encode_enveloped(kStatusMagic, std::move(body));
}

std::optional<std::pair<ControlDirective, std::size_t>> try_decode_control(
    std::span<const std::uint8_t> bytes) {
  const auto frame = try_frame_body(bytes, kControlMagic, "control");
  if (!frame) return std::nullopt;
  try {
    WireCursor cur(frame->first);
    ControlDirective directive;
    directive.seq = cur.read_u64();
    const std::uint8_t flags = cur.read_u8();
    if (flags & kHasMode) directive.mode = cur.read_u8();
    if (flags & kHasSampleRate) directive.sample_rate_index = cur.read_u8();
    if (flags & kHasEnabled) directive.enabled = cur.read_u8() != 0;
    if (flags & kHasMutes) {
      const std::uint64_t count = cur.read_varint();
      if (count > 4096) {
        throw TransportError("control directive mute list absurdly long");
      }
      std::vector<std::string> mutes;
      mutes.reserve(static_cast<std::size_t>(count));
      for (std::uint64_t i = 0; i < count; ++i) {
        mutes.emplace_back(cur.read_string());
      }
      directive.muted_interfaces = std::move(mutes);
    }
    // Any remaining body bytes belong to a newer protocol: skip them.
    return std::make_pair(std::move(directive), frame->second);
  } catch (const WireError&) {
    // The body length said the frame is complete; a truncated body inside
    // it is corruption, not a short read.
    throw TransportError("corrupt control directive body");
  }
}

std::optional<std::pair<ControlStatus, std::size_t>> try_decode_status(
    std::span<const std::uint8_t> bytes) {
  const auto frame = try_frame_body(bytes, kStatusMagic, "status");
  if (!frame) return std::nullopt;
  try {
    WireCursor cur(frame->first);
    ControlStatus status;
    status.applied_seq = cur.read_u64();
    status.sampled_out = cur.read_u64();
    status.sample_rate_index = cur.read_u8();
    status.mode = cur.read_u8();
    return std::make_pair(status, frame->second);
  } catch (const WireError&) {
    throw TransportError("corrupt control status body");
  }
}

std::uint32_t peek_frame_magic(std::span<const std::uint8_t> bytes) {
  if (bytes.size() < 4) return 0;
  std::uint32_t magic = 0;
  for (std::size_t i = 0; i < 4; ++i) {
    magic |= static_cast<std::uint32_t>(bytes[i]) << (8 * i);
  }
  return magic;
}

}  // namespace causeway::transport
