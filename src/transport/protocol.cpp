#include "transport/protocol.h"

#include "common/strings.h"
#include "common/wire.h"

namespace causeway::transport {

std::vector<std::uint8_t> encode_handshake(const Handshake& hs) {
  if (hs.process_name.size() > kMaxProcessNameBytes) {
    throw TransportError("handshake process name too long");
  }
  WireBuffer buf;
  buf.write_u32(kHandshakeMagic);
  buf.write_u32(hs.protocol);
  buf.write_u32(hs.trace_format);
  buf.write_u64(hs.pid);
  buf.write_string(hs.process_name);
  return std::move(buf).take();
}

std::vector<std::uint8_t> encode_drop_notice(const DropNotice& notice) {
  WireBuffer buf;
  buf.write_u32(kDropNoticeMagic);
  buf.write_u64(notice.records);
  buf.write_u64(notice.segments);
  return std::move(buf).take();
}

std::optional<std::pair<Handshake, std::size_t>> try_decode_handshake(
    std::span<const std::uint8_t> bytes) {
  WireCursor cur(bytes);
  try {
    const std::uint32_t magic = cur.read_u32();
    if (magic != kHandshakeMagic) {
      throw TransportError(
          strf("bad handshake magic 0x%08x (connection is not a causeway "
               "publisher)",
               magic));
    }
    Handshake hs;
    hs.protocol = cur.read_u32();
    if (hs.protocol != kProtocolVersion) {
      throw TransportError(
          strf("unsupported transport protocol version %u (this build "
               "speaks %u)",
               hs.protocol, kProtocolVersion));
    }
    hs.trace_format = cur.read_u32();
    hs.pid = cur.read_u64();
    // Bounds-check the name length before read_string pends on it, so a
    // garbage length is a protocol error now rather than an unbounded
    // buffering request.
    const std::size_t header = cur.position();
    if (cur.remaining() >= 4) {
      std::uint32_t len = 0;
      for (std::size_t i = 0; i < 4; ++i) {
        len |= static_cast<std::uint32_t>(bytes[header + i]) << (8 * i);
      }
      if (len > kMaxProcessNameBytes) {
        throw TransportError(
            strf("handshake process name length %u exceeds limit", len));
      }
    }
    hs.process_name = cur.read_string();
    return std::make_pair(std::move(hs), cur.position());
  } catch (const WireError&) {
    return std::nullopt;  // incomplete frame: read more and retry
  }
}

std::optional<std::pair<DropNotice, std::size_t>> try_decode_drop_notice(
    std::span<const std::uint8_t> bytes) {
  if (bytes.size() < kDropNoticeBytes) return std::nullopt;
  WireCursor cur(bytes);
  const std::uint32_t magic = cur.read_u32();
  if (magic != kDropNoticeMagic) {
    throw TransportError(strf("bad drop-notice magic 0x%08x", magic));
  }
  DropNotice notice;
  notice.records = cur.read_u64();
  notice.segments = cur.read_u64();
  return std::make_pair(notice, cur.position());
}

std::uint32_t peek_frame_magic(std::span<const std::uint8_t> bytes) {
  if (bytes.size() < 4) return 0;
  std::uint32_t magic = 0;
  for (std::size_t i = 0; i < 4; ++i) {
    magic |= static_cast<std::uint32_t>(bytes[i]) << (8 * i);
  }
  return magic;
}

}  // namespace causeway::transport
