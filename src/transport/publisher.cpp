#include "transport/publisher.h"

#include <algorithm>
#include <chrono>

#include "analysis/trace_io.h"

namespace causeway::transport {

namespace {

std::uint64_t steady_ms() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

UplinkConfig EpochPublisher::uplink_config(const PublisherConfig& config,
                                           std::uint32_t trace_format) {
  UplinkConfig uc;
  uc.address = config.address;
  uc.process_name = config.process_name;
  uc.trace_format = trace_format;
  uc.max_inflight_bytes = config.max_inflight_bytes;
  uc.reconnect_initial_ms = config.reconnect_initial_ms;
  uc.reconnect_max_ms = config.reconnect_max_ms;
  uc.backoff_jitter = config.backoff_jitter;
  uc.sndbuf_bytes = config.sndbuf_bytes;
  return uc;
}

EpochPublisher::EpochPublisher(monitor::Collector& collector,
                               PublisherConfig config)
    : collector_(collector),
      config_(std::move(config)),
      trace_format_(config_.trace_format != 0 ? config_.trace_format
                                              : analysis::kTraceFormatDefault),
      uplink_(uplink_config(config_, trace_format_),
              [this](const ControlDirective& d) { handle_directive(d); }) {
  if (config_.interval_ms == 0) config_.interval_ms = 1;
}

EpochPublisher::~EpochPublisher() { finish(); }

void EpochPublisher::start() {
  std::lock_guard lk(mutex_);
  if (started_) return;
  started_ = true;
  uplink_.start();
  worker_ = std::thread([this] { run(); });
}

bool EpochPublisher::finish() {
  {
    std::lock_guard lk(mutex_);
    if (finished_) return flushed_clean_;
    finished_ = true;
    if (!started_) {
      // Never started: run the worker just for the final drain.
      started_ = true;
      worker_ = std::thread([this] { run(); });
    }
    stop_requested_ = true;
  }
  cv_.notify_all();
  worker_.join();
  // The final epoch is queued by now; the uplink owns the bounded flush
  // (and, when the daemon never answered, the drop accounting).
  const bool clean = uplink_.finish(config_.flush_timeout_ms);
  std::lock_guard lk(mutex_);
  flushed_clean_ = clean;
  return clean;
}

EpochPublisher::Stats EpochPublisher::stats() const {
  const Uplink::Stats u = uplink_.stats();
  Stats s;
  s.epochs_drained = epochs_drained_.load(std::memory_order_relaxed);
  s.segments_sent = u.segments_sent;
  s.records_sent = u.records_sent;
  s.bytes_sent = u.bytes_sent;
  s.dropped_segments = u.dropped_segments;
  s.dropped_records = u.dropped_records;
  s.reconnects = u.reconnects;
  s.directives_received = u.directives_received;
  s.sampled_out_records = sampled_out_records_.load(std::memory_order_relaxed);
  s.last_applied_seq = last_applied_seq_.load(std::memory_order_relaxed);
  return s;
}

void EpochPublisher::run() {
  std::uint64_t interval = config_.interval_ms;
  std::uint64_t next_drain = steady_ms() + interval;
  for (;;) {
    {
      std::lock_guard lk(mutex_);
      if (stop_requested_) break;
    }
    if (steady_ms() >= next_drain) {
      drain_once(false);
      if (config_.adaptive) {
        interval = monitor::adaptive_interval_ms(
            interval, config_.interval_ms, last_drain_dropped_,
            last_drain_utilization_);
      }
      next_drain = steady_ms() + interval;
    }
    std::unique_lock lk(mutex_);
    if (stop_requested_) break;
    const std::uint64_t now = steady_ms();
    const std::uint64_t wait = next_drain > now ? next_drain - now : 1;
    cv_.wait_for(lk, std::chrono::milliseconds(std::max<std::uint64_t>(
                         wait, 1)));
  }
  // Shutdown: ship the final epoch -- always, even when empty, so the
  // daemon learns the full domain inventory.
  drain_once(true);
}

void EpochPublisher::drain_once(bool final_drain) {
  // Everything staged up to here -- directive seq staged_seq_ -- is what
  // this drain boundary applies.  (Directives landing mid-drain are applied
  // and acknowledged by the next epoch.)
  const std::uint64_t applied_seq =
      staged_seq_.load(std::memory_order_acquire);
  monitor::CollectedLogs logs = collector_.drain();
  epochs_drained_.fetch_add(1, std::memory_order_relaxed);
  last_applied_seq_.store(applied_seq, std::memory_order_relaxed);
  sampled_out_records_.fetch_add(logs.sampled_out, std::memory_order_relaxed);
  last_drain_dropped_ = logs.dropped;
  last_drain_utilization_ = logs.ring_utilization;

  // Control acknowledgement / sampled-out accounting.  The uplink ships a
  // CWST when its control channel is live and there is something to say;
  // otherwise it holds the delta (across reconnects) for a later status.
  // A publisher that refuses control never speaks CWST at all.
  if (config_.accept_control) {
    const std::uint8_t mode =
        logs.domains.empty() ? 0
                             : static_cast<std::uint8_t>(logs.domains[0].mode);
    uplink_.offer_status(applied_seq, logs.sampled_out,
                         current_rate_index_.load(std::memory_order_relaxed),
                         mode);
  }

  // Empty intermediate epochs carry nothing a later epoch will not repeat
  // (every drain re-lists every domain), so skip the wire traffic.  The
  // final epoch always ships: it is the domain inventory of record for a
  // process that logged nothing.
  if (!final_drain && logs.records.empty() && logs.dropped == 0) return;
  // encode_trace gathers the drained records into columns and emits them
  // through the batch varint write kernels -- the publisher's per-epoch
  // encode cost is the columnar writer's, not a per-record byte loop.
  const std::uint64_t records = logs.records.size();
  uplink_.offer_segment(analysis::encode_trace(logs, trace_format_), records);
}

void EpochPublisher::handle_directive(const ControlDirective& directive) {
  if (!config_.accept_control) return;  // decoded for framing, then ignored
  staged_seq_.store(directive.seq, std::memory_order_release);
  monitor::ControlUpdate update;
  if (directive.mode && *directive.mode <= 2) {
    update.mode = static_cast<monitor::ProbeMode>(*directive.mode);
  }
  if (directive.sample_rate_index &&
      *directive.sample_rate_index < monitor::kSampleRateCount) {
    update.sample_rate_index = *directive.sample_rate_index;
    current_rate_index_.store(*directive.sample_rate_index,
                              std::memory_order_relaxed);
  }
  if (directive.enabled) update.enabled = *directive.enabled;
  if (directive.muted_interfaces) {
    update.muted_interfaces = *directive.muted_interfaces;
  }
  if (!update.empty()) collector_.stage_control(update);
}

}  // namespace causeway::transport
