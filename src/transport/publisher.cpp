#include "transport/publisher.h"

#include <chrono>
#include <cstring>

#if defined(__unix__) || defined(__APPLE__)
#include <fcntl.h>
#include <sys/un.h>
#endif

#include "analysis/trace_io.h"
#include "common/strings.h"
#include "common/wire_io.h"

namespace causeway::transport {

#if !defined(CAUSEWAY_HAS_POSIX_IO)
#error "the collection transport requires POSIX sockets"
#endif

namespace {

std::uint64_t steady_ms() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

EpochPublisher::EpochPublisher(monitor::Collector& collector,
                               PublisherConfig config)
    : collector_(collector),
      config_(std::move(config)),
      trace_format_(config_.trace_format != 0 ? config_.trace_format
                                              : analysis::kTraceFormatDefault) {
  sockaddr_un addr{};
  if (config_.socket_path.size() >= sizeof(addr.sun_path)) {
    throw TransportError(
        strf("socket path too long (%zu bytes, limit %zu): %s",
             config_.socket_path.size(), sizeof(addr.sun_path) - 1,
             config_.socket_path.c_str()));
  }
  if (config_.interval_ms == 0) config_.interval_ms = 1;
}

EpochPublisher::~EpochPublisher() { finish(); }

void EpochPublisher::start() {
  std::lock_guard lk(mutex_);
  if (started_) return;
  started_ = true;
  worker_ = std::thread([this] { run(); });
}

bool EpochPublisher::finish() {
  {
    std::lock_guard lk(mutex_);
    if (finished_) return flushed_clean_;
    finished_ = true;
    if (!started_) {
      // Never started: run the worker just for the final drain + flush.
      started_ = true;
      worker_ = std::thread([this] { run(); });
    }
    stop_requested_ = true;
  }
  cv_.notify_all();
  worker_.join();
  return flushed_clean_;
}

EpochPublisher::Stats EpochPublisher::stats() const {
  Stats s;
  s.epochs_drained = epochs_drained_.load(std::memory_order_relaxed);
  s.segments_sent = segments_sent_.load(std::memory_order_relaxed);
  s.records_sent = records_sent_.load(std::memory_order_relaxed);
  s.bytes_sent = bytes_sent_.load(std::memory_order_relaxed);
  s.dropped_segments = dropped_segments_.load(std::memory_order_relaxed);
  s.dropped_records = dropped_records_.load(std::memory_order_relaxed);
  s.reconnects = reconnects_.load(std::memory_order_relaxed);
  s.directives_received = directives_received_.load(std::memory_order_relaxed);
  s.sampled_out_records = sampled_out_records_.load(std::memory_order_relaxed);
  s.last_applied_seq = last_applied_seq_.load(std::memory_order_relaxed);
  return s;
}

bool EpochPublisher::queue_empty() const {
  for (const Entry& e : queue_) {
    if (e.is_segment) return false;
  }
  return true;
}

void EpochPublisher::run() {
  std::uint64_t interval = config_.interval_ms;
  std::uint64_t last_ring_dropped = 0;
  double last_utilization = 0.0;
  std::uint64_t next_drain = steady_ms() + interval;
  for (;;) {
    const std::uint64_t now = steady_ms();
    bool stop = false;
    {
      std::lock_guard lk(mutex_);
      stop = stop_requested_;
    }
    if (stop) break;

    if (now >= next_drain) {
      drain_once(false);
      {
        std::lock_guard lk(mutex_);
        last_ring_dropped = last_drain_dropped_;
        last_utilization = last_drain_utilization_;
      }
      if (config_.adaptive) {
        interval = monitor::adaptive_interval_ms(
            interval, config_.interval_ms, last_ring_dropped,
            last_utilization);
      }
      next_drain = steady_ms() + interval;
    }

    ensure_connected(now);
    if (connected_.load(std::memory_order_relaxed)) read_socket();
    if (connected_.load(std::memory_order_relaxed)) pump_socket();

    // Sleep until the next drain, the next reconnect attempt, or a short
    // retry tick when the socket pushed back (EAGAIN with data queued).
    std::uint64_t wait = next_drain > now ? next_drain - now : 1;
    if (!connected_.load(std::memory_order_relaxed)) {
      if (next_connect_ms_ > now) {
        wait = std::min(wait, next_connect_ms_ - now);
      } else {
        wait = std::min<std::uint64_t>(wait, 1);
      }
    } else {
      std::lock_guard lk(mutex_);
      if (!queue_.empty()) wait = std::min<std::uint64_t>(wait, 2);
    }
    std::unique_lock lk(mutex_);
    if (!stop_requested_) {
      cv_.wait_for(lk, std::chrono::milliseconds(std::max<std::uint64_t>(
                           wait, 1)));
    }
  }

  // Shutdown: ship the final epoch -- always, even when empty, so the
  // daemon learns the full domain inventory -- then flush with a deadline.
  drain_once(true);
  const std::uint64_t deadline = steady_ms() + config_.flush_timeout_ms;
  for (;;) {
    const std::uint64_t now = steady_ms();
    ensure_connected(now);
    if (connected_.load(std::memory_order_relaxed)) read_socket();
    if (connected_.load(std::memory_order_relaxed)) pump_socket();
    {
      std::lock_guard lk(mutex_);
      if (queue_empty()) break;
    }
    if (now >= deadline) break;
    std::unique_lock lk(mutex_);
    cv_.wait_for(lk, std::chrono::milliseconds(1));
  }
  {
    std::lock_guard lk(mutex_);
    flushed_clean_ = queue_empty();
    if (!flushed_clean_) {
      for (const Entry& e : queue_) {
        if (!e.is_segment) continue;
        dropped_segments_.fetch_add(1, std::memory_order_relaxed);
        dropped_records_.fetch_add(e.records, std::memory_order_relaxed);
      }
      queue_.clear();
      inflight_segment_bytes_ = 0;
      front_offset_ = 0;
    }
  }
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
    connected_.store(false, std::memory_order_relaxed);
  }
}

void EpochPublisher::drain_once(bool final_drain) {
  // Everything staged up to here -- directive seq staged_seq_ -- is what
  // this drain boundary applies (read_socket and drain_once share the
  // worker thread, so no directive can slip in mid-drain).
  const std::uint64_t applied_seq = staged_seq_;
  monitor::CollectedLogs logs = collector_.drain();
  epochs_drained_.fetch_add(1, std::memory_order_relaxed);
  last_applied_seq_.store(applied_seq, std::memory_order_relaxed);
  sampled_out_records_.fetch_add(logs.sampled_out, std::memory_order_relaxed);
  {
    std::lock_guard lk(mutex_);
    last_drain_dropped_ = logs.dropped;
    last_drain_utilization_ = logs.ring_utilization;
  }

  // Control acknowledgement / sampled-out accounting.  A status ships when
  // there is something to say (a directive newly applied, or records
  // suppressed) and the channel is live; otherwise the delta is held so a
  // later status -- possibly on the next connection -- carries it.
  const std::uint64_t sampled_delta =
      logs.sampled_out + pending_status_sampled_out_;
  pending_status_sampled_out_ = 0;
  if (control_live_ &&
      (applied_seq != last_status_seq_ || sampled_delta > 0)) {
    ControlStatus status;
    status.applied_seq = applied_seq;
    status.sampled_out = sampled_delta;
    status.sample_rate_index = current_rate_index_;
    status.mode = logs.domains.empty()
                      ? 0
                      : static_cast<std::uint8_t>(logs.domains[0].mode);
    Entry e{encode_status(status), 0, /*is_segment=*/false};
    e.is_status = true;
    e.status_sampled_out = sampled_delta;
    {
      std::lock_guard lk(mutex_);
      queue_.push_back(std::move(e));
    }
    last_status_seq_ = applied_seq;
  } else {
    pending_status_sampled_out_ = sampled_delta;
  }

  // Empty intermediate epochs carry nothing a later epoch will not repeat
  // (every drain re-lists every domain), so skip the wire traffic.  The
  // final epoch always ships: it is the domain inventory of record for a
  // process that logged nothing.
  if (!final_drain && logs.records.empty() && logs.dropped == 0) return;
  const std::uint64_t records = logs.records.size();
  enqueue_segment(analysis::encode_trace(logs, trace_format_), records);
}

void EpochPublisher::handle_directive(const ControlDirective& directive) {
  directives_received_.fetch_add(1, std::memory_order_relaxed);
  if (!config_.accept_control) return;  // decoded for framing, then ignored
  control_live_ = true;
  staged_seq_ = directive.seq;
  monitor::ControlUpdate update;
  if (directive.mode && *directive.mode <= 2) {
    update.mode = static_cast<monitor::ProbeMode>(*directive.mode);
  }
  if (directive.sample_rate_index &&
      *directive.sample_rate_index < monitor::kSampleRateCount) {
    update.sample_rate_index = *directive.sample_rate_index;
    current_rate_index_ = *directive.sample_rate_index;
  }
  if (directive.enabled) update.enabled = *directive.enabled;
  if (directive.muted_interfaces) {
    update.muted_interfaces = *directive.muted_interfaces;
  }
  if (!update.empty()) collector_.stage_control(update);
}

void EpochPublisher::read_socket() {
  std::uint8_t chunk[4096];
  for (;;) {
    const long got = io_read_some(fd_, chunk, sizeof(chunk));
    if (got < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      handle_disconnect();
      return;
    }
    if (got == 0) {  // daemon closed its end
      handle_disconnect();
      return;
    }
    in_buffer_.insert(in_buffer_.end(), chunk, chunk + got);
    try {
      std::size_t consumed = 0;
      for (;;) {
        const std::span<const std::uint8_t> rest(in_buffer_.data() + consumed,
                                                 in_buffer_.size() - consumed);
        if (rest.empty()) break;
        auto directive = try_decode_control(rest);
        if (!directive) break;
        consumed += directive->second;
        handle_directive(directive->first);
      }
      if (consumed > 0) {
        in_buffer_.erase(
            in_buffer_.begin(),
            in_buffer_.begin() + static_cast<std::ptrdiff_t>(consumed));
      }
    } catch (const std::exception&) {
      // Garbage on the control channel: same containment as the daemon's --
      // drop the connection, reconnect fresh.
      handle_disconnect();
      return;
    }
    if (static_cast<std::size_t>(got) < sizeof(chunk)) return;
  }
}

void EpochPublisher::enqueue_segment(std::vector<std::uint8_t> bytes,
                                     std::uint64_t records) {
  std::lock_guard lk(mutex_);
  if (inflight_segment_bytes_ + bytes.size() > config_.max_inflight_bytes) {
    // Back-pressure: the daemon (or the socket to it) is behind.  Drop the
    // *new* segment whole -- the queued clean prefix is never cannibalized
    // -- and remember the loss for the next drop notice.
    dropped_segments_.fetch_add(1, std::memory_order_relaxed);
    dropped_records_.fetch_add(records, std::memory_order_relaxed);
    pending_drop_records_ += records;
    pending_drop_segments_ += 1;
    return;
  }
  inflight_segment_bytes_ += bytes.size();
  queue_.push_back(Entry{std::move(bytes), records, /*is_segment=*/true});
}

bool EpochPublisher::ensure_connected(std::uint64_t now_ms) {
  if (connected_.load(std::memory_order_relaxed)) return true;
  if (now_ms < next_connect_ms_) return false;
  int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd >= 0) {
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::memcpy(addr.sun_path, config_.socket_path.c_str(),
                config_.socket_path.size());
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                  sizeof(addr)) == 0) {
      ::fcntl(fd, F_SETFL, ::fcntl(fd, F_GETFL, 0) | O_NONBLOCK);
      fd_ = fd;
      backoff_ms_ = 0;
      if (ever_connected_) {
        reconnects_.fetch_add(1, std::memory_order_relaxed);
      }
      ever_connected_ = true;
      Handshake hs;
      hs.trace_format = trace_format_;
      hs.pid = static_cast<std::uint64_t>(::getpid());
      hs.process_name = config_.process_name;
      {
        std::lock_guard lk(mutex_);
        // The handshake leads every connection; front_offset_ is 0 here
        // (reset on disconnect), so prepending keeps frame boundaries.
        queue_.push_front(
            Entry{encode_handshake(hs), 0, /*is_segment=*/false});
      }
      connected_.store(true, std::memory_order_relaxed);
      return true;
    }
    ::close(fd);
  }
  backoff_ms_ = backoff_ms_ == 0
                    ? config_.reconnect_initial_ms
                    : std::min(backoff_ms_ * 2, config_.reconnect_max_ms);
  next_connect_ms_ = now_ms + std::max<std::uint64_t>(backoff_ms_, 1);
  return false;
}

void EpochPublisher::pump_socket() {
  {
    std::lock_guard lk(mutex_);
    if (pending_drop_records_ != 0 || pending_drop_segments_ != 0) {
      DropNotice notice{pending_drop_records_, pending_drop_segments_};
      Entry e{encode_drop_notice(notice), pending_drop_records_,
              /*is_segment=*/false};
      e.notice_segments = pending_drop_segments_;
      queue_.push_back(std::move(e));
      pending_drop_records_ = 0;
      pending_drop_segments_ = 0;
    }
  }
  for (;;) {
    std::vector<std::uint8_t>* bytes = nullptr;
    std::size_t offset = 0;
    {
      std::lock_guard lk(mutex_);
      if (queue_.empty()) return;
      bytes = &queue_.front().bytes;
      offset = front_offset_;
    }
    const long sent =
        io_write_some(fd_, bytes->data() + offset, bytes->size() - offset);
    if (sent < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      handle_disconnect();
      return;
    }
    bytes_sent_.fetch_add(static_cast<std::uint64_t>(sent),
                          std::memory_order_relaxed);
    std::lock_guard lk(mutex_);
    front_offset_ += static_cast<std::size_t>(sent);
    if (front_offset_ == queue_.front().bytes.size()) {
      const Entry& e = queue_.front();
      if (e.is_segment) {
        segments_sent_.fetch_add(1, std::memory_order_relaxed);
        records_sent_.fetch_add(e.records, std::memory_order_relaxed);
        inflight_segment_bytes_ -= e.bytes.size();
      }
      queue_.pop_front();
      front_offset_ = 0;
    }
  }
}

void EpochPublisher::handle_disconnect() {
  ::close(fd_);
  fd_ = -1;
  connected_.store(false, std::memory_order_relaxed);
  // The control channel died with the socket: the next daemon may be an
  // older build, so CWST stays quiet until a fresh CWCT proves otherwise.
  // Any directive already staged/applied keeps its effect -- control state
  // is the publisher's, the connection only transports it.
  in_buffer_.clear();
  control_live_ = false;
  const std::uint64_t now = steady_ms();
  backoff_ms_ = backoff_ms_ == 0
                    ? config_.reconnect_initial_ms
                    : std::min(backoff_ms_ * 2, config_.reconnect_max_ms);
  next_connect_ms_ = now + std::max<std::uint64_t>(backoff_ms_, 1);
  std::lock_guard lk(mutex_);
  // The daemon discarded whatever partial frame was in flight; rewind the
  // front entry so the whole segment is resent on the next connection, and
  // shed stale envelope frames (a fresh handshake will be prepended; drop
  // notices and statuses fold back into the pending counters so no loss --
  // and no suppressed-record count -- goes unreported).
  front_offset_ = 0;
  for (auto it = queue_.begin(); it != queue_.end();) {
    if (it->is_segment) {
      ++it;
      continue;
    }
    if (it->is_status) {
      pending_status_sampled_out_ += it->status_sampled_out;
    } else if (it->notice_segments != 0 || it->records != 0) {
      pending_drop_records_ += it->records;
      pending_drop_segments_ += it->notice_segments;
    }
    it = queue_.erase(it);
  }
}

}  // namespace causeway::transport
