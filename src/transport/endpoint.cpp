#include "transport/endpoint.h"

#include <cerrno>
#include <cstdlib>
#include <cstring>

#if defined(__unix__) || defined(__APPLE__)
#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>
#else
#error "the collection transport requires POSIX sockets"
#endif

#include "common/strings.h"

namespace causeway::transport {

namespace {

void set_cloexec(int fd) { ::fcntl(fd, F_SETFD, FD_CLOEXEC); }

void set_nonblocking(int fd, bool nonblocking) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  ::fcntl(fd, F_SETFL,
          nonblocking ? (flags | O_NONBLOCK) : (flags & ~O_NONBLOCK));
}

void set_nodelay(int fd) {
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

void set_sndbuf(int fd, std::size_t bytes) {
  if (bytes == 0) return;
  const int value = static_cast<int>(bytes);
  ::setsockopt(fd, SOL_SOCKET, SO_SNDBUF, &value, sizeof(value));
}

sockaddr_un unix_sockaddr(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, path.c_str(), path.size());
  return addr;
}

// getaddrinfo wrapper shared by connect and bind; the caller frees.
addrinfo* resolve_tcp(const EndpointAddress& address, bool passive) {
  addrinfo hints{};
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  hints.ai_flags = AI_NUMERICSERV | (passive ? AI_PASSIVE : 0);
  addrinfo* result = nullptr;
  const std::string service = std::to_string(address.port);
  const int rc = ::getaddrinfo(address.host.empty() ? nullptr
                                                    : address.host.c_str(),
                               service.c_str(), &hints, &result);
  if (rc != 0) {
    throw TransportError(strf("resolve %s: %s", address.to_string().c_str(),
                              ::gai_strerror(rc)));
  }
  return result;
}

}  // namespace

const char* endpoint_kind_name(EndpointKind kind) {
  return kind == EndpointKind::kTcp ? "tcp" : "unix";
}

std::string EndpointAddress::to_string() const {
  if (kind == EndpointKind::kTcp) {
    return strf("tcp:%s:%u", host.c_str(), static_cast<unsigned>(port));
  }
  return "unix:" + path;
}

EndpointAddress parse_endpoint(const std::string& spec) {
  EndpointAddress address;
  if (spec.rfind("tcp:", 0) == 0) {
    address.kind = EndpointKind::kTcp;
    const std::string rest = spec.substr(4);
    const std::size_t colon = rest.rfind(':');
    if (colon == std::string::npos || colon == 0 ||
        colon + 1 == rest.size()) {
      throw TransportError(
          strf("malformed tcp endpoint '%s' (want tcp:host:port)",
               spec.c_str()));
    }
    address.host = rest.substr(0, colon);
    const std::string port_str = rest.substr(colon + 1);
    char* end = nullptr;
    const long port = std::strtol(port_str.c_str(), &end, 10);
    if (end == nullptr || *end != '\0' || port < 0 || port > 65535) {
      throw TransportError(strf("invalid tcp port '%s' in '%s'",
                                port_str.c_str(), spec.c_str()));
    }
    address.port = static_cast<std::uint16_t>(port);
    return address;
  }
  if (spec.rfind("unix:", 0) == 0) {
    address.path = spec.substr(5);
  } else if (spec.find(':') != std::string::npos &&
             spec.find('/') == std::string::npos) {
    throw TransportError(
        strf("unknown endpoint scheme in '%s' (want unix:PATH, tcp:HOST:PORT "
             "or a bare socket path)",
             spec.c_str()));
  } else {
    address.path = spec;  // bare path: back-compat unix spelling
  }
  if (address.path.empty()) {
    throw TransportError(strf("empty unix socket path in '%s'", spec.c_str()));
  }
  if (address.path.size() >= sizeof(sockaddr_un::sun_path)) {
    throw TransportError(
        strf("unix socket path too long (%zu bytes, limit %zu): %s",
             address.path.size(), sizeof(sockaddr_un::sun_path) - 1,
             address.path.c_str()));
  }
  return address;
}

void StreamEndpoint::set_blocking(bool blocking) {
  if (fd_ >= 0) set_nonblocking(fd_, !blocking);
}

void StreamEndpoint::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

StreamEndpoint connect_endpoint(const EndpointAddress& address,
                                std::uint64_t timeout_ms,
                                std::size_t sndbuf_bytes) {
  if (address.kind == EndpointKind::kUnix) {
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) return StreamEndpoint{};
    set_cloexec(fd);
    set_sndbuf(fd, sndbuf_bytes);
    const sockaddr_un addr = unix_sockaddr(address.path);
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                  sizeof(addr)) != 0) {
      const int err = errno;
      ::close(fd);
      errno = err;
      return StreamEndpoint{};
    }
    set_nonblocking(fd, true);
    return StreamEndpoint{fd};
  }

  addrinfo* candidates = nullptr;
  try {
    candidates = resolve_tcp(address, /*passive=*/false);
  } catch (const TransportError&) {
    errno = EHOSTUNREACH;
    return StreamEndpoint{};
  }
  int last_errno = ECONNREFUSED;
  for (addrinfo* ai = candidates; ai != nullptr; ai = ai->ai_next) {
    const int fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) {
      last_errno = errno;
      continue;
    }
    set_cloexec(fd);
    set_sndbuf(fd, sndbuf_bytes);
    set_nonblocking(fd, true);
    if (::connect(fd, ai->ai_addr, ai->ai_addrlen) == 0) {
      set_nodelay(fd);
      ::freeaddrinfo(candidates);
      return StreamEndpoint{fd};
    }
    if (errno == EINPROGRESS) {
      // Bounded wait for the three-way handshake; a dead host must cost
      // timeout_ms, not the kernel's SYN-retransmit minutes.
      pollfd pfd{fd, POLLOUT, 0};
      const int ready =
          ::poll(&pfd, 1, static_cast<int>(timeout_ms == 0 ? 1 : timeout_ms));
      if (ready > 0) {
        int err = 0;
        socklen_t len = sizeof(err);
        ::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len);
        if (err == 0) {
          set_nodelay(fd);
          ::freeaddrinfo(candidates);
          return StreamEndpoint{fd};
        }
        last_errno = err;
      } else {
        last_errno = ETIMEDOUT;
      }
    } else {
      last_errno = errno;
    }
    ::close(fd);
  }
  ::freeaddrinfo(candidates);
  errno = last_errno;
  return StreamEndpoint{};
}

Listener::Listener(const EndpointAddress& address) : address_(address) {
  if (address_.kind == EndpointKind::kUnix) {
    fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd_ < 0) {
      throw TransportError(strf("socket(%s): %s",
                                address_.to_string().c_str(),
                                std::strerror(errno)));
    }
    set_cloexec(fd_);
    const sockaddr_un addr = unix_sockaddr(address_.path);
    ::unlink(address_.path.c_str());
    if (::bind(fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
        0) {
      const int err = errno;
      ::close(fd_);
      fd_ = -1;
      throw TransportError(strf("bind(%s): %s", address_.to_string().c_str(),
                                std::strerror(err)));
    }
  } else {
    addrinfo* candidates = resolve_tcp(address_, /*passive=*/true);
    int last_errno = EADDRNOTAVAIL;
    for (addrinfo* ai = candidates; ai != nullptr; ai = ai->ai_next) {
      const int fd =
          ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
      if (fd < 0) {
        last_errno = errno;
        continue;
      }
      set_cloexec(fd);
      const int one = 1;
      ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
      if (::bind(fd, ai->ai_addr, ai->ai_addrlen) == 0) {
        fd_ = fd;
        break;
      }
      last_errno = errno;
      ::close(fd);
    }
    ::freeaddrinfo(candidates);
    if (fd_ < 0) {
      throw TransportError(strf("bind(%s): %s", address_.to_string().c_str(),
                                std::strerror(last_errno)));
    }
    // Report the port the kernel actually assigned (ephemeral binds).
    sockaddr_storage bound{};
    socklen_t len = sizeof(bound);
    if (::getsockname(fd_, reinterpret_cast<sockaddr*>(&bound), &len) == 0) {
      if (bound.ss_family == AF_INET) {
        address_.port = ntohs(
            reinterpret_cast<const sockaddr_in*>(&bound)->sin_port);
      } else if (bound.ss_family == AF_INET6) {
        address_.port = ntohs(
            reinterpret_cast<const sockaddr_in6*>(&bound)->sin6_port);
      }
    }
  }
  if (::listen(fd_, 64) != 0) {
    const int err = errno;
    close();
    throw TransportError(strf("listen(%s): %s", address_.to_string().c_str(),
                              std::strerror(err)));
  }
  set_nonblocking(fd_, true);
}

StreamEndpoint Listener::accept() {
  const int fd = ::accept(fd_, nullptr, nullptr);
  if (fd < 0) return StreamEndpoint{};
  set_cloexec(fd);
  set_nonblocking(fd, true);
  if (address_.kind == EndpointKind::kTcp) set_nodelay(fd);
  return StreamEndpoint{fd};
}

void Listener::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
    if (address_.kind == EndpointKind::kUnix) {
      ::unlink(address_.path.c_str());
    }
  }
}

}  // namespace causeway::transport
