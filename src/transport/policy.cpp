#include "transport/policy.h"

namespace causeway::transport {

ControlPolicy::ControlPolicy(PolicyConfig config, SendFn send)
    : config_(std::move(config)), send_(std::move(send)) {
  if (config_.window_ms == 0) config_.window_ms = 1;
  if (config_.anomaly_burst == 0) config_.anomaly_burst = 1;
  if (config_.throttled_rate_index >= monitor::kSampleRateCount) {
    config_.throttled_rate_index = monitor::sample_rate_index_for(10);
  }
}

void ControlPolicy::on_peer_connect(const PeerInfo& peer,
                                    std::uint64_t now_ms) {
  std::lock_guard lk(mutex_);
  Peer fresh;
  fresh.window_start_ms = now_ms;
  // A reconnecting publisher keeps whatever configuration it applied --
  // control state lives in the publisher -- but the policy restarts it
  // Armed: the directives that led to a throttle may predate a daemon
  // restart, and a stale Throttled entry would wait forever for quiet
  // windows nobody is counting.
  peers_[peer.peer_id] = fresh;
}

void ControlPolicy::on_peer_disconnect(const PeerInfo& peer) {
  std::lock_guard lk(mutex_);
  auto it = peers_.find(peer.peer_id);
  if (it != peers_.end()) {
    if (it->second.state == State::kThrottled && stats_.peers_throttled > 0) {
      --stats_.peers_throttled;
    }
    peers_.erase(it);
  }
}

void ControlPolicy::on_segment(const PeerInfo& peer, std::uint64_t records,
                               std::uint64_t now_ms) {
  std::lock_guard lk(mutex_);
  Peer& slot = peer_slot(peer.peer_id, now_ms);
  roll_windows(peer.peer_id, slot, now_ms);
  slot.window_records += records;
}

void ControlPolicy::on_drop_notice(const PeerInfo& peer,
                                   const DropNotice& notice,
                                   std::uint64_t now_ms) {
  std::lock_guard lk(mutex_);
  Peer& slot = peer_slot(peer.peer_id, now_ms);
  roll_windows(peer.peer_id, slot, now_ms);
  slot.window_drop_records += notice.records;
}

void ControlPolicy::on_status(const PeerInfo& peer,
                              const ControlStatus& status,
                              std::uint64_t now_ms) {
  std::lock_guard lk(mutex_);
  Peer& slot = peer_slot(peer.peer_id, now_ms);
  roll_windows(peer.peer_id, slot, now_ms);
  slot.last_applied_seq = status.applied_seq;
}

void ControlPolicy::begin_attribution(std::uint64_t peer_id,
                                      std::uint64_t now_ms) {
  std::lock_guard lk(mutex_);
  attributed_peer_ = peer_id;
  attribution_now_ms_ = now_ms;
}

void ControlPolicy::end_attribution() {
  std::lock_guard lk(mutex_);
  attributed_peer_ = 0;
}

void ControlPolicy::on_event(const analysis::AnomalyEvent&) {
  std::lock_guard lk(mutex_);
  if (attributed_peer_ == 0) return;  // not inside a bracketed ingest
  ++stats_.anomalies_attributed;
  Peer& slot = peer_slot(attributed_peer_, attribution_now_ms_);
  roll_windows(attributed_peer_, slot, attribution_now_ms_);
  slot.window_anomalies += 1;
}

void ControlPolicy::tick(std::uint64_t now_ms) {
  std::lock_guard lk(mutex_);
  for (auto& [peer_id, slot] : peers_) {
    roll_windows(peer_id, slot, now_ms);
  }
}

ControlPolicy::Stats ControlPolicy::stats() const {
  std::lock_guard lk(mutex_);
  return stats_;
}

bool ControlPolicy::is_throttled(std::uint64_t peer_id) const {
  std::lock_guard lk(mutex_);
  auto it = peers_.find(peer_id);
  return it != peers_.end() && it->second.state == State::kThrottled;
}

ControlPolicy::Peer& ControlPolicy::peer_slot(std::uint64_t peer_id,
                                              std::uint64_t now_ms) {
  auto [it, inserted] = peers_.try_emplace(peer_id);
  if (inserted) it->second.window_start_ms = now_ms;
  return it->second;
}

// Closes every full window between window_start and now, evaluating each.
// Windows with no signals still count -- they are what quiet streaks are
// made of.  The iteration is naturally bounded: the daemon's wait loop
// ticks every poll interval, so the gap is a handful of windows at most,
// and an Armed peer with a huge gap (an idle test clock) just re-arms a
// no-op streak.
void ControlPolicy::roll_windows(std::uint64_t peer_id, Peer& peer,
                                 std::uint64_t now_ms) {
  if (now_ms < peer.window_start_ms) return;  // clock went sideways; hold
  while (now_ms - peer.window_start_ms >= config_.window_ms) {
    evaluate_window(peer_id, peer, peer.window_start_ms + config_.window_ms);
    peer.window_start_ms += config_.window_ms;
    peer.window_anomalies = 0;
    peer.window_drop_records = 0;
    peer.window_records = 0;
    // An Armed peer accrues nothing from silence: collapse the remaining
    // gap in one step instead of iterating a long-idle stretch window by
    // window.  (A Throttled peer keeps iterating -- each window feeds the
    // quiet streak.)
    if (peer.state == State::kArmed &&
        now_ms - peer.window_start_ms >= 4 * config_.window_ms) {
      peer.window_start_ms =
          now_ms - (now_ms - peer.window_start_ms) % config_.window_ms;
    }
  }
}

void ControlPolicy::evaluate_window(std::uint64_t peer_id, Peer& peer,
                                    std::uint64_t window_end_ms) {
  const bool drops_hot =
      config_.throttle_on_publish_drops && peer.window_drop_records > 0;
  const bool rate_hot =
      config_.max_records_per_sec > 0 &&
      peer.window_records * 1000 >
          config_.max_records_per_sec * config_.window_ms;
  const bool hot = peer.window_anomalies >= config_.anomaly_burst ||
                   drops_hot || rate_hot;

  if (peer.state == State::kArmed) {
    if (!hot) return;
    ControlDirective directive;
    directive.sample_rate_index = config_.throttled_rate_index;
    directive.mode = config_.throttled_mode;
    send(peer_id, directive);
    peer.state = State::kThrottled;
    peer.throttled_at_ms = window_end_ms;
    peer.quiet_windows = 0;
    ++stats_.throttles;
    ++stats_.peers_throttled;
    return;
  }

  // Throttled: count the quiet streak; any heat resets it.  Re-arm needs
  // the streak AND the minimum hold -- hysteresis against flapping when a
  // burst happens to straddle a window boundary.
  if (hot) {
    peer.quiet_windows = 0;
    return;
  }
  peer.quiet_windows += 1;
  if (peer.quiet_windows < config_.rearm_quiet_windows) return;
  if (window_end_ms - peer.throttled_at_ms < config_.min_hold_ms) return;
  ControlDirective directive;
  directive.sample_rate_index = 0;  // full fidelity
  directive.mode = config_.rearm_mode;
  send(peer_id, directive);
  peer.state = State::kArmed;
  peer.quiet_windows = 0;
  ++stats_.rearms;
  if (stats_.peers_throttled > 0) --stats_.peers_throttled;
}

void ControlPolicy::send(std::uint64_t peer_id,
                         const ControlDirective& directive) {
  ++stats_.directives_sent;
  if (send_) send_(peer_id, directive);
}

}  // namespace causeway::transport
