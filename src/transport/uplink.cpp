#include "transport/uplink.h"

#include <chrono>

#include <unistd.h>

#include "common/rng.h"
#include "common/wire_io.h"

namespace causeway::transport {

namespace {

std::uint64_t steady_ms() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

Uplink::Uplink(UplinkConfig config,
               std::function<void(const ControlDirective&)> on_directive)
    : config_(std::move(config)),
      address_(parse_endpoint(config_.address)),
      on_directive_(std::move(on_directive)),
      jitter_state_(static_cast<std::uint64_t>(::getpid()) ^
                    reinterpret_cast<std::uintptr_t>(this) ^ steady_ms()) {}

Uplink::~Uplink() { finish(flush_timeout_ms_); }

void Uplink::start() {
  std::lock_guard lk(mutex_);
  if (started_) return;
  started_ = true;
  worker_ = std::thread([this] { run(); });
}

bool Uplink::finish(std::uint64_t flush_timeout_ms) {
  {
    std::lock_guard lk(mutex_);
    if (finished_) return flushed_clean_;
    finished_ = true;
    flush_timeout_ms_ = flush_timeout_ms;
    if (!started_) {
      // Never started: run the worker just for the bounded flush.
      started_ = true;
      worker_ = std::thread([this] { run(); });
    }
    stop_requested_ = true;
  }
  cv_.notify_all();
  worker_.join();
  return flushed_clean_;
}

Uplink::Stats Uplink::stats() const {
  Stats s;
  s.segments_sent = segments_sent_.load(std::memory_order_relaxed);
  s.records_sent = records_sent_.load(std::memory_order_relaxed);
  s.bytes_sent = bytes_sent_.load(std::memory_order_relaxed);
  s.dropped_segments = dropped_segments_.load(std::memory_order_relaxed);
  s.dropped_records = dropped_records_.load(std::memory_order_relaxed);
  s.reconnects = reconnects_.load(std::memory_order_relaxed);
  s.directives_received = directives_received_.load(std::memory_order_relaxed);
  return s;
}

bool Uplink::queue_empty() const {
  for (const Entry& e : queue_) {
    if (e.is_segment) return false;
  }
  return true;
}

bool Uplink::offer_segment(std::vector<std::uint8_t> bytes,
                           std::uint64_t records) {
  {
    std::lock_guard lk(mutex_);
    if (inflight_segment_bytes_ + bytes.size() > config_.max_inflight_bytes) {
      // Back-pressure: the daemon (or the socket to it) is behind.  Drop
      // the *new* segment whole -- the queued clean prefix is never
      // cannibalized -- and remember the loss for the next drop notice.
      dropped_segments_.fetch_add(1, std::memory_order_relaxed);
      dropped_records_.fetch_add(records, std::memory_order_relaxed);
      pending_drop_records_ += records;
      pending_drop_segments_ += 1;
      return false;
    }
    inflight_segment_bytes_ += bytes.size();
    queue_.push_back(Entry{std::move(bytes), records, /*is_segment=*/true});
  }
  cv_.notify_all();
  return true;
}

void Uplink::note_drops(std::uint64_t records, std::uint64_t segments) {
  if (records == 0 && segments == 0) return;
  {
    std::lock_guard lk(mutex_);
    pending_drop_records_ += records;
    pending_drop_segments_ += segments;
  }
  cv_.notify_all();
}

void Uplink::enqueue_status_locked(std::uint64_t applied_seq) {
  ControlStatus status;
  status.applied_seq = applied_seq;
  status.sampled_out = pending_status_sampled_out_;
  status.sample_rate_index = last_rate_index_;
  status.mode = last_mode_;
  Entry e{encode_status(status), 0, /*is_segment=*/false};
  e.is_status = true;
  e.status_sampled_out = pending_status_sampled_out_;
  queue_.push_back(std::move(e));
  pending_status_sampled_out_ = 0;
  last_status_seq_ = applied_seq;
}

void Uplink::offer_status(std::uint64_t applied_seq, std::uint64_t sampled_out,
                          std::uint8_t sample_rate_index, std::uint8_t mode) {
  {
    std::lock_guard lk(mutex_);
    pending_status_sampled_out_ += sampled_out;
    last_offered_seq_ = applied_seq;
    last_rate_index_ = sample_rate_index;
    last_mode_ = mode;
    // A status ships when there is something to say (a directive newly
    // applied, or records suppressed) and the channel is live; otherwise
    // the delta is held so a later status -- possibly on the next
    // connection -- carries it.
    if (!control_live_ ||
        (applied_seq == last_status_seq_ && pending_status_sampled_out_ == 0)) {
      return;
    }
    enqueue_status_locked(applied_seq);
  }
  cv_.notify_all();
}

void Uplink::run() {
  for (;;) {
    const std::uint64_t now = steady_ms();
    {
      std::lock_guard lk(mutex_);
      if (stop_requested_) break;
    }
    ensure_connected(now);
    if (connected_.load(std::memory_order_relaxed)) read_endpoint();
    if (connected_.load(std::memory_order_relaxed)) pump_endpoint();

    // Sleep until the next reconnect attempt, a short retry tick when the
    // socket pushed back (EAGAIN with data queued), or a producer kick.
    // The wait is computed under the lock so an offer_* racing this point
    // either sees the lock held (and its notify lands inside the wait) or
    // enqueued before the queue check.
    std::unique_lock lk(mutex_);
    std::uint64_t wait = 100;
    if (!connected_.load(std::memory_order_relaxed)) {
      wait = next_connect_ms_ > now ? next_connect_ms_ - now : 1;
    } else if (!queue_.empty()) {
      wait = 2;
    }
    if (!stop_requested_) {
      cv_.wait_for(lk, std::chrono::milliseconds(
                           std::max<std::uint64_t>(wait, 1)));
    }
  }

  // Shutdown: flush with a deadline; whatever cannot be delivered in time
  // is counted as dropped, never waited on forever.
  const std::uint64_t deadline = steady_ms() + flush_timeout_ms_;
  for (;;) {
    const std::uint64_t now = steady_ms();
    ensure_connected(now);
    if (connected_.load(std::memory_order_relaxed)) read_endpoint();
    if (connected_.load(std::memory_order_relaxed)) pump_endpoint();
    {
      std::lock_guard lk(mutex_);
      if (queue_empty() && pending_drop_records_ == 0 &&
          pending_drop_segments_ == 0) {
        break;
      }
      // Loss with no live connection to report it on: the deadline below
      // is the only bound (note_drops folds back on disconnect).
    }
    if (now >= deadline) break;
    std::unique_lock lk(mutex_);
    cv_.wait_for(lk, std::chrono::milliseconds(1));
  }
  {
    std::lock_guard lk(mutex_);
    flushed_clean_ = queue_empty() && pending_drop_records_ == 0 &&
                     pending_drop_segments_ == 0;
    if (!flushed_clean_) {
      for (const Entry& e : queue_) {
        if (!e.is_segment) continue;
        dropped_segments_.fetch_add(1, std::memory_order_relaxed);
        dropped_records_.fetch_add(e.records, std::memory_order_relaxed);
      }
      queue_.clear();
      inflight_segment_bytes_ = 0;
      front_offset_ = 0;
    }
  }
  endpoint_.close();
  connected_.store(false, std::memory_order_relaxed);
}

void Uplink::schedule_reconnect(std::uint64_t now_ms) {
  backoff_ms_ = backoff_ms_ == 0
                    ? config_.reconnect_initial_ms
                    : std::min(backoff_ms_ * 2, config_.reconnect_max_ms);
  std::uint64_t delay = backoff_ms_;
  if (config_.backoff_jitter && delay > 0) {
    // ±25%: after a daemon restart, N publishers spread their retries
    // instead of hammering the accept queue in lockstep.
    SplitMix64 rng(jitter_state_);
    jitter_state_ = rng.next();
    delay = delay * (750 + jitter_state_ % 501) / 1000;
  }
  next_connect_ms_ = now_ms + std::max<std::uint64_t>(delay, 1);
}

bool Uplink::ensure_connected(std::uint64_t now_ms) {
  if (connected_.load(std::memory_order_relaxed)) return true;
  if (now_ms < next_connect_ms_) return false;
  StreamEndpoint endpoint = connect_endpoint(
      address_, config_.connect_timeout_ms, config_.sndbuf_bytes);
  if (!endpoint.valid()) {
    schedule_reconnect(now_ms);
    return false;
  }
  endpoint_ = std::move(endpoint);
  backoff_ms_ = 0;
  if (ever_connected_) {
    reconnects_.fetch_add(1, std::memory_order_relaxed);
  }
  ever_connected_ = true;
  Handshake hs;
  hs.trace_format = config_.trace_format;
  hs.pid = config_.pid != 0 ? config_.pid
                            : static_cast<std::uint64_t>(::getpid());
  hs.process_name = config_.process_name;
  {
    std::lock_guard lk(mutex_);
    // The handshake leads every connection; front_offset_ is 0 here
    // (reset on disconnect), so prepending keeps frame boundaries.
    queue_.push_front(Entry{encode_handshake(hs), 0, /*is_segment=*/false});
  }
  connected_.store(true, std::memory_order_relaxed);
  return true;
}

void Uplink::read_endpoint() {
  std::uint8_t chunk[4096];
  for (;;) {
    const long got = io_read_some(endpoint_.fd(), chunk, sizeof(chunk));
    if (got < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      handle_disconnect();
      return;
    }
    if (got == 0) {  // daemon closed its end
      handle_disconnect();
      return;
    }
    in_buffer_.insert(in_buffer_.end(), chunk, chunk + got);
    try {
      std::size_t consumed = 0;
      for (;;) {
        const std::span<const std::uint8_t> rest(in_buffer_.data() + consumed,
                                                 in_buffer_.size() - consumed);
        if (rest.empty()) break;
        auto directive = try_decode_control(rest);
        if (!directive) break;
        consumed += directive->second;
        directives_received_.fetch_add(1, std::memory_order_relaxed);
        {
          // The first CWCT is the daemon's proof that it speaks protocol 2;
          // a sampled-out delta held from before (or from a previous
          // connection) can ship now.
          std::lock_guard lk(mutex_);
          if (!control_live_) {
            control_live_ = true;
            if (pending_status_sampled_out_ > 0 ||
                last_offered_seq_ != last_status_seq_) {
              enqueue_status_locked(last_offered_seq_);
            }
          }
        }
        if (on_directive_) on_directive_(directive->first);
      }
      if (consumed > 0) {
        in_buffer_.erase(
            in_buffer_.begin(),
            in_buffer_.begin() + static_cast<std::ptrdiff_t>(consumed));
      }
    } catch (const std::exception&) {
      // Garbage on the control channel: same containment as the daemon's --
      // drop the connection, reconnect fresh.
      handle_disconnect();
      return;
    }
    if (static_cast<std::size_t>(got) < sizeof(chunk)) return;
  }
}

void Uplink::pump_endpoint() {
  {
    std::lock_guard lk(mutex_);
    if (pending_drop_records_ != 0 || pending_drop_segments_ != 0) {
      DropNotice notice{pending_drop_records_, pending_drop_segments_};
      Entry e{encode_drop_notice(notice), pending_drop_records_,
              /*is_segment=*/false};
      e.notice_segments = pending_drop_segments_;
      queue_.push_back(std::move(e));
      pending_drop_records_ = 0;
      pending_drop_segments_ = 0;
    }
  }
  for (;;) {
    std::vector<std::uint8_t>* bytes = nullptr;
    std::size_t offset = 0;
    {
      std::lock_guard lk(mutex_);
      if (queue_.empty()) return;
      bytes = &queue_.front().bytes;
      offset = front_offset_;
    }
    const long sent = io_write_some(endpoint_.fd(), bytes->data() + offset,
                                    bytes->size() - offset);
    if (sent < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      handle_disconnect();
      return;
    }
    bytes_sent_.fetch_add(static_cast<std::uint64_t>(sent),
                          std::memory_order_relaxed);
    std::lock_guard lk(mutex_);
    front_offset_ += static_cast<std::size_t>(sent);
    if (front_offset_ == queue_.front().bytes.size()) {
      const Entry& e = queue_.front();
      if (e.is_segment) {
        segments_sent_.fetch_add(1, std::memory_order_relaxed);
        records_sent_.fetch_add(e.records, std::memory_order_relaxed);
        inflight_segment_bytes_ -= e.bytes.size();
      }
      queue_.pop_front();
      front_offset_ = 0;
    }
  }
}

void Uplink::handle_disconnect() {
  endpoint_.close();
  connected_.store(false, std::memory_order_relaxed);
  in_buffer_.clear();
  schedule_reconnect(steady_ms());
  std::lock_guard lk(mutex_);
  // The control channel died with the socket: the next daemon may be an
  // older build, so CWST stays quiet until a fresh CWCT proves otherwise.
  // Any directive already delivered keeps its effect -- control state is
  // the producer's, the connection only transports it.
  control_live_ = false;
  // The daemon discarded whatever partial frame was in flight; rewind the
  // front entry so the whole segment is resent on the next connection, and
  // shed stale envelope frames (a fresh handshake will be prepended; drop
  // notices and statuses fold back into the pending counters so no loss --
  // and no suppressed-record count -- goes unreported).
  front_offset_ = 0;
  for (auto it = queue_.begin(); it != queue_.end();) {
    if (it->is_segment) {
      ++it;
      continue;
    }
    if (it->is_status) {
      pending_status_sampled_out_ += it->status_sampled_out;
    } else if (it->notice_segments != 0 || it->records != 0) {
      pending_drop_records_ += it->records;
      pending_drop_segments_ += it->notice_segments;
    }
    it = queue_.erase(it);
  }
}

}  // namespace causeway::transport
