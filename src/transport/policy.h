// ControlPolicy: the brain that closes the monitoring control loop.
//
// causeway-collectd owns one of these (--policy=auto).  It consumes the
// live signals the daemon already produces -- anomaly events from the
// analysis pipeline, per-publisher load (records/s), publish-drop notices
// -- and emits CWCT control directives back down the same sockets the data
// came up: throttle a publisher whose chains are bursting with anomalies
// or whose volume the daemon cannot keep up with, then re-arm it to full
// fidelity once the storm passes.  The paper's monitor becomes affordable
// at scale precisely because of this loop: full probe cost is paid only
// where the system is currently interesting.
//
// Per publisher, the policy is a two-state machine with hysteresis:
//
//     Armed --[hot window]--> Throttled --[quiet streak + hold]--> Armed
//
// Signals are accumulated into fixed windows (window_ms).  A window is
// *hot* when its anomaly count reaches anomaly_burst, when any records
// were publish-dropped, or when the record rate exceeds
// max_records_per_sec (0 disables the rate trigger).  Hot in Armed =>
// send a throttle directive (sampling down to throttled_rate_index,
// optionally a mode flip).  Re-arming requires BOTH rearm_quiet_windows
// consecutive quiet windows AND min_hold_ms in the throttled state --
// two independent dampers, so one lucky quiet window right after a
// throttle cannot flap the policy back and forth.
//
// Every method takes an explicit now_ms so tests drive the clock; the
// daemon path passes a steady clock.  All entry points are mutex-guarded:
// they normally run on the daemon thread (sink callbacks are serialized),
// but stats() and tick() may be called from a tool's main thread.
#pragma once

#include <cstdint>
#include <functional>
#include <mutex>
#include <optional>
#include <unordered_map>

#include "analysis/anomaly.h"
#include "monitor/record.h"
#include "transport/protocol.h"
#include "transport/subscriber.h"

namespace causeway::transport {

struct PolicyConfig {
  // Fixed signal-accumulation window per publisher.
  std::uint64_t window_ms{250};
  // Hot-window triggers (throttle when Armed).
  std::uint64_t anomaly_burst{8};        // >= this many anomalies in a window
  bool throttle_on_publish_drops{true};  // any publish-dropped records
  std::uint64_t max_records_per_sec{0};  // record-rate ceiling (0 = off)
  // What a throttle dials in: the chain sampling rate (default 1-in-10),
  // optionally a probe-mode flip (e.g. causality-only to shed cost).
  std::uint8_t throttled_rate_index{monitor::sample_rate_index_for(10)};
  std::optional<std::uint8_t> throttled_mode;
  // What a re-arm restores alongside full sampling (1-in-1); only
  // meaningful when throttled_mode is set.
  std::optional<std::uint8_t> rearm_mode;
  // Hysteresis: quiet streak AND minimum hold before re-arming.
  std::uint64_t rearm_quiet_windows{3};
  std::uint64_t min_hold_ms{500};
};

class ControlPolicy : public analysis::AnomalySink {
 public:
  struct Stats {
    std::uint64_t throttles{0};
    std::uint64_t rearms{0};
    std::uint64_t directives_sent{0};
    std::uint64_t anomalies_attributed{0};
    std::uint64_t peers_throttled{0};  // currently in Throttled
  };

  // `send` delivers a directive to a peer (normally
  // CollectorDaemon::send_control) and returns the assigned seq.
  using SendFn =
      std::function<std::uint64_t(std::uint64_t, const ControlDirective&)>;

  ControlPolicy(PolicyConfig config, SendFn send);

  // Feed hooks; IngestSink calls these on the daemon thread.
  void on_peer_connect(const PeerInfo& peer, std::uint64_t now_ms);
  void on_peer_disconnect(const PeerInfo& peer);
  void on_segment(const PeerInfo& peer, std::uint64_t records,
                  std::uint64_t now_ms);
  void on_drop_notice(const PeerInfo& peer, const DropNotice& notice,
                      std::uint64_t now_ms);
  void on_status(const PeerInfo& peer, const ControlStatus& status,
                 std::uint64_t now_ms);

  // Anomaly attribution: pipeline sinks see events with no peer identity,
  // so IngestSink brackets each ingest with the peer whose segment is
  // being decoded; on_event charges that peer's current window.
  void begin_attribution(std::uint64_t peer_id, std::uint64_t now_ms);
  void end_attribution();
  void on_event(const analysis::AnomalyEvent& event) override;

  // Rolls any window that has aged past window_ms even without new
  // signals -- quiet streaks are made of windows nothing happened in, so
  // somebody has to observe the silence.  The collectd wait loop calls
  // this on its poll cadence; tests call it with a synthetic clock.
  void tick(std::uint64_t now_ms);

  Stats stats() const;

  // True while `peer_id` is in the Throttled state (test/tool visibility).
  bool is_throttled(std::uint64_t peer_id) const;

 private:
  enum class State { kArmed, kThrottled };

  struct Peer {
    State state{State::kArmed};
    std::uint64_t window_start_ms{0};
    std::uint64_t window_anomalies{0};
    std::uint64_t window_drop_records{0};
    std::uint64_t window_records{0};
    std::uint64_t quiet_windows{0};
    std::uint64_t throttled_at_ms{0};
    std::uint64_t last_applied_seq{0};  // from CWST, observability only
  };

  Peer& peer_slot(std::uint64_t peer_id, std::uint64_t now_ms);
  void roll_windows(std::uint64_t peer_id, Peer& peer, std::uint64_t now_ms);
  void evaluate_window(std::uint64_t peer_id, Peer& peer,
                       std::uint64_t now_ms);
  void send(std::uint64_t peer_id, const ControlDirective& directive);

  PolicyConfig config_;
  SendFn send_;

  mutable std::mutex mutex_;
  std::unordered_map<std::uint64_t, Peer> peers_;
  std::uint64_t attributed_peer_{0};  // 0 = no ingest in progress
  std::uint64_t attribution_now_ms_{0};
  Stats stats_;
};

}  // namespace causeway::transport
