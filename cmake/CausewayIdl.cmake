# causeway_add_idl(<target> <file.idl> [INSTRUMENT] [COM])
#
# Runs idlc over <file.idl> at build time and wraps the generated
# stub/skeleton pair into a static library target.  INSTRUMENT selects the
# paper's instrumented generation mode (probes + FTL tunneling); omit it for
# plain stubs.  COM targets the COM-like runtime (apartments) instead of the
# ORB.  The same .idl may be compiled under several target names to get
# multiple flavors side by side (tests and benchmarks do).
function(causeway_add_idl TARGET IDL_FILE)
  cmake_parse_arguments(ARG "INSTRUMENT;COM;BOTH" "" "" ${ARGN})

  get_filename_component(_base ${IDL_FILE} NAME_WE)
  set(_gendir ${CMAKE_CURRENT_BINARY_DIR}/${TARGET}_gen)
  set(_hdr ${_gendir}/${_base}.causeway.h)
  set(_src ${_gendir}/${_base}.causeway.cpp)

  set(_flags "")
  if(ARG_INSTRUMENT)
    list(APPEND _flags --instrument)
  endif()
  if(ARG_COM)
    list(APPEND _flags --runtime=com)
  elseif(ARG_BOTH)
    list(APPEND _flags --runtime=both)
  endif()

  if(NOT IS_ABSOLUTE ${IDL_FILE})
    set(IDL_FILE ${CMAKE_CURRENT_SOURCE_DIR}/${IDL_FILE})
  endif()

  add_custom_command(
    OUTPUT ${_hdr} ${_src}
    COMMAND idlc ${IDL_FILE} -o ${_gendir} --basename ${_base} ${_flags}
    DEPENDS idlc ${IDL_FILE}
    COMMENT "idlc ${_base}.idl -> ${TARGET}"
    VERBATIM)

  add_library(${TARGET} STATIC ${_src} ${_hdr})
  target_include_directories(${TARGET} PUBLIC ${_gendir})
  if(ARG_COM)
    target_link_libraries(${TARGET} PUBLIC causeway_com)
  elseif(ARG_BOTH)
    target_link_libraries(${TARGET} PUBLIC causeway_orb causeway_com)
  else()
    target_link_libraries(${TARGET} PUBLIC causeway_orb)
  endif()
endfunction()
