// causeway-query -- ad-hoc aggregation queries over traces and stores.
//
// Runs the query DSL (docs/QUERY.md) against any mix of plain trace files
// and store directories (causeway-collectd --store=DIR).  For a store, the
// catalog prunes files the query cannot touch -- a time window outside a
// file's timestamp range, a required chain the file's digest rules out --
// before anything is opened; --stats prints exactly how much work the
// pruning saved.
//
// Usage:
//   causeway-query <store-dir|trace.cwt> [more ...]
//                  [--query=QUERY] [--format=text|csv] [--stats]
//                  [--version]
//
// Examples:
//   causeway-query store/ --query='count, p95(latency) group by iface'
//   causeway-query store/ --query='count where func =~ snap and
//                                  outcome != ok since 0 until 30s'
//   causeway-query run.cwt --query='count where chain == <uuid>' --stats
//
// Without --query, reads one query per line from stdin (a minimal REPL:
// empty lines are skipped, 'exit'/'quit'/EOF ends it, a parse error is
// reported and the loop continues).
#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "analysis/trace_io.h"
#include "common/version.h"
#include "query/engine.h"
#include "query/parser.h"

using namespace causeway;

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: causeway-query <store-dir|trace.cwt> [more ...]\n"
               "           [--query=QUERY] [--format=text|csv] [--stats]\n"
               "           [--version]\n"
               "query language reference: docs/QUERY.md\n");
  return 2;
}

void print_stats(const query::QueryStats& s) {
  std::fprintf(
      stderr,
      "[query] files: %zu candidates, %zu pruned by catalog, %zu opened; "
      "%zu segments decoded, %llu records scanned; spans: %llu paired, "
      "%llu matched\n",
      s.files_total, s.files_pruned, s.files_opened, s.segments_decoded,
      static_cast<unsigned long long>(s.records_scanned),
      static_cast<unsigned long long>(s.spans_total),
      static_cast<unsigned long long>(s.spans_matched));
}

// Parse + run + render one query string.  Returns 0, or 1 on failure.
int run_one(const std::string& text, const std::vector<std::string>& inputs,
            const std::string& format, bool stats) {
  try {
    const query::Query q = query::parse_query(text);
    const query::QueryResult result = query::run_query(q, inputs);
    const std::string rendered = format == "csv"
                                     ? query::render_csv(result)
                                     : query::render_text(result);
    std::fputs(rendered.c_str(), stdout);
    std::fflush(stdout);
    if (stats) print_stats(result.stats);
    return 0;
  } catch (const query::QueryError& e) {
    std::fprintf(stderr, "causeway-query: parse error: %s\n", e.what());
    return 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "causeway-query: %s\n", e.what());
    return 1;
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> inputs;
  std::string query_text;
  std::string format = "text";
  bool stats = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--query=", 0) == 0) {
      query_text = arg.substr(8);
    } else if (arg.rfind("--format=", 0) == 0) {
      format = arg.substr(9);
      if (format != "text" && format != "csv") return usage();
    } else if (arg == "--stats") {
      stats = true;
    } else if (arg == "--version") {
      std::fputs(version_banner("causeway-query").c_str(), stdout);
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      return usage();
    } else {
      inputs.push_back(arg);
    }
  }
  if (inputs.empty()) return usage();

  if (!query_text.empty()) {
    return run_one(query_text, inputs, format, stats);
  }

  // REPL: one query per stdin line.  Parse errors don't end the session;
  // I/O errors from the inputs do get reported but the loop continues too
  // (the next query may prune the offending file away).
  std::string line;
  while (std::getline(std::cin, line)) {
    // Trim surrounding whitespace so "  exit " works.
    const auto begin = line.find_first_not_of(" \t\r");
    if (begin == std::string::npos) continue;
    const auto end = line.find_last_not_of(" \t\r");
    const std::string text = line.substr(begin, end - begin + 1);
    if (text == "exit" || text == "quit") break;
    run_one(text, inputs, format, stats);
  }
  return 0;
}
