// causeway-record -- run a monitored workload and write its trace file.
//
// The runtime half of the paper's two-phase workflow: drive a workload with
// the probes active, reach quiescence, collect the scattered per-process
// logs, and persist them for the off-line analyzer (causeway-analyze).
//
// Usage:
//   causeway-record [--workload=pps|synthetic] [--mode=latency|cpu|causality]
//                   [--topology=mono|four|percomp|hybrid]   (pps)
//                   [--jobs=N] [--transactions=N] [--seed=N]
//                   [--out=trace.cwt]
#include <cstdio>
#include <cstring>
#include <string>

#include "analysis/trace_io.h"
#include "pps/pps_system.h"
#include "workload/synthetic.h"

using namespace causeway;

namespace {

struct Args {
  std::string workload{"pps"};
  std::string mode{"latency"};
  std::string topology{"four"};
  int jobs{5};
  std::size_t transactions{10};
  std::uint64_t seed{42};
  std::string out{"trace.cwt"};
};

bool parse_args(int argc, char** argv, Args& args) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&](const char* prefix) -> const char* {
      const std::size_t n = std::strlen(prefix);
      return arg.compare(0, n, prefix) == 0 ? arg.c_str() + n : nullptr;
    };
    if (const char* v = value("--workload=")) {
      args.workload = v;
    } else if (const char* v = value("--mode=")) {
      args.mode = v;
    } else if (const char* v = value("--topology=")) {
      args.topology = v;
    } else if (const char* v = value("--jobs=")) {
      args.jobs = std::atoi(v);
    } else if (const char* v = value("--transactions=")) {
      args.transactions = static_cast<std::size_t>(std::atoll(v));
    } else if (const char* v = value("--seed=")) {
      args.seed = static_cast<std::uint64_t>(std::atoll(v));
    } else if (const char* v = value("--out=")) {
      args.out = v;
    } else {
      std::fprintf(stderr, "unknown argument '%s'\n", arg.c_str());
      return false;
    }
  }
  return true;
}

monitor::ProbeMode parse_mode(const std::string& mode) {
  if (mode == "cpu") return monitor::ProbeMode::kCpu;
  if (mode == "causality") return monitor::ProbeMode::kCausalityOnly;
  return monitor::ProbeMode::kLatency;
}

monitor::CollectedLogs record_pps(const Args& args) {
  orb::Fabric fabric;
  pps::PpsConfig config;
  config.monitor.mode = parse_mode(args.mode);
  if (args.topology == "mono") {
    config.topology = pps::PpsConfig::Topology::kMonolithic;
  } else if (args.topology == "percomp") {
    config.topology = pps::PpsConfig::Topology::kPerComponent;
  } else if (args.topology == "hybrid") {
    config.topology = pps::PpsConfig::Topology::kHybridCom;
  } else {
    config.topology = pps::PpsConfig::Topology::kFourProcess;
  }
  pps::PpsSystem system(fabric, config);
  for (int i = 0; i < args.jobs; ++i) {
    system.submit_job(2 + i % 3, 150 + 150 * (i % 2), i % 2 == 0);
  }
  system.wait_quiescent();
  return system.collect();
}

monitor::CollectedLogs record_synthetic(const Args& args) {
  orb::Fabric fabric;
  workload::SyntheticConfig config;
  config.seed = args.seed;
  config.domains = 4;
  config.components = 24;
  config.interfaces = 12;
  config.methods_per_interface = 4;
  config.levels = 4;
  config.max_children = 2;
  config.oneway_fraction = 0.1;
  config.cpu_per_call = 10 * kNanosPerMicro;
  config.processor_kinds = 3;
  config.monitor.mode = parse_mode(args.mode);
  workload::SyntheticSystem system(fabric, config);
  system.run_transactions(args.transactions);
  system.wait_quiescent();
  return system.collect();
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  if (!parse_args(argc, argv, args)) return 2;

  try {
    monitor::CollectedLogs logs = args.workload == "synthetic"
                                      ? record_synthetic(args)
                                      : record_pps(args);
    analysis::write_trace_file(args.out, logs);
    std::printf("causeway-record: %zu records from %zu domains -> %s\n",
                logs.records.size(), logs.domains.size(), args.out.c_str());
  } catch (const std::exception& e) {
    std::fprintf(stderr, "causeway-record: %s\n", e.what());
    return 1;
  }
  return 0;
}
