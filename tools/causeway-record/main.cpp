// causeway-record -- run a monitored workload and write its trace file.
//
// The runtime half of the paper's two-phase workflow: drive a workload with
// the probes active, reach quiescence, collect the scattered per-process
// logs, and persist them for the off-line analyzer (causeway-analyze).
//
// With --stream, collection happens *while the workload runs*: a drainer
// thread wakes periodically, drains the per-thread ring buffers into one
// epoch bundle, and appends it to the trace file as a segment.  The
// resulting multi-segment trace synthesizes into the same database (and the
// same analyzer output) as a single offline collect of the identical run.
//
// The drain cadence adapts to the collection tier's observed pressure: an
// epoch that dropped records (ring overflow) halves the interval, a hot ring
// shortens it, a near-idle ring stretches it -- always clamped around the
// --interval-ms base (see monitor::adaptive_interval_ms).  Each persisted
// epoch reports its cadence decision on stderr; --fixed-interval restores
// the constant cadence.
//
// Usage:
//   causeway-record [--workload=pps|synthetic] [--mode=latency|cpu|causality]
//                   [--topology=mono|four|percomp|hybrid]   (pps)
//                   [--jobs=N] [--transactions=N] [--seed=N]
//                   [--stream] [--interval-ms=N] [--fixed-interval]
//                   [--out=trace.cwt] [--trace-format=v3|v4|v5] [--verify]
//                   [--publish=ADDR] [--publish-name=NAME] [--no-control]
//
// --verify reads the finished trace back through the analyzer's (parallel)
// segment decoder and checks the synthesized database against the writer's
// own record count -- a cheap end-to-end round-trip gate after every run.
//
// --publish replaces the local trace file with the cross-process transport:
// epoch bundles ship over a stream socket -- ADDR is "unix:/path", a bare
// socket path, or "tcp:host:port" for cross-host collection -- to a
// causeway-collectd daemon (which merges any number of publishing
// processes, local or remote).  The drain
// cadence, adaptivity and --interval-ms knobs apply unchanged; --out and
// --verify do not (there is no local file).  The publisher never blocks the
// workload: segments the daemon cannot absorb are dropped and counted.
//
// While publishing, the daemon may steer this process (causeway-collectd
// --policy=auto): CWCT directives arriving on the same socket retune the
// probes -- chain sampling, probe mode, muting -- applied at the next epoch
// boundary.  --no-control opts out; directives are then decoded and
// discarded, exactly as if this were an old publisher.
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <string>
#include <thread>
#include <unistd.h>

#include "analysis/trace_io.h"
#include "common/version.h"
#include "pps/pps_system.h"
#include "transport/publisher.h"
#include "workload/synthetic.h"

using namespace causeway;

namespace {

struct Args {
  std::string workload{"pps"};
  std::string mode{"latency"};
  std::string topology{"four"};
  int jobs{5};
  std::size_t transactions{10};
  std::uint64_t seed{42};
  std::string out{"trace.cwt"};
  std::uint32_t trace_format{analysis::kTraceFormatDefault};
  bool stream{false};
  int interval_ms{50};
  bool adaptive{true};
  bool verify{false};
  std::string publish;       // endpoint address; "" = write a local file
  std::string publish_name;  // handshake name (default: workload-pid)
  bool accept_control{true};  // --no-control: decode-and-drop directives
};

bool parse_args(int argc, char** argv, Args& args) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&](const char* prefix) -> const char* {
      const std::size_t n = std::strlen(prefix);
      return arg.compare(0, n, prefix) == 0 ? arg.c_str() + n : nullptr;
    };
    if (const char* v = value("--workload=")) {
      args.workload = v;
    } else if (const char* v = value("--mode=")) {
      args.mode = v;
    } else if (const char* v = value("--topology=")) {
      args.topology = v;
    } else if (const char* v = value("--jobs=")) {
      args.jobs = std::atoi(v);
    } else if (const char* v = value("--transactions=")) {
      args.transactions = static_cast<std::size_t>(std::atoll(v));
    } else if (const char* v = value("--seed=")) {
      args.seed = static_cast<std::uint64_t>(std::atoll(v));
    } else if (const char* v = value("--out=")) {
      args.out = v;
    } else if (const char* v = value("--trace-format=")) {
      const std::string format = v;
      if (format == "v3" || format == "3") {
        args.trace_format = analysis::kTraceFormatV3;
      } else if (format == "v4" || format == "4") {
        args.trace_format = analysis::kTraceFormatV4;
      } else if (format == "v5" || format == "5") {
        args.trace_format = analysis::kTraceFormatV5;
      } else {
        std::fprintf(stderr,
                     "unknown trace format '%s' (want v3, v4 or v5)\n", v);
        return false;
      }
    } else if (arg == "--stream") {
      args.stream = true;
    } else if (const char* v = value("--interval-ms=")) {
      args.interval_ms = std::atoi(v);
    } else if (arg == "--fixed-interval") {
      args.adaptive = false;
    } else if (arg == "--verify") {
      args.verify = true;
    } else if (const char* v = value("--publish=")) {
      args.publish = v;
    } else if (const char* v = value("--publish-name=")) {
      args.publish_name = v;
    } else if (arg == "--no-control") {
      args.accept_control = false;
    } else if (arg == "--version") {
      std::fputs(version_banner("causeway-record").c_str(), stdout);
      std::exit(0);
    } else {
      std::fprintf(stderr, "unknown argument '%s'\n", arg.c_str());
      return false;
    }
  }
  if (args.interval_ms < 1) args.interval_ms = 1;
  if (!args.publish.empty() && args.verify) {
    std::fprintf(stderr,
                 "--verify needs a local trace file; it cannot be combined "
                 "with --publish\n");
    return false;
  }
  if (!args.publish.empty() && args.stream) {
    std::fprintf(stderr,
                 "--publish already streams epochs; drop --stream\n");
    return false;
  }
  return true;
}

monitor::ProbeMode parse_mode(const std::string& mode) {
  if (mode == "cpu") return monitor::ProbeMode::kCpu;
  if (mode == "causality") return monitor::ProbeMode::kCausalityOnly;
  return monitor::ProbeMode::kLatency;
}

// Periodic drainer: one segment per epoch while the workload runs, plus a
// final drain after quiescence so the last partial epoch (and every
// domain's entry) always lands in the file.  With `adaptive`, the wait
// between drains follows adaptive_interval_ms over each epoch's observed
// drop count and ring occupancy.
class StreamDrainer {
 public:
  StreamDrainer(monitor::Collector& collector, analysis::TraceWriter& writer,
                int interval_ms, bool adaptive)
      : collector_(collector),
        writer_(writer),
        base_ms_(static_cast<std::uint64_t>(interval_ms)),
        current_ms_(base_ms_),
        adaptive_(adaptive) {
    thread_ = std::thread([this] { run(); });
  }

  // Stops the periodic thread and writes the final segment.  The final
  // segment is written even when empty: it carries the domain inventory of
  // a drain epoch, so an analyzer always sees the full deployment.
  void finish() {
    {
      std::lock_guard lock(mu_);
      stop_ = true;
    }
    cv_.notify_all();
    thread_.join();
    writer_.append(collector_.drain());
  }

 private:
  void run() {
    std::unique_lock lock(mu_);
    while (!stop_) {
      cv_.wait_for(lock, std::chrono::milliseconds(current_ms_),
                   [this] { return stop_; });
      if (stop_) break;
      lock.unlock();
      monitor::CollectedLogs batch = collector_.drain();
      const std::uint64_t prev_ms = current_ms_;
      if (adaptive_) {
        current_ms_ = monitor::adaptive_interval_ms(
            current_ms_, base_ms_, batch.dropped, batch.ring_utilization);
      }
      // Skip empty mid-run epochs: no records, nothing to persist.
      if (!batch.records.empty() || batch.dropped != 0) {
        writer_.append(batch);
        std::fprintf(
            stderr,
            "[stream] epoch %llu: +%zu records, dropped %llu, ring %.1f%%, "
            "interval %llu -> %llu ms\n",
            static_cast<unsigned long long>(batch.epoch),
            batch.records.size(),
            static_cast<unsigned long long>(batch.dropped),
            batch.ring_utilization * 100.0,
            static_cast<unsigned long long>(prev_ms),
            static_cast<unsigned long long>(current_ms_));
      }
      lock.lock();
    }
  }

  monitor::Collector& collector_;
  analysis::TraceWriter& writer_;
  const std::uint64_t base_ms_;
  std::uint64_t current_ms_;
  const bool adaptive_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_{false};
  std::thread thread_;
};

pps::PpsConfig make_pps_config(const Args& args) {
  pps::PpsConfig config;
  config.monitor.mode = parse_mode(args.mode);
  if (args.topology == "mono") {
    config.topology = pps::PpsConfig::Topology::kMonolithic;
  } else if (args.topology == "percomp") {
    config.topology = pps::PpsConfig::Topology::kPerComponent;
  } else if (args.topology == "hybrid") {
    config.topology = pps::PpsConfig::Topology::kHybridCom;
  } else {
    config.topology = pps::PpsConfig::Topology::kFourProcess;
  }
  return config;
}

workload::SyntheticConfig make_synthetic_config(const Args& args) {
  workload::SyntheticConfig config;
  config.seed = args.seed;
  config.domains = 4;
  config.components = 24;
  config.interfaces = 12;
  config.methods_per_interface = 4;
  config.levels = 4;
  config.max_children = 2;
  config.oneway_fraction = 0.1;
  config.cpu_per_call = 10 * kNanosPerMicro;
  config.processor_kinds = 3;
  config.monitor.mode = parse_mode(args.mode);
  return config;
}

// Runs `system` to quiescence; in streaming mode drains into `writer`
// concurrently, otherwise collects once at the end.  Returns the number of
// records persisted (for --verify).
template <typename System, typename Drive>
std::uint64_t record(const Args& args, System& system, Drive&& drive) {
  if (!args.publish.empty()) {
    monitor::Collector collector;
    system.attach_collector(collector);
    transport::PublisherConfig config;
    config.address = args.publish;
    config.process_name =
        args.publish_name.empty()
            ? args.workload + "-" + std::to_string(::getpid())
            : args.publish_name;
    config.trace_format = args.trace_format;
    config.interval_ms = static_cast<std::uint64_t>(args.interval_ms);
    config.adaptive = args.adaptive;
    config.accept_control = args.accept_control;
    transport::EpochPublisher publisher(collector, config);
    publisher.start();
    drive();
    system.wait_quiescent();
    const bool clean = publisher.finish();
    const transport::EpochPublisher::Stats stats = publisher.stats();
    std::printf(
        "causeway-record: published %llu records in %llu segments "
        "(%llu epochs, %llu dropped, %llu reconnects) -> %s%s\n",
        static_cast<unsigned long long>(stats.records_sent),
        static_cast<unsigned long long>(stats.segments_sent),
        static_cast<unsigned long long>(stats.epochs_drained),
        static_cast<unsigned long long>(stats.dropped_records),
        static_cast<unsigned long long>(stats.reconnects),
        args.publish.c_str(), clean ? "" : " [flush incomplete]");
    if (stats.directives_received > 0 || stats.sampled_out_records > 0) {
      std::printf(
          "causeway-record: control: %llu directives (last applied seq "
          "%llu), %llu records sampled out\n",
          static_cast<unsigned long long>(stats.directives_received),
          static_cast<unsigned long long>(stats.last_applied_seq),
          static_cast<unsigned long long>(stats.sampled_out_records));
    }
    return stats.records_sent;
  }

  if (!args.stream) {
    drive();
    system.wait_quiescent();
    monitor::CollectedLogs logs = system.collect();
    analysis::write_trace_file(args.out, logs, args.trace_format);
    std::printf("causeway-record: %zu records from %zu domains -> %s\n",
                logs.records.size(), logs.domains.size(), args.out.c_str());
    return logs.records.size();
  }

  monitor::Collector collector;
  system.attach_collector(collector);
  analysis::TraceWriter writer(args.out, args.trace_format);
  StreamDrainer drainer(collector, writer, args.interval_ms, args.adaptive);
  drive();
  system.wait_quiescent();
  drainer.finish();
  std::printf(
      "causeway-record: %llu records in %zu segments (%llu epochs) -> %s\n",
      static_cast<unsigned long long>(writer.records_written()),
      writer.segments(), static_cast<unsigned long long>(collector.epoch()),
      args.out.c_str());
  return writer.records_written();
}

// Round-trips the written trace through the analyzer's decoder.  The
// database's record count must match what the writer persisted; a
// mismatch (or a decode throw) is a hard failure.
int verify_trace(const Args& args, std::uint64_t written) {
  analysis::LogDatabase db;
  const std::size_t n = analysis::read_trace_file(args.out, db);
  if (n != written || db.records().size() != written) {
    std::fprintf(stderr,
                 "causeway-record: verify FAILED: wrote %llu records, "
                 "read back %zu (database holds %zu)\n",
                 static_cast<unsigned long long>(written), n,
                 db.records().size());
    return 1;
  }
  std::printf("causeway-record: verified %zu records, %zu chains, %s\n", n,
              db.chains().size(), args.out.c_str());
  return 0;
}

std::uint64_t record_pps(const Args& args) {
  orb::Fabric fabric;
  pps::PpsSystem system(fabric, make_pps_config(args));
  return record(args, system, [&] {
    for (int i = 0; i < args.jobs; ++i) {
      system.submit_job(2 + i % 3, 150 + 150 * (i % 2), i % 2 == 0);
    }
  });
}

std::uint64_t record_synthetic(const Args& args) {
  orb::Fabric fabric;
  workload::SyntheticSystem system(fabric, make_synthetic_config(args));
  return record(args, system,
                [&] { system.run_transactions(args.transactions); });
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  if (!parse_args(argc, argv, args)) return 2;

  try {
    const std::uint64_t written = args.workload == "synthetic"
                                      ? record_synthetic(args)
                                      : record_pps(args);
    if (args.verify) return verify_trace(args, written);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "causeway-record: %s\n", e.what());
    return 1;
  }
  return 0;
}
