// causeway-collectd -- the collection daemon for multi-process runs.
//
// The paper's collection step, promoted to a live service: any number of
// monitored processes publish their drain epochs over a stream socket --
// Unix-domain on one host, TCP across hosts; `causeway-record
// --publish=ADDR`, or any embedding of transport::EpochPublisher -- and
// this daemon synthesizes them: feeding every arriving segment into one
// epoch-driven AnalysisPipeline (live summaries on stderr, anomaly events
// to the chosen sink, a final render at shutdown) and/or appending them to
// one merged `.cwt` trace whose analyzer output matches an in-process
// collection of the same workload.
//
// With --relay=ADDR the daemon is a *tier* instead of a root: everything
// it receives is forwarded upstream to a parent causeway-collectd through
// per-origin uplinks (transport::RelaySink), so publishers -> leaf
// collectd -> root collectd produces the same merged report as every
// publisher connecting to the root directly.
//
// Usage:
//   causeway-collectd --listen=ADDR [--listen=ADDR ...]
//                     [--relay=ADDR]
//                     [--out=merged.cwt] [--trace-format=v3|v4|v5]
//                     [--store=DIR] [--rotate-bytes=N] [--rotate-segments=N]
//                     [--checkpoint-segments=N] [--compress]
//                     [--report=PATH | --report=-]
//                     [--anomalies=stderr|jsonl:PATH|none]
//                     [--ingest-shards=N]
//                     [--policy=off|auto] [--policy-burst=N]
//                     [--policy-window-ms=N] [--policy-throttle=N]
//                     [--policy-rearm-windows=N] [--policy-hold-ms=N]
//                     [--policy-max-rps=N]
//                     [--addr-file=PATH]
//                     [--expect=N] [--idle-exit-ms=N] [--quiet]
//
// --store=DIR is the durable alternative to --out: segments stream into a
// rotating, checkpointed trace store *as they arrive* (sealed
// store-NNNNNN.cwt files plus a catalog.cwc index; see store/store.h), so
// a daemon crash loses at most the live file's tail past its last
// checkpoint, and `causeway-query DIR` works mid-run.  --rotate-bytes
// (default 64MiB) / --rotate-segments bound the live file;
// --checkpoint-segments (default 16) paces the interior checkpoints.
// --compress makes the store write format v5 (per-column deflate).
//
// ADDR is "unix:/path", "tcp:host:port" (port 0 binds ephemeral), or a
// bare socket path.  --listen repeats: one daemon can serve local
// publishers on a Unix socket and remote ones on TCP at once.
// --addr-file writes the bound addresses (ephemeral ports resolved), one
// per line, once listening -- scripts wait on the file instead of racing
// the bind.
//
// --policy=auto closes the control loop: a ControlPolicy watches the live
// anomaly stream and per-publisher load, and sends CWCT directives back
// down the data sockets -- sampling a hot publisher down to 1-in-N
// (--policy-throttle, default 10) and re-arming it to full fidelity after
// the hysteresis clears.  Old (protocol 1) publishers are silently left
// alone.  The suppressed-record counts publishers report back (CWST) are
// folded into the pipeline so the final report reconciles exactly.  In
// relay mode the loop spans tiers instead: root directives are relayed
// down to the origin publisher, and its acknowledgement travels back up
// with the root's own directive seq.
//
// Lifecycle: runs until SIGINT/SIGTERM, or -- for scripted runs -- until
// --expect=N publishers have connected and all of them disconnected, or
// until --idle-exit-ms of no connected publishers after at least one was
// seen.  Shutdown order: stop accepting, flush the relay (when tiered),
// write the merged trace, render.
//
// Publisher failure never kills the daemon: a protocol error or crashed
// peer closes that connection only, discarding at most one incomplete
// frame (the clean-prefix discipline).  Daemon restarts are symmetric --
// publishers reconnect with backoff and resend from a frame boundary, and
// a relay rides out a root restart the same way.
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "analysis/anomaly.h"
#include "analysis/pipeline.h"
#include "analysis/trace_io.h"
#include "common/version.h"
#include "store/store.h"
#include "transport/ingest_sink.h"
#include "transport/policy.h"
#include "transport/relay_sink.h"
#include "transport/subscriber.h"

using namespace causeway;

namespace {

std::atomic<bool> g_stop{false};

void handle_signal(int) { g_stop.store(true, std::memory_order_relaxed); }

int usage() {
  std::fprintf(
      stderr,
      "usage: causeway-collectd --listen=ADDR [--listen=ADDR ...]\n"
      "           [--relay=ADDR]\n"
      "           [--out=merged.cwt] [--trace-format=v3|v4|v5]\n"
      "           [--store=DIR] [--rotate-bytes=N] [--rotate-segments=N]\n"
      "           [--checkpoint-segments=N] [--compress]\n"
      "           [--report=PATH|-] [--anomalies=stderr|jsonl:PATH|none]\n"
      "           [--ingest-shards=N] [--expect=N] [--idle-exit-ms=N]\n"
      "           [--policy=off|auto] [--policy-burst=N]\n"
      "           [--policy-window-ms=N] [--policy-throttle=N]\n"
      "           [--policy-rearm-windows=N] [--policy-hold-ms=N]\n"
      "           [--policy-max-rps=N] [--addr-file=PATH] [--quiet]\n"
      "ADDR: unix:/path, tcp:host:port (port 0 = ephemeral), or a bare "
      "socket path\n");
  return 2;
}

std::uint64_t steady_ms() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> listens;
  std::string relay_upstream;
  std::string addr_file;
  std::string out;
  std::string store_dir;
  store::StoreOptions store_options;
  bool compress = false;
  std::string report;
  std::string anomalies = "none";
  std::uint32_t trace_format = analysis::kTraceFormatDefault;
  std::size_t ingest_shards = 0;
  std::uint64_t expect = 0;
  std::uint64_t idle_exit_ms = 0;
  bool quiet = false;
  bool policy_on = false;
  transport::PolicyConfig policy_config;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--listen=", 0) == 0) {
      listens.push_back(arg.substr(9));
    } else if (arg.rfind("--relay=", 0) == 0) {
      relay_upstream = arg.substr(8);
    } else if (arg.rfind("--addr-file=", 0) == 0) {
      addr_file = arg.substr(12);
    } else if (arg.rfind("--out=", 0) == 0) {
      out = arg.substr(6);
    } else if (arg.rfind("--store=", 0) == 0) {
      store_dir = arg.substr(8);
    } else if (arg.rfind("--rotate-bytes=", 0) == 0) {
      store_options.rotate_bytes =
          static_cast<std::uint64_t>(std::atoll(arg.c_str() + 15));
    } else if (arg.rfind("--rotate-segments=", 0) == 0) {
      store_options.rotate_segments =
          static_cast<std::uint64_t>(std::atoll(arg.c_str() + 18));
    } else if (arg.rfind("--checkpoint-segments=", 0) == 0) {
      store_options.checkpoint_every =
          static_cast<std::size_t>(std::atoll(arg.c_str() + 22));
    } else if (arg == "--compress") {
      compress = true;
    } else if (arg == "--version") {
      std::fputs(version_banner("causeway-collectd").c_str(), stdout);
      return 0;
    } else if (arg.rfind("--trace-format=", 0) == 0) {
      const std::string format = arg.substr(15);
      if (format == "v3" || format == "3") {
        trace_format = analysis::kTraceFormatV3;
      } else if (format == "v4" || format == "4") {
        trace_format = analysis::kTraceFormatV4;
      } else if (format == "v5" || format == "5") {
        trace_format = analysis::kTraceFormatV5;
      } else {
        std::fprintf(stderr,
                     "unknown trace format '%s' (want v3, v4 or v5)\n",
                     format.c_str());
        return 2;
      }
    } else if (arg.rfind("--report=", 0) == 0) {
      report = arg.substr(9);
    } else if (arg.rfind("--anomalies=", 0) == 0) {
      anomalies = arg.substr(12);
    } else if (arg.rfind("--ingest-shards=", 0) == 0) {
      ingest_shards = static_cast<std::size_t>(std::atoll(arg.c_str() + 16));
    } else if (arg.rfind("--expect=", 0) == 0) {
      expect = static_cast<std::uint64_t>(std::atoll(arg.c_str() + 9));
    } else if (arg.rfind("--idle-exit-ms=", 0) == 0) {
      idle_exit_ms = static_cast<std::uint64_t>(std::atoll(arg.c_str() + 15));
    } else if (arg.rfind("--policy=", 0) == 0) {
      const std::string mode = arg.substr(9);
      if (mode == "auto") {
        policy_on = true;
      } else if (mode == "off") {
        policy_on = false;
      } else {
        std::fprintf(stderr, "unknown policy '%s' (want off or auto)\n",
                     mode.c_str());
        return 2;
      }
    } else if (arg.rfind("--policy-burst=", 0) == 0) {
      policy_config.anomaly_burst =
          static_cast<std::uint64_t>(std::atoll(arg.c_str() + 15));
    } else if (arg.rfind("--policy-window-ms=", 0) == 0) {
      policy_config.window_ms =
          static_cast<std::uint64_t>(std::atoll(arg.c_str() + 19));
    } else if (arg.rfind("--policy-throttle=", 0) == 0) {
      policy_config.throttled_rate_index = monitor::sample_rate_index_for(
          static_cast<std::uint64_t>(std::atoll(arg.c_str() + 18)));
    } else if (arg.rfind("--policy-rearm-windows=", 0) == 0) {
      policy_config.rearm_quiet_windows =
          static_cast<std::uint64_t>(std::atoll(arg.c_str() + 23));
    } else if (arg.rfind("--policy-hold-ms=", 0) == 0) {
      policy_config.min_hold_ms =
          static_cast<std::uint64_t>(std::atoll(arg.c_str() + 17));
    } else if (arg.rfind("--policy-max-rps=", 0) == 0) {
      policy_config.max_records_per_sec =
          static_cast<std::uint64_t>(std::atoll(arg.c_str() + 17));
    } else if (arg == "--quiet") {
      quiet = true;
    } else {
      return usage();
    }
  }
  if (listens.empty()) return usage();
  const bool relaying = !relay_upstream.empty();
  if (relaying && (!out.empty() || !store_dir.empty() || !report.empty() ||
                   anomalies != "none" || policy_on)) {
    std::fprintf(stderr,
                 "causeway-collectd: --relay forwards everything upstream; "
                 "--out/--store/--report/--anomalies/--policy belong on the "
                 "root daemon\n");
    return 2;
  }
  if (!relaying && out.empty() && store_dir.empty() && report.empty() &&
      anomalies == "none") {
    std::fprintf(stderr,
                 "causeway-collectd: nothing to do -- pass --relay, --out, "
                 "--store, --report and/or --anomalies\n");
    return 2;
  }
  // --compress selects the v5 store format; the store is where cold
  // columns pay off.  It does not retroactively change --trace-format for
  // the merged file (which passes segments through verbatim).
  store_options.trace_format =
      compress ? analysis::kTraceFormatV5 : analysis::kTraceFormatV4;
  if (compress && store_dir.empty()) {
    std::fprintf(stderr,
                 "causeway-collectd: --compress needs --store=DIR\n");
    return 2;
  }

  std::signal(SIGINT, handle_signal);
  std::signal(SIGTERM, handle_signal);

  try {
    // The pipeline only runs when something consumes its output; a pure
    // merge relay skips the decode entirely.
    std::unique_ptr<analysis::AnalysisPipeline> pipeline;
    if (!report.empty() || anomalies != "none") {
      pipeline = std::make_unique<analysis::AnalysisPipeline>(ingest_shards);
    }

    std::unique_ptr<analysis::AnomalySink> sink;
    if (anomalies == "stderr") {
      sink = std::make_unique<analysis::StderrAnomalySink>();
    } else if (anomalies.rfind("jsonl:", 0) == 0) {
      auto jsonl =
          std::make_unique<analysis::JsonlAnomalySink>(anomalies.substr(6));
      if (!jsonl->ok()) {
        std::fprintf(stderr, "causeway-collectd: cannot write '%s'\n",
                     anomalies.c_str() + 6);
        return 1;
      }
      sink = std::move(jsonl);
    } else if (anomalies != "none") {
      return usage();
    }
    if (sink && pipeline) pipeline->add_sink(sink.get());

    // The policy sends through the daemon, which is constructed below (it
    // needs the sink, which needs the policy); one level of pointer
    // indirection breaks the cycle.  No directive can fire before the
    // daemon exists -- they only originate from daemon callbacks and the
    // wait-loop tick.
    transport::CollectorDaemon* daemon_ptr = nullptr;
    std::unique_ptr<transport::ControlPolicy> policy;
    if (policy_on) {
      policy = std::make_unique<transport::ControlPolicy>(
          policy_config,
          [&daemon_ptr](std::uint64_t peer_id,
                        const transport::ControlDirective& directive) {
            return daemon_ptr ? daemon_ptr->send_control(peer_id, directive)
                              : 0;
          });
      if (pipeline) pipeline->add_sink(policy.get());
    }

    // The daemon's sink: a relay tier forwards upstream, a root ingests.
    std::unique_ptr<transport::RelaySink> relay;
    std::unique_ptr<transport::IngestSink> ingest;
    transport::DaemonSink* daemon_sink = nullptr;
    if (relaying) {
      transport::RelaySink::Options relay_options;
      relay_options.upstream = relay_upstream;
      relay = std::make_unique<transport::RelaySink>(std::move(relay_options));
      daemon_sink = relay.get();
    } else {
      transport::IngestSink::Options sink_options;
      sink_options.pipeline = pipeline.get();
      sink_options.merged_path = out;
      sink_options.merged_format = trace_format;
      sink_options.store_dir = store_dir;
      sink_options.store_options = store_options;
      sink_options.policy = policy.get();
      ingest = std::make_unique<transport::IngestSink>(std::move(sink_options));
      if (!quiet && pipeline) {
        analysis::AnalysisPipeline* pp = pipeline.get();
        ingest->epoch_callback = [pp](const transport::PeerInfo& peer,
                                      const analysis::EpochInfo&) {
          std::fprintf(stderr, "[collectd] %s/%llu: %s\n",
                       peer.process_name.c_str(),
                       static_cast<unsigned long long>(peer.pid),
                       pp->live_summary().c_str());
        };
      }
      daemon_sink = ingest.get();
    }

    transport::CollectorDaemon daemon({listens, 0}, *daemon_sink);
    daemon_ptr = &daemon;
    if (relay) relay->set_downstream(&daemon);
    daemon.start();
    const std::vector<transport::EndpointAddress> bound =
        daemon.listen_addresses();
    if (!quiet) {
      for (const transport::EndpointAddress& address : bound) {
        std::fprintf(stderr, "[collectd] listening on %s\n",
                     address.to_string().c_str());
      }
      if (relaying) {
        std::fprintf(stderr, "[collectd] relaying to %s\n",
                     relay_upstream.c_str());
      }
    }
    if (!addr_file.empty()) {
      // Written after every bind succeeded, so a script that waits for the
      // file gets resolved addresses (ephemeral TCP ports included).
      std::ofstream af(addr_file);
      for (const transport::EndpointAddress& address : bound) {
        af << address.to_string() << "\n";
      }
      if (!af.flush()) {
        std::fprintf(stderr, "causeway-collectd: cannot write '%s'\n",
                     addr_file.c_str());
        return 1;
      }
    }

    // Wait for a stop condition: signal, --expect satisfied, or idle.
    std::uint64_t idle_ms = 0;
    while (!g_stop.load(std::memory_order_relaxed)) {
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
      // Quiet windows only exist if somebody watches the clock while no
      // segments arrive; the tick is what lets a throttled publisher
      // re-arm during silence.
      if (policy) policy->tick(steady_ms());
      const transport::CollectorDaemon::Stats stats = daemon.stats();
      if (expect > 0 && stats.connections_total >= expect &&
          stats.connections_active == 0) {
        break;
      }
      if (idle_exit_ms > 0) {
        if (stats.connections_active > 0 || stats.connections_total == 0) {
          idle_ms = 0;
        } else {
          idle_ms += 20;
          if (idle_ms >= idle_exit_ms) break;
        }
      }
    }

    const transport::CollectorDaemon::Stats stats = daemon.stats();
    daemon.stop();
    if (!quiet) {
      std::fprintf(
          stderr,
          "[collectd] listeners: %llu unix, %llu tcp; connections: %llu "
          "unix, %llu tcp\n",
          static_cast<unsigned long long>(stats.listeners_unix),
          static_cast<unsigned long long>(stats.listeners_tcp),
          static_cast<unsigned long long>(stats.connections_unix),
          static_cast<unsigned long long>(stats.connections_tcp));
    }
    if (relay) {
      const bool flushed = relay->finish();
      const transport::RelaySink::Totals totals = relay->totals();
      if (!quiet) {
        std::fprintf(
            stderr,
            "[collectd] relay: %llu origins, %llu segments (%llu records) "
            "forwarded, %llu downstream-dropped records folded, %llu "
            "statuses, %llu directives relayed down\n",
            static_cast<unsigned long long>(totals.routes),
            static_cast<unsigned long long>(totals.segments_forwarded),
            static_cast<unsigned long long>(totals.records_forwarded),
            static_cast<unsigned long long>(totals.drop_records_forwarded),
            static_cast<unsigned long long>(totals.statuses_forwarded),
            static_cast<unsigned long long>(totals.directives_relayed));
        std::fprintf(
            stderr,
            "[collectd] relay upstream: %llu bytes, %llu reconnects, %llu "
            "relay-dropped records (%llu segments)%s\n",
            static_cast<unsigned long long>(totals.upstream_bytes),
            static_cast<unsigned long long>(totals.upstream_reconnects),
            static_cast<unsigned long long>(totals.relay_dropped_records),
            static_cast<unsigned long long>(totals.relay_dropped_segments),
            flushed ? "" : " (flush deadline expired)");
      }
      return 0;
    }
    const transport::IngestSink::Totals totals = ingest->finalize();
    if (!quiet) {
      std::fprintf(
          stderr,
          "[collectd] %llu publishers, %llu segments (%llu records), "
          "%llu publish-dropped records, %llu protocol errors%s%s\n",
          static_cast<unsigned long long>(stats.connections_total),
          static_cast<unsigned long long>(totals.segments),
          static_cast<unsigned long long>(totals.records),
          static_cast<unsigned long long>(totals.publish_dropped_records),
          static_cast<unsigned long long>(stats.protocol_errors),
          out.empty() ? "" : " -> ", out.c_str());
      if (!store_dir.empty()) {
        std::fprintf(
            stderr,
            "[collectd] store: %llu segments into %zu sealed files at %s\n",
            static_cast<unsigned long long>(totals.store_segments),
            totals.store_files_sealed, store_dir.c_str());
      }
      if (policy) {
        const transport::ControlPolicy::Stats ps = policy->stats();
        std::fprintf(
            stderr,
            "[collectd] policy: %llu throttles, %llu re-arms, %llu "
            "directives sent, %llu anomalies attributed, %llu sampled-out "
            "records reported\n",
            static_cast<unsigned long long>(ps.throttles),
            static_cast<unsigned long long>(ps.rearms),
            static_cast<unsigned long long>(ps.directives_sent),
            static_cast<unsigned long long>(ps.anomalies_attributed),
            static_cast<unsigned long long>(totals.sampled_out_records));
      }
    }

    if (pipeline && !report.empty()) {
      const std::string rendered = pipeline->report();
      if (report == "-") {
        std::fputs(rendered.c_str(), stdout);
      } else {
        std::ofstream rf(report);
        rf << rendered;
        if (!rf) {
          std::fprintf(stderr, "causeway-collectd: cannot write '%s'\n",
                       report.c_str());
          return 1;
        }
      }
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "causeway-collectd: %s\n", e.what());
    return 1;
  }
  return 0;
}
