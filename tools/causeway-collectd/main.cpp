// causeway-collectd -- the collection daemon for multi-process runs.
//
// The paper's collection step, promoted to a live service: any number of
// monitored processes publish their drain epochs over a Unix-domain socket
// (`causeway-record --publish=SOCK`, or any embedding of
// transport::EpochPublisher), and this daemon synthesizes them -- feeding
// every arriving segment into one epoch-driven AnalysisPipeline (live
// summaries on stderr, anomaly events to the chosen sink, a final render
// at shutdown) and/or appending them to one merged `.cwt` trace whose
// analyzer output matches an in-process collection of the same workload.
//
// Usage:
//   causeway-collectd --listen=SOCK
//                     [--out=merged.cwt] [--trace-format=v3|v4]
//                     [--report=PATH | --report=-]
//                     [--anomalies=stderr|jsonl:PATH|none]
//                     [--ingest-shards=N]
//                     [--expect=N] [--idle-exit-ms=N] [--quiet]
//
// Lifecycle: runs until SIGINT/SIGTERM, or -- for scripted runs -- until
// --expect=N publishers have connected and all of them disconnected, or
// until --idle-exit-ms of no connected publishers after at least one was
// seen.  Shutdown order: stop accepting, write the merged trace, render.
//
// Publisher failure never kills the daemon: a protocol error or crashed
// peer closes that connection only, discarding at most one incomplete
// frame (the clean-prefix discipline).  Daemon restarts are symmetric --
// publishers reconnect with backoff and resend from a frame boundary.
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <thread>

#include "analysis/anomaly.h"
#include "analysis/pipeline.h"
#include "analysis/trace_io.h"
#include "transport/ingest_sink.h"
#include "transport/subscriber.h"

using namespace causeway;

namespace {

std::atomic<bool> g_stop{false};

void handle_signal(int) { g_stop.store(true, std::memory_order_relaxed); }

int usage() {
  std::fprintf(
      stderr,
      "usage: causeway-collectd --listen=SOCK\n"
      "           [--out=merged.cwt] [--trace-format=v3|v4]\n"
      "           [--report=PATH|-] [--anomalies=stderr|jsonl:PATH|none]\n"
      "           [--ingest-shards=N] [--expect=N] [--idle-exit-ms=N]\n"
      "           [--quiet]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string listen;
  std::string out;
  std::string report;
  std::string anomalies = "none";
  std::uint32_t trace_format = analysis::kTraceFormatDefault;
  std::size_t ingest_shards = 0;
  std::uint64_t expect = 0;
  std::uint64_t idle_exit_ms = 0;
  bool quiet = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--listen=", 0) == 0) {
      listen = arg.substr(9);
    } else if (arg.rfind("--out=", 0) == 0) {
      out = arg.substr(6);
    } else if (arg.rfind("--trace-format=", 0) == 0) {
      const std::string format = arg.substr(15);
      if (format == "v3" || format == "3") {
        trace_format = analysis::kTraceFormatV3;
      } else if (format == "v4" || format == "4") {
        trace_format = analysis::kTraceFormatV4;
      } else {
        std::fprintf(stderr, "unknown trace format '%s' (want v3 or v4)\n",
                     format.c_str());
        return 2;
      }
    } else if (arg.rfind("--report=", 0) == 0) {
      report = arg.substr(9);
    } else if (arg.rfind("--anomalies=", 0) == 0) {
      anomalies = arg.substr(12);
    } else if (arg.rfind("--ingest-shards=", 0) == 0) {
      ingest_shards = static_cast<std::size_t>(std::atoll(arg.c_str() + 16));
    } else if (arg.rfind("--expect=", 0) == 0) {
      expect = static_cast<std::uint64_t>(std::atoll(arg.c_str() + 9));
    } else if (arg.rfind("--idle-exit-ms=", 0) == 0) {
      idle_exit_ms = static_cast<std::uint64_t>(std::atoll(arg.c_str() + 15));
    } else if (arg == "--quiet") {
      quiet = true;
    } else {
      return usage();
    }
  }
  if (listen.empty()) return usage();
  if (out.empty() && report.empty() && anomalies == "none") {
    std::fprintf(stderr,
                 "causeway-collectd: nothing to do -- pass --out, --report "
                 "and/or --anomalies\n");
    return 2;
  }

  std::signal(SIGINT, handle_signal);
  std::signal(SIGTERM, handle_signal);

  try {
    // The pipeline only runs when something consumes its output; a pure
    // merge relay skips the decode entirely.
    std::unique_ptr<analysis::AnalysisPipeline> pipeline;
    if (!report.empty() || anomalies != "none") {
      pipeline = std::make_unique<analysis::AnalysisPipeline>(ingest_shards);
    }

    std::unique_ptr<analysis::AnomalySink> sink;
    if (anomalies == "stderr") {
      sink = std::make_unique<analysis::StderrAnomalySink>();
    } else if (anomalies.rfind("jsonl:", 0) == 0) {
      auto jsonl =
          std::make_unique<analysis::JsonlAnomalySink>(anomalies.substr(6));
      if (!jsonl->ok()) {
        std::fprintf(stderr, "causeway-collectd: cannot write '%s'\n",
                     anomalies.c_str() + 6);
        return 1;
      }
      sink = std::move(jsonl);
    } else if (anomalies != "none") {
      return usage();
    }
    if (sink && pipeline) pipeline->add_sink(sink.get());

    transport::IngestSink::Options sink_options;
    sink_options.pipeline = pipeline.get();
    sink_options.merged_path = out;
    sink_options.merged_format = trace_format;
    transport::IngestSink ingest(std::move(sink_options));
    if (!quiet && pipeline) {
      analysis::AnalysisPipeline* pp = pipeline.get();
      ingest.epoch_callback = [pp](const transport::PeerInfo& peer,
                                   const analysis::EpochInfo&) {
        std::fprintf(stderr, "[collectd] %s/%llu: %s\n",
                     peer.process_name.c_str(),
                     static_cast<unsigned long long>(peer.pid),
                     pp->live_summary().c_str());
      };
    }

    transport::CollectorDaemon daemon({listen, 0}, ingest);
    daemon.start();
    if (!quiet) {
      std::fprintf(stderr, "[collectd] listening on %s\n", listen.c_str());
    }

    // Wait for a stop condition: signal, --expect satisfied, or idle.
    std::uint64_t idle_ms = 0;
    while (!g_stop.load(std::memory_order_relaxed)) {
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
      const transport::CollectorDaemon::Stats stats = daemon.stats();
      if (expect > 0 && stats.connections_total >= expect &&
          stats.connections_active == 0) {
        break;
      }
      if (idle_exit_ms > 0) {
        if (stats.connections_active > 0 || stats.connections_total == 0) {
          idle_ms = 0;
        } else {
          idle_ms += 20;
          if (idle_ms >= idle_exit_ms) break;
        }
      }
    }

    daemon.stop();
    const transport::IngestSink::Totals totals = ingest.finalize();
    const transport::CollectorDaemon::Stats stats = daemon.stats();
    if (!quiet) {
      std::fprintf(
          stderr,
          "[collectd] %llu publishers, %llu segments (%llu records), "
          "%llu publish-dropped records, %llu protocol errors%s%s\n",
          static_cast<unsigned long long>(stats.connections_total),
          static_cast<unsigned long long>(totals.segments),
          static_cast<unsigned long long>(totals.records),
          static_cast<unsigned long long>(totals.publish_dropped_records),
          static_cast<unsigned long long>(stats.protocol_errors),
          out.empty() ? "" : " -> ", out.c_str());
    }

    if (pipeline && !report.empty()) {
      const std::string rendered = pipeline->report();
      if (report == "-") {
        std::fputs(rendered.c_str(), stdout);
      } else {
        std::ofstream rf(report);
        rf << rendered;
        if (!rf) {
          std::fprintf(stderr, "causeway-collectd: cannot write '%s'\n",
                       report.c_str());
          return 1;
        }
      }
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "causeway-collectd: %s\n", e.what());
    return 1;
  }
  return 0;
}
