// causeway-analyze -- the stand-alone off-line analyzer.
//
// Reads one or more trace files (from causeway-record or any embedding of
// analysis::write_trace_file), reconstructs the DSCG, annotates it per the
// captured probe mode, and renders the requested artifact.
//
// Usage:
//   causeway-analyze <trace.cwt> [more.cwt ...]
//                    [--report | --text | --dot | --json | --ccsg]
//                    [--max-nodes=N] [-o <file>]
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "analysis/ccsg.h"
#include "analysis/cpu.h"
#include "analysis/diff.h"
#include "analysis/dscg.h"
#include "analysis/export.h"
#include "analysis/latency.h"
#include "analysis/report.h"
#include "analysis/timeline.h"
#include "analysis/trace_io.h"

using namespace causeway;

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: causeway-analyze <trace.cwt> [more.cwt ...]\n"
               "           [--report|--summary|--text|--dot|--json|--ccsg|"
               "--html|\n"
               "            --timeline|--timeline-csv|--diff]\n"
               "           [--max-nodes=N] [-o <file>]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> inputs;
  std::string format = "report";
  std::string output;
  std::size_t max_nodes = 0;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--report" || arg == "--text" || arg == "--dot" ||
        arg == "--json" || arg == "--ccsg" || arg == "--html" ||
        arg == "--summary" || arg == "--diff" || arg == "--timeline" ||
        arg == "--timeline-csv") {
      format = arg.substr(2);
    } else if (arg.rfind("--max-nodes=", 0) == 0) {
      max_nodes = static_cast<std::size_t>(std::atoll(arg.c_str() + 12));
    } else if (arg == "-o") {
      if (++i >= argc) return usage();
      output = argv[i];
    } else if (!arg.empty() && arg[0] == '-') {
      return usage();
    } else {
      inputs.push_back(arg);
    }
  }
  if (inputs.empty()) return usage();

  try {
    if (format == "diff") {
      // --diff <baseline.cwt> <current.cwt>
      if (inputs.size() != 2) {
        std::fprintf(stderr,
                     "causeway-analyze --diff needs exactly two traces "
                     "(baseline, current)\n");
        return 2;
      }
      analysis::LogDatabase base_db, cur_db;
      analysis::read_trace_file(inputs[0], base_db);
      analysis::read_trace_file(inputs[1], cur_db);
      auto base = analysis::Dscg::build(base_db);
      auto cur = analysis::Dscg::build(cur_db);
      const auto diff =
          analysis::diff_runs(base, base_db, cur, cur_db);
      std::fputs(diff.to_string().c_str(), stdout);
      return diff.clean() ? 0 : 3;  // CI-friendly: nonzero on regression
    }

    analysis::LogDatabase db;
    for (const auto& path : inputs) {
      const std::size_t n = analysis::read_trace_file(path, db);
      std::fprintf(stderr, "loaded %zu records from %s\n", n, path.c_str());
    }

    auto dscg = analysis::Dscg::build(db);
    const monitor::ProbeMode mode = db.primary_mode();
    if (mode == monitor::ProbeMode::kLatency) {
      analysis::annotate_latency(dscg);
    } else if (mode == monitor::ProbeMode::kCpu) {
      analysis::annotate_cpu(dscg);
    }

    std::string rendered;
    analysis::ExportOptions options;
    options.max_nodes = max_nodes;
    if (format == "text") {
      rendered = analysis::to_text(dscg, options);
    } else if (format == "dot") {
      rendered = analysis::to_dot(dscg, options);
    } else if (format == "json") {
      rendered = analysis::to_json(dscg, options);
    } else if (format == "ccsg") {
      rendered = analysis::Ccsg::build(dscg).to_xml();
    } else if (format == "html") {
      rendered = analysis::to_html(dscg, options);
    } else if (format == "summary") {
      rendered = analysis::summary_json(dscg, db) + "\n";
    } else if (format == "timeline") {
      rendered = analysis::timeline_to_text(analysis::build_timeline(dscg));
    } else if (format == "timeline-csv") {
      rendered = analysis::timeline_to_csv(analysis::build_timeline(dscg));
    } else {
      rendered = analysis::characterization_report(dscg, db);
    }

    if (output.empty()) {
      std::fputs(rendered.c_str(), stdout);
    } else {
      std::ofstream out(output);
      out << rendered;
      if (!out) {
        std::fprintf(stderr, "causeway-analyze: cannot write '%s'\n",
                     output.c_str());
        return 1;
      }
      std::fprintf(stderr, "wrote %zu bytes to %s\n", rendered.size(),
                   output.c_str());
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "causeway-analyze: %s\n", e.what());
    return 1;
  }
  return 0;
}
