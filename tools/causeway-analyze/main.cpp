// causeway-analyze -- the stand-alone analyzer.
//
// Reads one or more trace files (from causeway-record or any embedding of
// analysis::write_trace_file) through the epoch-driven AnalysisPipeline and
// renders the requested artifact.  With --follow it tails a growing trace
// segment-by-segment instead: each complete segment becomes one pipeline
// epoch, a live summary line goes to stderr, anomaly events stream to the
// chosen sink, and the final render (identical to an offline run over the
// same bytes) is emitted when the tail goes quiet.
//
// Usage:
//   causeway-analyze <trace.cwt> [more.cwt ...]
//                    [--report | --summary | --text | --dot | --json |
//                     --ccsg | --html | --timeline | --timeline-csv | --diff]
//                    [--follow] [--poll-ms=N] [--idle-exit-ms=N]
//                    [--anomalies=stderr|jsonl:PATH|none]
//                    [--max-nodes=N] [--ingest-shards=N] [-o <file>]
//                    [--reindex]
//
// --ingest-shards pins the database's parallel-ingest shard count (default:
// CAUSEWAY_INGEST_SHARDS or hardware concurrency).  Output is byte-identical
// for every shard count -- the ctest suite enforces it.
//
// --reindex is a maintenance mode, not an analysis: each input trace that
// lacks a directory trailer (its writer crashed or never closed) is
// rewritten in place -- an incomplete trailing segment is truncated away and
// a proper trailer is appended -- so every future open gets the O(segments)
// footer path instead of the sequential skim.  Traces that already end in a
// valid trailer are left untouched.
//
// --reencode=PATH is a second maintenance mode: the (single, v4) input
// trace is decoded to column bundles and re-encoded segment-by-segment
// through the columnar writer into PATH.  The output is byte-identical to
// the input for any well-formed closed v4 trace -- the CI forced-kernel
// legs compare the files to pin the write-side kernel contract.
// --reencode-serial forces the serial per-segment loop (no WorkerPool), so
// the same comparison also pins worker-count invariance.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "analysis/anomaly.h"
#include "analysis/diff.h"
#include "analysis/dscg.h"
#include "analysis/export.h"
#include "analysis/pipeline.h"
#include "analysis/trace_io.h"
#include "common/version.h"
#include "store/store.h"

using namespace causeway;

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: causeway-analyze <trace.cwt> [more.cwt ...]\n"
               "           [--report|--summary|--text|--dot|--json|--ccsg|"
               "--html|\n"
               "            --timeline|--timeline-csv|--diff]\n"
               "           [--follow] [--poll-ms=N] [--idle-exit-ms=N]\n"
               "           [--anomalies=stderr|jsonl:PATH|none]\n"
               "           [--max-nodes=N] [--ingest-shards=N] [-o <file>]\n"
               "           [--reindex] [--reencode=PATH [--reencode-serial]]"
               "\n");
  return 2;
}

std::string render(analysis::AnalysisPipeline& pipeline,
                   const std::string& format,
                   const analysis::ExportOptions& options) {
  if (format == "text") return pipeline.export_text(options);
  if (format == "dot") return pipeline.export_dot(options);
  if (format == "json") return pipeline.export_json(options);
  if (format == "ccsg") return pipeline.ccsg_xml();
  if (format == "html") return pipeline.export_html(options);
  if (format == "summary") return pipeline.summary() + "\n";
  if (format == "timeline") return pipeline.timeline_text();
  if (format == "timeline-csv") return pipeline.timeline_csv();
  return pipeline.report();
}

int emit(const std::string& rendered, const std::string& output) {
  if (output.empty()) {
    std::fputs(rendered.c_str(), stdout);
    return 0;
  }
  std::ofstream out(output);
  out << rendered;
  if (!out) {
    std::fprintf(stderr, "causeway-analyze: cannot write '%s'\n",
                 output.c_str());
    return 1;
  }
  std::fprintf(stderr, "wrote %zu bytes to %s\n", rendered.size(),
               output.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> inputs;
  std::string format = "report";
  std::string output;
  std::string anomalies = "none";
  std::size_t max_nodes = 0;
  std::size_t ingest_shards = 0;  // 0 = auto
  bool follow = false;
  bool reindex = false;
  std::string reencode;
  bool reencode_serial = false;
  std::uint64_t poll_ms = 200;
  std::uint64_t idle_exit_ms = 0;  // 0 = follow forever

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--report" || arg == "--text" || arg == "--dot" ||
        arg == "--json" || arg == "--ccsg" || arg == "--html" ||
        arg == "--summary" || arg == "--diff" || arg == "--timeline" ||
        arg == "--timeline-csv") {
      format = arg.substr(2);
    } else if (arg == "--follow") {
      follow = true;
    } else if (arg == "--version") {
      std::fputs(version_banner("causeway-analyze").c_str(), stdout);
      return 0;
    } else if (arg == "--reindex") {
      reindex = true;
    } else if (arg.rfind("--reencode=", 0) == 0) {
      reencode = arg.substr(11);
    } else if (arg == "--reencode-serial") {
      reencode_serial = true;
    } else if (arg.rfind("--poll-ms=", 0) == 0) {
      poll_ms = static_cast<std::uint64_t>(std::atoll(arg.c_str() + 10));
    } else if (arg.rfind("--idle-exit-ms=", 0) == 0) {
      idle_exit_ms = static_cast<std::uint64_t>(std::atoll(arg.c_str() + 15));
    } else if (arg.rfind("--anomalies=", 0) == 0) {
      anomalies = arg.substr(12);
    } else if (arg.rfind("--max-nodes=", 0) == 0) {
      max_nodes = static_cast<std::size_t>(std::atoll(arg.c_str() + 12));
    } else if (arg.rfind("--ingest-shards=", 0) == 0) {
      ingest_shards = static_cast<std::size_t>(std::atoll(arg.c_str() + 16));
    } else if (arg == "-o") {
      if (++i >= argc) return usage();
      output = argv[i];
    } else if (!arg.empty() && arg[0] == '-') {
      return usage();
    } else {
      inputs.push_back(arg);
    }
  }
  if (inputs.empty()) return usage();

  try {
    if (reindex) {
      int rc = 0;
      for (const auto& path : inputs) {
        try {
          if (store::is_store_directory(path)) {
            // A store directory: repair every trace file in it, seal a
            // leftover live file, and rebuild the catalog.
            const store::StoreReindexResult r = store::reindex_store(path);
            std::printf(
                "%s: store reindexed: %zu files indexed (%zu repaired%s%s), "
                "%llu tail bytes truncated, %zu stale catalog entries "
                "dropped%s\n",
                path.c_str(), r.files_indexed, r.files_repaired,
                r.sealed_current ? ", live file sealed" : "",
                r.used_checkpoint ? ", resumed from checkpoint" : "",
                static_cast<unsigned long long>(r.truncated_bytes),
                r.dropped_entries,
                r.catalog_rewritten ? "" : " -- catalog already consistent");
            continue;
          }
          const analysis::ReindexResult r =
              analysis::reindex_trace_file(path);
          if (r.rewritten) {
            std::printf(
                "%s: reindexed %zu segments (%llu incomplete tail bytes "
                "truncated%s)\n",
                path.c_str(), r.segments,
                static_cast<unsigned long long>(r.truncated_bytes),
                r.used_checkpoint ? ", resumed from checkpoint" : "");
          } else {
            std::printf("%s: already indexed (%zu segments), unchanged\n",
                        path.c_str(), r.segments);
          }
        } catch (const std::exception& e) {
          std::fprintf(stderr, "causeway-analyze: %s: %s\n", path.c_str(),
                       e.what());
          rc = 1;
        }
      }
      return rc;
    }

    if (!reencode.empty()) {
      if (inputs.size() != 1) {
        std::fprintf(stderr,
                     "causeway-analyze --reencode wants exactly one trace\n");
        return 2;
      }
      std::ifstream in(inputs[0], std::ios::binary);
      if (!in) {
        std::fprintf(stderr, "causeway-analyze: cannot open '%s'\n",
                     inputs[0].c_str());
        return 1;
      }
      const std::vector<std::uint8_t> bytes(
          (std::istreambuf_iterator<char>(in)),
          std::istreambuf_iterator<char>());
      const std::vector<analysis::ColumnBundle> bundles =
          analysis::decode_trace_columns(bytes);
      analysis::TraceWriter writer(reencode, analysis::kTraceFormatV4);
      if (reencode_serial) {
        // One column-native append per segment: the serial path the
        // parallel stream encode must byte-match.
        for (const analysis::ColumnBundle& cols : bundles) {
          writer.append(cols);
        }
      } else {
        const auto segments = analysis::encode_trace_columns_stream(bundles);
        for (const auto& segment : segments) {
          writer.append_encoded(segment);
        }
      }
      writer.close();
      std::size_t records = 0;
      for (const auto& cols : bundles) records += cols.count;
      std::fprintf(stderr, "%s: re-encoded %zu segments (%zu records) to %s\n",
                   inputs[0].c_str(), writer.segments(), records,
                   reencode.c_str());
      return 0;
    }

    if (format == "diff") {
      // --diff <baseline.cwt> <current.cwt>
      if (inputs.size() != 2) {
        std::fprintf(stderr,
                     "causeway-analyze --diff needs exactly two traces "
                     "(baseline, current)\n");
        return 2;
      }
      analysis::LogDatabase base_db(ingest_shards), cur_db(ingest_shards);
      analysis::read_trace_file(inputs[0], base_db);
      analysis::read_trace_file(inputs[1], cur_db);
      auto base = analysis::Dscg::build(base_db);
      auto cur = analysis::Dscg::build(cur_db);
      const auto diff = analysis::diff_runs(base, base_db, cur, cur_db);
      std::fputs(diff.to_string().c_str(), stdout);
      return diff.clean() ? 0 : 3;  // CI-friendly: nonzero on regression
    }

    analysis::AnalysisPipeline pipeline(ingest_shards);

    std::unique_ptr<analysis::AnomalySink> sink;
    if (anomalies == "stderr") {
      sink = std::make_unique<analysis::StderrAnomalySink>();
    } else if (anomalies.rfind("jsonl:", 0) == 0) {
      auto jsonl =
          std::make_unique<analysis::JsonlAnomalySink>(anomalies.substr(6));
      if (!jsonl->ok()) {
        std::fprintf(stderr, "causeway-analyze: cannot write '%s'\n",
                     anomalies.c_str() + 6);
        return 1;
      }
      sink = std::move(jsonl);
    } else if (anomalies != "none") {
      return usage();
    }
    if (sink) pipeline.add_sink(sink.get());

    analysis::ExportOptions options;
    options.max_nodes = max_nodes;

    if (follow) {
      if (inputs.size() != 1) {
        std::fprintf(stderr,
                     "causeway-analyze --follow tails exactly one trace\n");
        return 2;
      }
      analysis::TraceTail tail(inputs[0]);
      std::uint64_t idle_ms = 0;
      // First poll immediately; afterwards sleep poll_ms between polls.
      for (;;) {
        // poll(pipeline) hands each decoded segment straight to the
        // pipeline as one epoch -- no staging copy, no separate refresh.
        const std::size_t n = tail.poll(pipeline);
        if (n > 0) {
          idle_ms = 0;
          std::fprintf(stderr, "[follow] %s (segments=%zu, pending=%zu B)\n",
                       pipeline.live_summary().c_str(), tail.segments(),
                       tail.pending_bytes());
        } else {
          idle_ms += poll_ms;
          if (idle_exit_ms > 0 && idle_ms >= idle_exit_ms) break;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(poll_ms));
      }
      std::fprintf(stderr,
                   "[follow] idle for %llu ms, rendering final %s "
                   "(%zu segments, %llu bytes, %zu anomalies)\n",
                   static_cast<unsigned long long>(idle_ms), format.c_str(),
                   tail.segments(),
                   static_cast<unsigned long long>(tail.bytes_consumed()),
                   pipeline.anomaly_events());
      return emit(render(pipeline, format, options), output);
    }

    for (const auto& path : inputs) {
      const std::size_t n =
          analysis::read_trace_file(path, pipeline.database());
      std::fprintf(stderr, "loaded %zu records from %s\n", n, path.c_str());
      // One epoch per input file: exercises the incremental passes exactly
      // the way --follow does, and renders identically to a single batch.
      pipeline.refresh();
    }
    return emit(render(pipeline, format, options), output);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "causeway-analyze: %s\n", e.what());
    return 1;
  }
  return 0;
}
