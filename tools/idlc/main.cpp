// idlc -- the IDL compiler driver.
//
// Usage: idlc <input.idl> -o <outdir> [--instrument] [--runtime=orb|com]
//             [--basename <stem>]
//
// Emits <outdir>/<stem>.causeway.h and <outdir>/<stem>.causeway.cpp.
// --instrument reproduces the paper's back-end compilation flag: it selects
// generation of instrumented stubs and skeletons (probes + FTL tunneling);
// without it, the generated code is monitoring-free.  The input IDL and the
// user implementation code are identical in both modes.
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "idl/codegen.h"
#include "idl/parser.h"
#include "idl/sema.h"

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s <input.idl> -o <outdir> [--instrument] "
               "[--runtime=orb|com] [--basename <stem>]\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string input;
  std::string outdir;
  std::string basename;
  bool instrument = false;
  causeway::idl::TargetRuntime runtime = causeway::idl::TargetRuntime::kOrb;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "-o") {
      if (++i >= argc) return usage(argv[0]);
      outdir = argv[i];
    } else if (arg == "--instrument") {
      instrument = true;
    } else if (arg == "--runtime=orb") {
      runtime = causeway::idl::TargetRuntime::kOrb;
    } else if (arg == "--runtime=com") {
      runtime = causeway::idl::TargetRuntime::kCom;
    } else if (arg == "--runtime=both") {
      runtime = causeway::idl::TargetRuntime::kBoth;
    } else if (arg == "--basename") {
      if (++i >= argc) return usage(argv[0]);
      basename = argv[i];
    } else if (!arg.empty() && arg[0] == '-') {
      return usage(argv[0]);
    } else if (input.empty()) {
      input = arg;
    } else {
      return usage(argv[0]);
    }
  }
  if (input.empty() || outdir.empty()) return usage(argv[0]);

  if (basename.empty()) {
    basename = std::filesystem::path(input).stem().string();
  }

  std::ifstream in(input);
  if (!in) {
    std::fprintf(stderr, "idlc: cannot open '%s'\n", input.c_str());
    return 1;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string source = buffer.str();

  try {
    causeway::idl::SpecDef spec = causeway::idl::parse(source);
    const auto errors = causeway::idl::check(spec);
    if (!errors.empty()) {
      for (const auto& e : errors) {
        std::fprintf(stderr, "idlc: %s: %s\n", input.c_str(), e.c_str());
      }
      return 1;
    }
    causeway::idl::CodegenOptions options;
    options.instrumented = instrument;
    options.runtime = runtime;
    options.basename = basename;
    const auto code = causeway::idl::generate(spec, options);

    std::filesystem::create_directories(outdir);
    const auto hdr_path =
        std::filesystem::path(outdir) / (basename + ".causeway.h");
    const auto src_path =
        std::filesystem::path(outdir) / (basename + ".causeway.cpp");
    std::ofstream hdr(hdr_path);
    hdr << code.header;
    std::ofstream src(src_path);
    src << code.source;
    if (!hdr || !src) {
      std::fprintf(stderr, "idlc: failed writing outputs under '%s'\n",
                   outdir.c_str());
      return 1;
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "idlc: %s: %s\n", input.c_str(), e.what());
    return 1;
  }
  return 0;
}
