#include "analysis/trace_io.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <deque>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <span>
#include <string>
#include <vector>

#include "analysis/cpu.h"
#include "analysis/dscg.h"
#include "analysis/report.h"
#include "common/compress.h"
#include "common/wire.h"
#include "workload/logsynth.h"

namespace causeway::analysis {
namespace {

monitor::CollectedLogs sample_logs() {
  monitor::CollectedLogs logs;
  logs.domains.push_back({monitor::DomainIdentity{"procA", "node0", "x86"},
                          monitor::ProbeMode::kLatency, 2});
  logs.domains.push_back({monitor::DomainIdentity{"procB", "node1", "pa-risc"},
                          monitor::ProbeMode::kLatency, 2});

  const Uuid chain = Uuid::generate();
  auto rec = [&](std::uint64_t seq, monitor::EventKind event,
                 std::string_view process) {
    monitor::TraceRecord r;
    r.chain = chain;
    r.seq = seq;
    r.event = event;
    r.kind = monitor::CallKind::kSync;
    r.outcome = seq >= 3 ? monitor::CallOutcome::kAppError
                         : monitor::CallOutcome::kOk;
    r.interface_name = "Trace::Iface";
    r.function_name = "fn";
    r.object_key = 11;
    r.process_name = process;
    r.node_name = "node";
    r.processor_type = "x86";
    r.thread_ordinal = 5;
    r.mode = monitor::ProbeMode::kLatency;
    r.value_start = static_cast<Nanos>(seq * 100);
    r.value_end = static_cast<Nanos>(seq * 100 + 7);
    return r;
  };
  logs.records.push_back(rec(1, monitor::EventKind::kStubStart, "procA"));
  logs.records.push_back(rec(2, monitor::EventKind::kSkelStart, "procB"));
  logs.records.push_back(rec(3, monitor::EventKind::kSkelEnd, "procB"));
  logs.records.push_back(rec(4, monitor::EventKind::kStubEnd, "procA"));
  return logs;
}

TEST(TraceIo, EncodeDecodeRoundTrip) {
  const auto logs = sample_logs();
  const auto bytes = encode_trace(logs);

  LogDatabase db;
  EXPECT_EQ(decode_trace(bytes, db), 4u);
  ASSERT_EQ(db.size(), 4u);
  ASSERT_EQ(db.domains().size(), 2u);
  EXPECT_EQ(db.domains()[1].process_name, "procB");
  EXPECT_EQ(db.domains()[1].processor_type, "pa-risc");

  const auto& r = db.records()[2];
  EXPECT_EQ(r.seq, 3u);
  EXPECT_EQ(r.event, monitor::EventKind::kSkelEnd);
  EXPECT_EQ(r.outcome, monitor::CallOutcome::kAppError);
  EXPECT_EQ(r.interface_name, "Trace::Iface");
  EXPECT_EQ(r.process_name, "procB");
  EXPECT_EQ(r.value_end, 307);

  // The decoded stream reconstructs like the live one.
  auto dscg = Dscg::build(db);
  EXPECT_EQ(dscg.call_count(), 1u);
  EXPECT_EQ(dscg.anomaly_count(), 0u);
  EXPECT_TRUE(dscg.roots()[0]->root->children[0]->failed());
}

TEST(TraceIo, FileRoundTrip) {
  const auto path = std::filesystem::temp_directory_path() / "causeway_t.cwt";
  write_trace_file(path.string(), sample_logs());
  LogDatabase db;
  EXPECT_EQ(read_trace_file(path.string(), db), 4u);
  EXPECT_EQ(db.size(), 4u);
  std::filesystem::remove(path);
}

TEST(TraceIo, MissingFileThrows) {
  LogDatabase db;
  EXPECT_THROW(read_trace_file("/no/such/file.cwt", db), TraceIoError);
}

TEST(TraceIo, CorruptBytesThrow) {
  auto bytes = encode_trace(sample_logs());
  // Wrong magic.
  auto bad_magic = bytes;
  bad_magic[0] ^= 0xff;
  LogDatabase db1;
  EXPECT_THROW(decode_trace(bad_magic, db1), TraceIoError);
  // Truncations anywhere must throw, never crash.
  for (std::size_t cut = 1; cut < bytes.size(); cut += 13) {
    std::vector<std::uint8_t> shorter(bytes.begin(),
                                      bytes.end() - static_cast<long>(cut));
    LogDatabase db2;
    EXPECT_THROW(decode_trace(shorter, db2), TraceIoError);
  }
}

TEST(TraceIo, DefaultFormatIsV4WithBodyLength) {
  const auto bytes = encode_trace(sample_logs());
  WireCursor c(bytes.data(), bytes.size());
  EXPECT_EQ(c.read_u32(), 0x43575452u);  // "CWTR"
  EXPECT_EQ(c.read_u32(), kTraceFormatV4);
  // The body-length word covers exactly the rest of the segment -- what
  // makes the read-side skim O(1) per segment.
  EXPECT_EQ(c.read_u64(), bytes.size() - 16);
}

TEST(TraceIo, V3EncodeDecodeRoundTrip) {
  const auto logs = sample_logs();
  const auto bytes = encode_trace(logs, kTraceFormatV3);

  LogDatabase db;
  EXPECT_EQ(decode_trace(bytes, db), 4u);
  ASSERT_EQ(db.size(), 4u);
  const auto& r = db.records()[2];
  EXPECT_EQ(r.seq, 3u);
  EXPECT_EQ(r.event, monitor::EventKind::kSkelEnd);
  EXPECT_EQ(r.outcome, monitor::CallOutcome::kAppError);
  EXPECT_EQ(r.process_name, "procB");
  EXPECT_EQ(r.value_end, 307);
}

TEST(TraceIo, SampleRateIndexRoundTripsBothFormats) {
  // The sampling weight rides the v3 mode byte (bits 2+) and the v4 flags2
  // byte (bits 3-7); both codecs must carry it losslessly, and index 0 must
  // keep the legacy encodings byte-identical.
  auto logs = sample_logs();
  logs.records[1].sample_rate_index = monitor::sample_rate_index_for(10);
  logs.records[2].sample_rate_index = monitor::sample_rate_index_for(65536);
  logs.records[3].sample_rate_index = 31;  // the top of the 5-bit field

  for (const std::uint32_t version : {kTraceFormatV3, kTraceFormatV4}) {
    LogDatabase db;
    ASSERT_EQ(decode_trace(encode_trace(logs, version), db), 4u)
        << "format v" << version;
    ASSERT_EQ(db.size(), 4u);
    for (std::size_t i = 0; i < 4; ++i) {
      EXPECT_EQ(db.records()[i].sample_rate_index,
                logs.records[i].sample_rate_index)
          << "format v" << version << " record " << i;
      EXPECT_EQ(db.records()[i].sample_weight(),
                logs.records[i].sample_weight());
      EXPECT_EQ(db.records()[i].mode, logs.records[i].mode);
      EXPECT_EQ(db.records()[i].outcome, logs.records[i].outcome);
    }
  }

  // Index 0 (1:1 sampling) means weight 1 -- the neutral element the idle
  // control plane rests on.  (Its byte-identity with pre-sampling traces is
  // pinned by GoldenV4ReencodesByteIdentically and the tool_compat ctests.)
  EXPECT_EQ(monitor::TraceRecord{}.sample_rate_index, 0);
  EXPECT_EQ(monitor::TraceRecord{}.sample_weight(), 1u);
  EXPECT_EQ(monitor::sample_rate(0), 1u);
}

TEST(TraceIo, V3AndV4RenderIdentically) {
  // The format version must be invisible downstream: the same stream
  // encoded both ways synthesizes databases that render byte-identical
  // characterization reports.
  workload::LogSynthConfig config;
  config.total_calls = 2'000;
  LogDatabase source;
  workload::synthesize_logs(config, source);
  monitor::CollectedLogs logs;
  logs.records = source.records();

  LogDatabase db3, db4;
  EXPECT_EQ(decode_trace(encode_trace(logs, kTraceFormatV3), db3),
            source.size());
  EXPECT_EQ(decode_trace(encode_trace(logs, kTraceFormatV4), db4),
            source.size());
  auto dscg3 = Dscg::build(db3);
  auto dscg4 = Dscg::build(db4);
  EXPECT_EQ(characterization_report(dscg3, db3),
            characterization_report(dscg4, db4));
}

TEST(TraceIo, V4IsSubstantiallySmallerThanV3) {
  workload::LogSynthConfig config;
  config.total_calls = 5'000;
  LogDatabase source;
  workload::synthesize_logs(config, source);
  monitor::CollectedLogs logs;
  logs.records = source.records();

  const auto v3 = encode_trace(logs, kTraceFormatV3);
  const auto v4 = encode_trace(logs, kTraceFormatV4);
  // The acceptance bar is >= 35% smaller; leave headroom in the unit test.
  EXPECT_LT(v4.size(), v3.size() * 0.70)
      << "v3=" << v3.size() << " v4=" << v4.size();
}

TEST(TraceIo, MixedVersionSegmentsDecode) {
  auto first = sample_logs();
  first.epoch = 1;
  auto second = sample_logs();
  second.epoch = 2;
  auto bytes = encode_trace(first, kTraceFormatV3);
  const auto more = encode_trace(second, kTraceFormatV4);
  bytes.insert(bytes.end(), more.begin(), more.end());

  LogDatabase db;
  EXPECT_EQ(decode_trace(bytes, db), 8u);
  EXPECT_EQ(db.generation(), 2u);
  EXPECT_EQ(db.last_epoch(), 2u);
}

TEST(TraceIo, UnwritableVersionThrows) {
  const auto logs = sample_logs();
  EXPECT_THROW(encode_trace(logs, 2), TraceIoError);
  EXPECT_THROW(encode_trace(logs, 6), TraceIoError);
  const auto path = std::filesystem::temp_directory_path() / "causeway_v.cwt";
  EXPECT_THROW(TraceWriter(path.string(), 7), TraceIoError);
  std::filesystem::remove(path);
}

TEST(TraceIo, DecodeTraceSegmentsStagesPerSegment) {
  auto first = sample_logs();
  first.epoch = 1;
  auto second = sample_logs();
  second.epoch = 2;
  auto bytes = encode_trace(first);
  const auto more = encode_trace(second);
  bytes.insert(bytes.end(), more.begin(), more.end());

  const auto staged = decode_trace_segments(bytes);
  ASSERT_EQ(staged.size(), 2u);
  EXPECT_EQ(staged[0].epoch, 1u);
  EXPECT_EQ(staged[1].epoch, 2u);
  EXPECT_EQ(staged[0].records.size(), 4u);
  EXPECT_EQ(staged[1].records.size(), 4u);
  EXPECT_EQ(staged[1].records[2].process_name, "procB");
}

// --- corrupt-segment matrix: every malformation throws TraceIoError and
// --- never reads out of bounds (the suite runs under ASan in CI).

TEST(TraceIo, UnsupportedSegmentVersionThrows) {
  WireBuffer seg;
  seg.write_u32(0x43575452);
  seg.write_u32(9);  // from the future
  seg.write_u64(0);
  LogDatabase db;
  EXPECT_THROW(decode_trace(seg.bytes(), db), TraceIoError);
}

TEST(TraceIo, TruncatedVarintColumnThrows) {
  auto bytes = encode_trace(sample_logs(), kTraceFormatV4);
  // The final body byte ends the last value_end svarint; setting its
  // continuation bit makes the varint run off the end of the segment.
  bytes.back() |= 0x80;
  LogDatabase db;
  EXPECT_THROW(decode_trace(bytes, db), TraceIoError);
}

TEST(TraceIo, StringIdOutOfRangeThrows) {
  // Hand-built minimal v4 segment: one record whose interface-name column
  // references string id 9 in a one-entry table.
  WireBuffer seg;
  seg.write_u32(0x43575452);
  seg.write_u32(4);
  const std::size_t length_at = seg.size();
  seg.write_u64(0);
  const std::size_t body = seg.size();
  seg.write_u64(1);     // epoch
  seg.write_u64(0);     // dropped
  seg.write_varint(0);  // no domains
  seg.write_varint(1);  // one string: "a"
  seg.write_varint(1);
  seg.write_u8('a');
  seg.write_varint(1);  // one record
  seg.write_varint(1);  // one run
  seg.write_u64(1);     // chain hi/lo
  seg.write_u64(2);
  seg.write_varint(1);   // run length
  seg.write_svarint(1);  // seq delta
  seg.write_u8(1);       // flags1: stub-start
  seg.write_u8(0);       // flags2: causality-only, no spawn
  seg.write_varint(9);   // interface id -- out of range
  seg.write_varint(0);   // function id
  seg.write_varint(0);   // object key
  seg.write_varint(0);   // process id
  seg.write_varint(0);   // node id
  seg.write_varint(0);   // type id
  seg.write_varint(0);   // thread ordinal
  seg.write_svarint(0);  // value_start
  seg.write_svarint(0);  // value_end
  seg.overwrite_u64(length_at, seg.size() - body);

  LogDatabase db;
  EXPECT_THROW(decode_trace(seg.bytes(), db), TraceIoError);
}

TEST(TraceIo, ChainRunsNotCoveringRecordsThrow) {
  auto bytes = encode_trace(sample_logs(), kTraceFormatV4);
  LogDatabase ok;
  ASSERT_EQ(decode_trace(bytes, ok), 4u);
  // Locate the run-count varint?  Simpler: rebuild the sample with a lying
  // run length via the documented layout -- a run claiming more records
  // than the segment holds.
  WireBuffer seg;
  seg.write_u32(0x43575452);
  seg.write_u32(4);
  const std::size_t length_at = seg.size();
  seg.write_u64(0);
  const std::size_t body = seg.size();
  seg.write_u64(1);
  seg.write_u64(0);
  seg.write_varint(0);
  seg.write_varint(0);  // no strings
  seg.write_varint(1);  // one record ...
  seg.write_varint(1);  // ... one run ...
  seg.write_u64(1);
  seg.write_u64(2);
  seg.write_varint(1000);  // ... claiming a thousand
  seg.overwrite_u64(length_at, seg.size() - body);
  LogDatabase db;
  EXPECT_THROW(decode_trace(seg.bytes(), db), TraceIoError);
}

TEST(TraceIo, DirectoryTrailerRoundTripAndFallback) {
  const auto path = std::filesystem::temp_directory_path() / "causeway_d.cwt";
  {
    TraceWriter writer(path.string());
    auto epoch1 = sample_logs();
    epoch1.epoch = 1;
    writer.append(epoch1);
    auto epoch2 = sample_logs();
    epoch2.epoch = 2;
    writer.append(epoch2);
    writer.close();
  }
  std::ifstream in(path, std::ios::binary);
  std::vector<std::uint8_t> bytes((std::istreambuf_iterator<char>(in)),
                                  std::istreambuf_iterator<char>());
  ASSERT_GE(bytes.size(), 12u);

  // The file ends with [u64 trailer length]["CWTE"].
  WireCursor footer(bytes.data() + bytes.size() - 12, 12);
  const std::uint64_t trailer = footer.read_u64();
  EXPECT_EQ(footer.read_u32(), 0x43575445u);  // "CWTE"
  ASSERT_LT(trailer, bytes.size());

  // Decode via the directory ...
  LogDatabase with_dir;
  EXPECT_EQ(decode_trace(bytes, with_dir), 8u);
  // ... and via the sequential-skim fallback with the trailer stripped
  // (what a crashed writer leaves behind).
  std::vector<std::uint8_t> stripped(
      bytes.begin(), bytes.end() - static_cast<long>(trailer));
  LogDatabase without_dir;
  EXPECT_EQ(decode_trace(stripped, without_dir), 8u);
  EXPECT_EQ(with_dir.generation(), without_dir.generation());
  std::filesystem::remove(path);
}

TEST(TraceIo, ConcatenatedClosedTracesDecode) {
  // `cat a.cwt b.cwt` is a supported flow: the surviving trailer only
  // describes the final file's segments, so the reader must skim the
  // prefix (treating a.cwt's interior trailer as metadata) and splice the
  // directory's extents in after it.
  const auto dir = std::filesystem::temp_directory_path();
  const auto path_a = dir / "causeway_cat_a.cwt";
  const auto path_b = dir / "causeway_cat_b.cwt";
  for (const auto& [path, version] :
       {std::pair{path_a, kTraceFormatV3}, std::pair{path_b, kTraceFormatV4}}) {
    TraceWriter writer(path.string(), version);
    auto logs = sample_logs();
    logs.epoch = 1;
    writer.append(logs);
    writer.close();
  }
  std::vector<std::uint8_t> bytes;
  for (const auto& path : {path_a, path_b}) {
    std::ifstream in(path, std::ios::binary);
    bytes.insert(bytes.end(), std::istreambuf_iterator<char>(in),
                 std::istreambuf_iterator<char>());
    std::filesystem::remove(path);
  }
  LogDatabase db;
  EXPECT_EQ(decode_trace(bytes, db), 8u);
  EXPECT_EQ(db.generation(), 2u);
}

TEST(TraceIo, DirectoryOffsetPastEofThrows) {
  auto bytes = encode_trace(sample_logs());
  WireBuffer trailer;
  trailer.write_u32(0x43575444);  // "CWTD"
  trailer.write_u32(1);
  trailer.write_varint(1);
  trailer.write_varint(bytes.size() + 100);  // past the end of the file
  trailer.write_u64(trailer.size() + 12);
  trailer.write_u32(0x43575445);  // "CWTE"
  bytes.insert(bytes.end(), trailer.bytes().begin(), trailer.bytes().end());
  LogDatabase db;
  EXPECT_THROW(decode_trace(bytes, db), TraceIoError);
}

TEST(TraceIo, CorruptDirectoryTotalThrows) {
  auto bytes = encode_trace(sample_logs());
  WireBuffer footer;
  footer.write_u64(1u << 20);  // trailer claims to be bigger than the file
  footer.write_u32(0x43575445);
  bytes.insert(bytes.end(), footer.bytes().begin(), footer.bytes().end());
  LogDatabase db;
  EXPECT_THROW(decode_trace(bytes, db), TraceIoError);
}

TEST(TraceIo, V4CorruptTruncationsThrow) {
  const auto bytes = encode_trace(sample_logs(), kTraceFormatV4);
  for (std::size_t cut = 1; cut < bytes.size(); cut += 7) {
    std::vector<std::uint8_t> shorter(bytes.begin(),
                                      bytes.end() - static_cast<long>(cut));
    LogDatabase db;
    EXPECT_THROW(decode_trace(shorter, db), TraceIoError);
  }
}

TEST(TraceIo, MultiSegmentDecode) {
  // Two concatenated segments (what a streaming run writes) ingest as two
  // generations of one database.
  auto first = sample_logs();
  first.epoch = 1;
  auto second = sample_logs();
  second.epoch = 2;
  second.dropped = 3;

  auto bytes = encode_trace(first);
  const auto more = encode_trace(second);
  bytes.insert(bytes.end(), more.begin(), more.end());

  LogDatabase db;
  EXPECT_EQ(decode_trace(bytes, db), 8u);
  EXPECT_EQ(db.size(), 8u);
  EXPECT_EQ(db.generation(), 2u);
  EXPECT_EQ(db.last_epoch(), 2u);
  EXPECT_EQ(db.overflow_dropped(), 3u);
  // Identical domain identities merge rather than duplicate.
  ASSERT_EQ(db.domains().size(), 2u);
  EXPECT_EQ(db.domains()[0].record_count, 4u);
}

TEST(TraceIo, TraceWriterStreamsSegmentsToOneFile) {
  const auto path = std::filesystem::temp_directory_path() / "causeway_s.cwt";
  {
    TraceWriter writer(path.string());
    auto epoch1 = sample_logs();
    epoch1.epoch = 1;
    writer.append(epoch1);
    auto epoch2 = sample_logs();
    epoch2.epoch = 2;
    writer.append(epoch2);
    // An empty final segment is legal: it carries the domain inventory.
    monitor::CollectedLogs last;
    last.epoch = 3;
    last.domains = epoch1.domains;
    for (auto& d : last.domains) d.record_count = 0;
    writer.append(last);
    EXPECT_EQ(writer.segments(), 3u);
    EXPECT_EQ(writer.records_written(), 8u);
  }
  LogDatabase db;
  EXPECT_EQ(read_trace_file(path.string(), db), 8u);
  EXPECT_EQ(db.size(), 8u);
  EXPECT_EQ(db.last_epoch(), 3u);
  ASSERT_EQ(db.domains().size(), 2u);
  std::filesystem::remove(path);
}

TEST(TraceIo, ProbeTraceBlockMeasuresSegmentsAndTrailer) {
  const auto path = std::filesystem::temp_directory_path() / "causeway_p.cwt";
  {
    TraceWriter writer(path.string());
    auto epoch1 = sample_logs();
    epoch1.epoch = 1;
    writer.append(epoch1);
    auto epoch2 = sample_logs();
    epoch2.epoch = 2;
    writer.append(epoch2);
    writer.close();
  }
  std::ifstream in(path, std::ios::binary);
  const std::vector<std::uint8_t> bytes(
      (std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
  std::filesystem::remove(path);

  // Walk the stream block by block: segment, segment, trailer -- and the
  // lengths must tile the file exactly.
  std::size_t offset = 0;
  std::vector<bool> kinds;
  while (offset < bytes.size()) {
    std::size_t length = 0;
    bool is_segment = false;
    ASSERT_TRUE(probe_trace_block(
        std::span(bytes.data() + offset, bytes.size() - offset), length,
        is_segment));
    ASSERT_GT(length, 0u);
    kinds.push_back(is_segment);
    offset += length;
  }
  EXPECT_EQ(offset, bytes.size());
  ASSERT_EQ(kinds.size(), 3u);
  EXPECT_TRUE(kinds[0]);
  EXPECT_TRUE(kinds[1]);
  EXPECT_FALSE(kinds[2]);

  // Every strict prefix of the first segment is "incomplete", not an error
  // -- the socket-buffer/TraceTail retry contract.
  std::size_t first_len = 0;
  bool first_is_segment = false;
  ASSERT_TRUE(probe_trace_block(bytes, first_len, first_is_segment));
  for (std::size_t n = 0; n < first_len; n += 5) {
    std::size_t length = 0;
    bool is_segment = false;
    EXPECT_FALSE(
        probe_trace_block(std::span(bytes.data(), n), length, is_segment))
        << "prefix " << n;
  }
  // Corruption is an error, never a retry.
  std::vector<std::uint8_t> bad(bytes.begin(), bytes.end());
  bad[0] ^= 0xff;
  std::size_t length = 0;
  bool is_segment = false;
  EXPECT_THROW(probe_trace_block(bad, length, is_segment), TraceIoError);
}

TEST(TraceIo, DecodeTraceSegmentRequiresExactFraming) {
  auto logs = sample_logs();
  logs.epoch = 9;
  logs.dropped = 2;
  const auto bytes = encode_trace(logs);

  const monitor::CollectedLogs decoded = decode_trace_segment(bytes);
  EXPECT_EQ(decoded.epoch, 9u);
  EXPECT_EQ(decoded.dropped, 2u);
  ASSERT_EQ(decoded.records.size(), 4u);
  EXPECT_EQ(decoded.records[2].process_name, "procB");

  // Exactly one segment: trailing bytes and truncations both throw.
  auto padded = bytes;
  padded.push_back(0);
  EXPECT_THROW(decode_trace_segment(padded), TraceIoError);
  EXPECT_THROW(
      decode_trace_segment(std::span(bytes.data(), bytes.size() - 1)),
      TraceIoError);
}

TEST(TraceIo, AppendEncodedMatchesAppendByteForByte) {
  const auto dir = std::filesystem::temp_directory_path();
  const auto direct = dir / "causeway_ae_direct.cwt";
  const auto relayed = dir / "causeway_ae_relay.cwt";
  auto epoch1 = sample_logs();
  epoch1.epoch = 1;
  auto epoch2 = sample_logs();
  epoch2.epoch = 2;
  {
    TraceWriter writer(direct.string());
    writer.append(epoch1);
    writer.append(epoch2);
    writer.close();
  }
  {
    // The relay path (the collector daemon): pre-encoded segments pass
    // through verbatim, so the resulting file is byte-identical.
    TraceWriter writer(relayed.string());
    writer.append_encoded(encode_trace(epoch1));
    writer.append_encoded(encode_trace(epoch2));
    EXPECT_EQ(writer.segments(), 2u);
    writer.close();
  }
  const auto slurp = [](const std::filesystem::path& p) {
    std::ifstream in(p, std::ios::binary);
    return std::vector<std::uint8_t>((std::istreambuf_iterator<char>(in)),
                                     std::istreambuf_iterator<char>());
  };
  EXPECT_EQ(slurp(direct), slurp(relayed));
  std::filesystem::remove(direct);
  std::filesystem::remove(relayed);

  // Not-exactly-one-segment inputs are rejected before touching the file.
  TraceWriter writer(relayed.string());
  auto bytes = encode_trace(epoch1);
  bytes.push_back(0x42);
  EXPECT_THROW(writer.append_encoded(bytes), TraceIoError);
  EXPECT_THROW(
      writer.append_encoded(std::span(bytes.data(), bytes.size() / 2)),
      TraceIoError);
  writer.close();
  std::filesystem::remove(relayed);
}

TEST(TraceIo, ReindexIsNoopOnClosedFile) {
  const auto path = std::filesystem::temp_directory_path() / "causeway_r0.cwt";
  {
    TraceWriter writer(path.string());
    auto logs = sample_logs();
    logs.epoch = 1;
    writer.append(logs);
    writer.close();
  }
  const auto before_size = std::filesystem::file_size(path);
  const ReindexResult result = reindex_trace_file(path.string());
  EXPECT_FALSE(result.rewritten);
  EXPECT_EQ(result.segments, 1u);
  EXPECT_EQ(result.truncated_bytes, 0u);
  EXPECT_EQ(std::filesystem::file_size(path), before_size);
  std::filesystem::remove(path);
}

TEST(TraceIo, ReindexRepairsCrashedWriterFile) {
  const auto path = std::filesystem::temp_directory_path() / "causeway_r1.cwt";
  std::vector<std::uint8_t> two_segments;
  {
    auto epoch1 = sample_logs();
    epoch1.epoch = 1;
    auto epoch2 = sample_logs();
    epoch2.epoch = 2;
    two_segments = encode_trace(epoch1);
    const auto more = encode_trace(epoch2);
    two_segments.insert(two_segments.end(), more.begin(), more.end());
  }
  // Crash artifact: no trailer, and the third segment's write was cut off
  // halfway.
  {
    auto torn = encode_trace(sample_logs());
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(reinterpret_cast<const char*>(two_segments.data()),
              static_cast<std::streamsize>(two_segments.size()));
    out.write(reinterpret_cast<const char*>(torn.data()),
              static_cast<std::streamsize>(torn.size() / 2));
  }

  const ReindexResult result = reindex_trace_file(path.string());
  EXPECT_TRUE(result.rewritten);
  EXPECT_EQ(result.segments, 2u);
  EXPECT_GT(result.truncated_bytes, 0u);

  // The repaired file reads the clean prefix through the directory path,
  // and a second reindex is a no-op.
  LogDatabase db;
  EXPECT_EQ(read_trace_file(path.string(), db), 8u);
  EXPECT_EQ(db.last_epoch(), 2u);
  const ReindexResult again = reindex_trace_file(path.string());
  EXPECT_FALSE(again.rewritten);
  EXPECT_EQ(again.segments, 2u);
  std::filesystem::remove(path);
}

TEST(TraceIo, ReindexTrailerlessCompleteFileAppendsTrailerOnly) {
  const auto path = std::filesystem::temp_directory_path() / "causeway_r2.cwt";
  const auto bytes = encode_trace(sample_logs());
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(reinterpret_cast<const char*>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
  }
  const ReindexResult result = reindex_trace_file(path.string());
  EXPECT_TRUE(result.rewritten);
  EXPECT_EQ(result.segments, 1u);
  EXPECT_EQ(result.truncated_bytes, 0u);
  EXPECT_GT(std::filesystem::file_size(path), bytes.size());
  LogDatabase db;
  EXPECT_EQ(read_trace_file(path.string(), db), 4u);
  std::filesystem::remove(path);
}

#if defined(CAUSEWAY_TEST_DATA_DIR)
TEST(TraceIo, GoldenV4ReencodesByteIdentically) {
  // The committed v4 fixture pins the columnar encoding byte-for-byte:
  // decoding its segments and re-encoding them through today's writer must
  // reproduce the exact file.  Any codec change that alters the bytes --
  // even one that still round-trips -- fails here and forces a version
  // bump instead of a silent format fork.
  const std::string golden =
      std::string(CAUSEWAY_TEST_DATA_DIR) + "/golden_v4.cwt";
  std::ifstream in(golden, std::ios::binary);
  ASSERT_TRUE(in) << golden;
  const std::vector<std::uint8_t> original(
      (std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
  ASSERT_FALSE(original.empty());

  const std::vector<monitor::CollectedLogs> bundles =
      decode_trace_segments(original);
  ASSERT_FALSE(bundles.empty());

  const auto path =
      std::filesystem::temp_directory_path() / "causeway_golden_v4.cwt";
  {
    TraceWriter writer(path.string(), kTraceFormatV4);
    for (const monitor::CollectedLogs& bundle : bundles) {
      writer.append(bundle);
    }
    writer.close();
  }
  std::ifstream re(path, std::ios::binary);
  const std::vector<std::uint8_t> reencoded(
      (std::istreambuf_iterator<char>(re)), std::istreambuf_iterator<char>());
  std::filesystem::remove(path);
  EXPECT_EQ(reencoded, original) << "v4 encoder no longer byte-stable";
}

TEST(TraceIo, GoldenV4DecodesIdenticallyAcrossAllKernels) {
  // Cross-kernel pin on the committed fixture: every available varint
  // kernel (scalar reference, SWAR, and whatever SIMD the build machine
  // has) must decode the golden trace to the same records and render the
  // same characterization report.
  const std::string golden =
      std::string(CAUSEWAY_TEST_DATA_DIR) + "/golden_v4.cwt";
  std::ifstream in(golden, std::ios::binary);
  ASSERT_TRUE(in) << golden;
  const std::vector<std::uint8_t> original(
      (std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
  ASSERT_FALSE(original.empty());

  const VarintKernel previous = active_varint_kernel();
  std::string reference;
  for (VarintKernel kernel :
       {VarintKernel::kScalar, VarintKernel::kSwar, VarintKernel::kSse,
        VarintKernel::kAvx2, VarintKernel::kNeon}) {
    if (!varint_kernel_available(kernel)) continue;
    force_varint_kernel(kernel);
    LogDatabase db;
    for (const ColumnBundle& cols : decode_trace_columns(original)) {
      db.ingest(cols);
    }
    auto dscg = Dscg::build(db);
    std::string report = characterization_report(dscg, db);
    if (reference.empty()) {
      reference = std::move(report);
    } else {
      EXPECT_EQ(report, reference)
          << "kernel " << std::string(to_string(kernel));
    }
  }
  force_varint_kernel(previous);
  EXPECT_FALSE(reference.empty());
}

TEST(TraceIo, GoldenV4ColumnReencodeByteIdenticalAcrossKernels) {
  // The write-side cross-kernel pin: decode the committed fixture to
  // column bundles, re-encode them through encode_trace_columns under
  // every available kernel, and require the exact original file back.
  const std::string golden =
      std::string(CAUSEWAY_TEST_DATA_DIR) + "/golden_v4.cwt";
  std::ifstream in(golden, std::ios::binary);
  ASSERT_TRUE(in) << golden;
  const std::vector<std::uint8_t> original(
      (std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
  ASSERT_FALSE(original.empty());

  const std::vector<ColumnBundle> bundles = decode_trace_columns(original);
  ASSERT_FALSE(bundles.empty());

  const VarintKernel previous = active_varint_kernel();
  for (VarintKernel kernel :
       {VarintKernel::kScalar, VarintKernel::kSwar, VarintKernel::kSse,
        VarintKernel::kAvx2, VarintKernel::kNeon}) {
    if (!varint_kernel_available(kernel)) continue;
    force_varint_kernel(kernel);
    const auto path = std::filesystem::temp_directory_path() /
                      "causeway_golden_v4_col.cwt";
    {
      TraceWriter writer(path.string(), kTraceFormatV4);
      for (const ColumnBundle& cols : bundles) writer.append(cols);
      writer.close();
    }
    std::ifstream re(path, std::ios::binary);
    const std::vector<std::uint8_t> reencoded(
        (std::istreambuf_iterator<char>(re)),
        std::istreambuf_iterator<char>());
    std::filesystem::remove(path);
    EXPECT_EQ(reencoded, original)
        << "column re-encode not byte-stable under kernel "
        << std::string(to_string(kernel));
  }
  force_varint_kernel(previous);
}

TEST(TraceIo, GoldenV5DecodesToSameReportAsGoldenV4) {
  // The committed v5 fixture is the same workload as the v4 one
  // (synthetic causality, --transactions=6 --seed=99) re-encoded with
  // per-column blocks; both must analyze to the identical report, under
  // every available kernel.
  const std::string golden4 =
      std::string(CAUSEWAY_TEST_DATA_DIR) + "/golden_v4.cwt";
  const std::string golden5 =
      std::string(CAUSEWAY_TEST_DATA_DIR) + "/golden_v5.cwt";
  std::ifstream in4(golden4, std::ios::binary);
  std::ifstream in5(golden5, std::ios::binary);
  ASSERT_TRUE(in4) << golden4;
  ASSERT_TRUE(in5) << golden5;
  const std::vector<std::uint8_t> v4(
      (std::istreambuf_iterator<char>(in4)), std::istreambuf_iterator<char>());
  const std::vector<std::uint8_t> v5(
      (std::istreambuf_iterator<char>(in5)), std::istreambuf_iterator<char>());
  if (!compression_available()) {
    GTEST_SKIP() << "no zlib: committed v5 fixture has deflated columns";
  }

  auto report_of = [](const std::vector<std::uint8_t>& bytes) {
    LogDatabase db;
    for (const ColumnBundle& cols : decode_trace_columns(bytes)) {
      db.ingest(cols);
    }
    auto dscg = Dscg::build(db);
    return characterization_report(dscg, db);
  };
  const std::string reference = report_of(v4);

  const VarintKernel previous = active_varint_kernel();
  for (VarintKernel kernel :
       {VarintKernel::kScalar, VarintKernel::kSwar, VarintKernel::kSse,
        VarintKernel::kAvx2, VarintKernel::kNeon}) {
    if (!varint_kernel_available(kernel)) continue;
    force_varint_kernel(kernel);
    EXPECT_EQ(report_of(v5), reference)
        << "kernel " << std::string(to_string(kernel));
  }
  force_varint_kernel(previous);
}

TEST(TraceIo, GoldenV5ReencodesByteIdenticallyAcrossKernels) {
  // Byte-stability pin for the v5 encoder: decode the committed fixture
  // to column bundles and re-encode them at v5 under every kernel -- the
  // exact file must come back.  (The column payloads are the v4 kernel
  // bytes; the deflate layer on top is deterministic for a fixed zlib.)
  const std::string golden =
      std::string(CAUSEWAY_TEST_DATA_DIR) + "/golden_v5.cwt";
  std::ifstream in(golden, std::ios::binary);
  ASSERT_TRUE(in) << golden;
  const std::vector<std::uint8_t> original(
      (std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
  ASSERT_FALSE(original.empty());
  if (!compression_available()) {
    GTEST_SKIP() << "no zlib: cannot reproduce deflated column blocks";
  }

  const std::vector<ColumnBundle> bundles = decode_trace_columns(original);
  ASSERT_FALSE(bundles.empty());

  const VarintKernel previous = active_varint_kernel();
  for (VarintKernel kernel :
       {VarintKernel::kScalar, VarintKernel::kSwar, VarintKernel::kSse,
        VarintKernel::kAvx2, VarintKernel::kNeon}) {
    if (!varint_kernel_available(kernel)) continue;
    force_varint_kernel(kernel);
    const auto path = std::filesystem::temp_directory_path() /
                      "causeway_golden_v5_re.cwt";
    {
      TraceWriter writer(path.string(), kTraceFormatV5);
      for (const ColumnBundle& cols : bundles) writer.append(cols);
      writer.close();
    }
    std::ifstream re(path, std::ios::binary);
    const std::vector<std::uint8_t> reencoded(
        (std::istreambuf_iterator<char>(re)),
        std::istreambuf_iterator<char>());
    std::filesystem::remove(path);
    EXPECT_EQ(reencoded, original)
        << "v5 re-encode not byte-stable under kernel "
        << std::string(to_string(kernel));
  }
  force_varint_kernel(previous);
}
#endif

TEST(TraceIo, V5RoundTripMatchesV4Decode) {
  // v5 is v4 with each dense column wrapped in a (possibly deflated)
  // column block: the decoded records must be indistinguishable from the
  // v4 decode of the same logs, whatever codec each block picked.
  workload::LogSynthConfig config;
  config.total_calls = 500;
  LogDatabase source;
  workload::synthesize_logs(config, source);
  monitor::CollectedLogs logs;
  logs.epoch = 3;
  logs.records = source.records();

  const auto v4 = encode_trace(logs, kTraceFormatV4);
  const auto v5 = encode_trace(logs, kTraceFormatV5);
  EXPECT_NE(v4, v5);

  LogDatabase db4, db5;
  const std::size_t n4 = decode_trace(v4, db4);
  const std::size_t n5 = decode_trace(v5, db5);
  EXPECT_EQ(n4, db4.size());
  EXPECT_EQ(n5, db5.size());
  ASSERT_EQ(db5.size(), db4.size());
  auto dscg4 = Dscg::build(db4);
  auto dscg5 = Dscg::build(db5);
  EXPECT_EQ(characterization_report(dscg5, db5),
            characterization_report(dscg4, db4));
}

TEST(TraceIo, V5EncodeIsByteStableAcrossKernels) {
  workload::LogSynthConfig config;
  config.total_calls = 800;
  LogDatabase source;
  workload::synthesize_logs(config, source);
  monitor::CollectedLogs logs;
  logs.epoch = 1;
  logs.records = source.records();

  const VarintKernel previous = active_varint_kernel();
  std::vector<std::uint8_t> reference;
  for (VarintKernel kernel :
       {VarintKernel::kScalar, VarintKernel::kSwar, VarintKernel::kSse,
        VarintKernel::kAvx2, VarintKernel::kNeon}) {
    if (!varint_kernel_available(kernel)) continue;
    force_varint_kernel(kernel);
    auto bytes = encode_trace(logs, kTraceFormatV5);
    if (reference.empty()) {
      reference = std::move(bytes);
    } else {
      EXPECT_EQ(bytes, reference)
          << "kernel " << std::string(to_string(kernel));
    }
  }
  force_varint_kernel(previous);
  EXPECT_FALSE(reference.empty());
}

TEST(TraceIo, ColumnBlockRoundTripsRawAndDeflated) {
  // Small payloads stay raw (deflate framing can't win); large repetitive
  // ones deflate when zlib is in the build.  Both read back exactly.
  const std::vector<std::uint8_t> small{1, 2, 3, 4};
  std::vector<std::uint8_t> big(4096, 0x5a);

  for (const std::vector<std::uint8_t>* payload :
       std::initializer_list<const std::vector<std::uint8_t>*>{&small,
                                                               &big}) {
    WireBuffer out;
    write_column_block(out, *payload, /*try_deflate=*/true);
    WireCursor in(out.bytes());
    std::vector<std::uint8_t> scratch;
    const auto got = read_column_block(in, payload->size(), scratch);
    EXPECT_EQ(std::vector<std::uint8_t>(got.begin(), got.end()), *payload);
    EXPECT_EQ(in.remaining(), 0u);
  }
  if (compression_available()) {
    WireBuffer out;
    write_column_block(out, big, true);
    EXPECT_LT(out.size(), big.size());  // repetitive payload must deflate
  }
}

TEST(TraceIo, ColumnBlockRejectsOversizedAdvertisedLength) {
  // A block advertising a decoded size above the caller's structural
  // bound is rejected before any allocation -- for both codecs.
  {
    WireBuffer out;
    out.write_u8(0);  // raw
    out.write_varint(1 << 20);
    WireCursor in(out.bytes());
    std::vector<std::uint8_t> scratch;
    EXPECT_THROW(read_column_block(in, 64, scratch), WireError);
  }
  {
    WireBuffer out;
    out.write_u8(1);  // deflate
    out.write_varint(std::uint64_t{1} << 40);  // hostile raw_len
    out.write_varint(4);
    out.write_u32(0);
    WireCursor in(out.bytes());
    std::vector<std::uint8_t> scratch;
    EXPECT_THROW(read_column_block(in, 64, scratch), WireError);
  }
}

TEST(TraceIo, CorruptDeflatedColumnThrowsCleanly) {
  if (!compression_available()) {
    GTEST_SKIP() << "no zlib in this build";
  }
  // A deflated block whose stream bytes were damaged must surface as a
  // clean decode error (WireError wrapping the codec failure), and a v5
  // segment containing such a block must raise TraceIoError -- never a
  // crash or a short read.
  std::vector<std::uint8_t> payload(2048);
  for (std::size_t i = 0; i < payload.size(); ++i) {
    payload[i] = static_cast<std::uint8_t>(i % 7);
  }
  WireBuffer out;
  write_column_block(out, payload, true);
  auto bytes = out.bytes();
  ASSERT_EQ(bytes[0], 1) << "expected a deflated block";
  {
    auto corrupt = std::vector<std::uint8_t>(bytes.begin(), bytes.end());
    corrupt[corrupt.size() / 2] ^= 0xff;
    corrupt[corrupt.size() / 2 + 1] ^= 0xff;
    WireCursor in(corrupt);
    std::vector<std::uint8_t> scratch;
    EXPECT_THROW(read_column_block(in, payload.size(), scratch), WireError);
  }

  // End to end: flip bytes inside a deflated column of a real v5 segment.
  workload::LogSynthConfig config;
  config.total_calls = 400;
  LogDatabase source;
  workload::synthesize_logs(config, source);
  monitor::CollectedLogs logs;
  logs.epoch = 1;
  logs.records = source.records();
  auto seg = encode_trace(logs, kTraceFormatV5);
  for (std::size_t i = seg.size() / 2; i < seg.size() / 2 + 32; ++i) {
    seg[i] ^= 0xa5;
  }
  LogDatabase db;
  EXPECT_THROW(decode_trace(seg, db), TraceIoError);
}

TEST(TraceIo, CheckpointedWriterRepairsFromLastCheckpoint) {
  // A writer with checkpoint_every=2 leaves directory blocks after
  // segments 2 and 4.  Tear the file mid-segment-5 (a crash artifact) and
  // --reindex must resume from the second checkpoint: the four
  // checkpointed segments are vouched for by the block chain, only the
  // tail past the last checkpoint is re-skimmed, and the torn bytes are
  // truncated away.
  const auto path = std::filesystem::temp_directory_path() / "causeway_cp.cwt";
  std::uint64_t after_four = 0;
  {
    TraceWriter writer(path.string(), kTraceFormatV4, /*checkpoint_every=*/2);
    for (std::uint64_t e = 1; e <= 4; ++e) {
      auto logs = sample_logs();
      logs.epoch = e;
      writer.append(logs);
    }
    after_four = writer.bytes_written();
    auto logs = sample_logs();
    logs.epoch = 5;
    writer.append(logs);
    const std::uint64_t after_five = writer.bytes_written();
    writer.close();
    std::filesystem::resize_file(
        path, after_four + (after_five - after_four) / 2);
  }

  const ReindexResult result = reindex_trace_file(path.string());
  EXPECT_TRUE(result.rewritten);
  EXPECT_TRUE(result.used_checkpoint);
  EXPECT_EQ(result.checkpoint_segments, 4u);
  // The torn tail held no complete segment, so the appended trailer
  // indexes an empty final run -- the four checkpointed segments are
  // reached through the block chain, not the trailer.
  EXPECT_EQ(result.segments, 0u);
  EXPECT_GT(result.truncated_bytes, 0u);

  LogDatabase db;
  EXPECT_EQ(read_trace_file(path.string(), db), 16u);
  EXPECT_EQ(db.last_epoch(), 4u);

  // The repaired file is closed: a second pass is a no-op.
  const ReindexResult again = reindex_trace_file(path.string());
  EXPECT_FALSE(again.rewritten);
  std::filesystem::remove(path);
}

TEST(TraceIo, CheckpointedCloseReadsLikeUncheckpointed) {
  // Interior checkpoints are invisible to readers: the same segments
  // written with and without checkpointing decode to the same records.
  const auto plain = std::filesystem::temp_directory_path() / "causeway_p.cwt";
  const auto ckpt = std::filesystem::temp_directory_path() / "causeway_c.cwt";
  for (const auto& [file, every] :
       {std::pair{plain, std::size_t{0}}, std::pair{ckpt, std::size_t{1}}}) {
    TraceWriter writer(file.string(), kTraceFormatV4, every);
    for (std::uint64_t e = 1; e <= 3; ++e) {
      auto logs = sample_logs();
      logs.epoch = e;
      writer.append(logs);
    }
    writer.close();
  }
  LogDatabase db_plain, db_ckpt;
  EXPECT_EQ(read_trace_file(plain.string(), db_plain), 12u);
  EXPECT_EQ(read_trace_file(ckpt.string(), db_ckpt), 12u);
  EXPECT_EQ(db_ckpt.last_epoch(), db_plain.last_epoch());
  EXPECT_GT(std::filesystem::file_size(ckpt),
            std::filesystem::file_size(plain));
  std::filesystem::remove(plain);
  std::filesystem::remove(ckpt);
}

TEST(TraceIo, ColumnarEncodeMatchesRecmajorReference) {
  // The tentpole byte-identity contract: the columnar v4 writer must
  // reproduce the frozen record-major writer's bytes exactly, under every
  // available kernel, on a workload big enough to exercise every vector
  // block width and the mixed-magnitude fallbacks.
  workload::LogSynthConfig config;
  config.total_calls = 3'000;
  LogDatabase source;
  workload::synthesize_logs(config, source);
  monitor::CollectedLogs logs;
  logs.records = source.records();
  logs.epoch = 12;
  logs.dropped = 3;

  const auto reference = encode_trace_recmajor(logs, kTraceFormatV4);
  const VarintKernel previous = active_varint_kernel();
  for (VarintKernel kernel :
       {VarintKernel::kScalar, VarintKernel::kSwar, VarintKernel::kSse,
        VarintKernel::kAvx2, VarintKernel::kNeon}) {
    if (!varint_kernel_available(kernel)) continue;
    force_varint_kernel(kernel);
    EXPECT_EQ(encode_trace(logs, kTraceFormatV4), reference)
        << "kernel " << std::string(to_string(kernel));
  }
  force_varint_kernel(previous);

  // v3 is untouched by the columnar writer: both entry points emit the
  // same record-major bytes.
  EXPECT_EQ(encode_trace(logs, kTraceFormatV3),
            encode_trace_recmajor(logs, kTraceFormatV3));
}

TEST(TraceIo, EncodeTraceColumnsRoundTripsThroughDecode) {
  // encode -> column decode -> column encode reproduces the segment.
  const auto logs = sample_logs();
  const auto bytes = encode_trace(logs, kTraceFormatV4);
  const std::vector<ColumnBundle> bundles = decode_trace_columns(bytes);
  ASSERT_EQ(bundles.size(), 1u);
  EXPECT_EQ(encode_trace_columns(bundles[0]), bytes);
}

TEST(TraceIo, EncodeStreamMatchesSerialLoop) {
  // Multi-segment packing (parallel when the pool allows) must commit in
  // input order and byte-match a serial encode of each bundle, for both
  // the record-major and column-native entry points.
  workload::LogSynthConfig config;
  config.total_calls = 1'500;
  // The sources stay alive for the whole test: the records hold
  // string_views into each database's intern pool.
  std::deque<LogDatabase> sources;
  std::vector<monitor::CollectedLogs> bundles;
  for (std::uint64_t epoch = 1; epoch <= 6; ++epoch) {
    LogDatabase& source = sources.emplace_back();
    config.seed = 40 + epoch;
    workload::synthesize_logs(config, source);
    monitor::CollectedLogs logs;
    logs.records = source.records();
    logs.epoch = epoch;
    bundles.push_back(std::move(logs));
  }

  const auto encoded = encode_trace_stream(bundles);
  ASSERT_EQ(encoded.size(), bundles.size());
  std::vector<std::uint8_t> concat;
  for (std::size_t i = 0; i < bundles.size(); ++i) {
    EXPECT_EQ(encoded[i], encode_trace(bundles[i])) << "segment " << i;
    concat.insert(concat.end(), encoded[i].begin(), encoded[i].end());
  }

  const std::vector<ColumnBundle> columns = decode_trace_columns(concat);
  ASSERT_EQ(columns.size(), bundles.size());
  const auto col_encoded = encode_trace_columns_stream(columns);
  ASSERT_EQ(col_encoded.size(), columns.size());
  for (std::size_t i = 0; i < columns.size(); ++i) {
    EXPECT_EQ(col_encoded[i], encoded[i]) << "segment " << i;
  }
}

TEST(TraceIo, TraceWriterColumnAppendMatchesRecordAppend) {
  const auto logs = sample_logs();
  const auto bytes = encode_trace(logs, kTraceFormatV4);
  const std::vector<ColumnBundle> bundles = decode_trace_columns(bytes);
  ASSERT_EQ(bundles.size(), 1u);

  const auto dir = std::filesystem::temp_directory_path();
  const auto rec_path = dir / "causeway_colappend_rec.cwt";
  const auto col_path = dir / "causeway_colappend_col.cwt";
  {
    TraceWriter writer(rec_path.string(), kTraceFormatV4);
    writer.append(logs);
    writer.close();
  }
  {
    TraceWriter writer(col_path.string(), kTraceFormatV4);
    writer.append(bundles[0]);
    EXPECT_EQ(writer.records_written(), logs.records.size());
    writer.close();
  }
  auto slurp = [](const std::filesystem::path& p) {
    std::ifstream in(p, std::ios::binary);
    return std::vector<std::uint8_t>((std::istreambuf_iterator<char>(in)),
                                     std::istreambuf_iterator<char>());
  };
  EXPECT_EQ(slurp(col_path), slurp(rec_path));
  std::filesystem::remove(rec_path);
  std::filesystem::remove(col_path);

  // v3 writers have no columnar form.
  const auto v3_path = dir / "causeway_colappend_v3.cwt";
  TraceWriter v3_writer(v3_path.string(), kTraceFormatV3);
  EXPECT_THROW(v3_writer.append(bundles[0]), TraceIoError);
  v3_writer.close();
  std::filesystem::remove(v3_path);
}

TEST(TraceIo, EncodeTraceColumnsValidatesBundle) {
  const auto bytes = encode_trace(sample_logs(), kTraceFormatV4);
  const std::vector<ColumnBundle> bundles = decode_trace_columns(bytes);
  ASSERT_EQ(bundles.size(), 1u);

  {  // column length disagrees with count
    ColumnBundle bad = bundles[0];
    bad.seq.pop_back();
    EXPECT_THROW(encode_trace_columns(bad), TraceIoError);
  }
  {  // runs no longer cover the records
    ColumnBundle bad = bundles[0];
    bad.runs.back().length -= 1;
    EXPECT_THROW(encode_trace_columns(bad), TraceIoError);
  }
  {  // string id out of table range
    ColumnBundle bad = bundles[0];
    bad.iface[0] = static_cast<std::uint32_t>(bad.table.size());
    EXPECT_THROW(encode_trace_columns(bad), TraceIoError);
  }
  {  // spawned entries must match the flags2 presence bits
    ColumnBundle bad = bundles[0];
    bad.spawned.push_back(Uuid::generate());
    EXPECT_THROW(encode_trace_columns(bad), TraceIoError);
  }
  {  // domain identity string absent from the table
    ColumnBundle bad = bundles[0];
    bad.domains[0].identity.process_name = "no-such-process";
    EXPECT_THROW(encode_trace_columns(bad), TraceIoError);
  }
}

TEST(TraceIo, ColumnIngestMatchesRecordIngestAcrossShardCounts) {
  // The column fast path (decode_trace_columns + ingest(ColumnBundle)) and
  // the record-major path (decode_trace_segments + ingest(CollectedLogs))
  // must populate a database that renders byte-identically, at 1 and 8
  // ingest shards.
  workload::LogSynthConfig config;
  config.total_calls = 2'000;
  LogDatabase source;
  workload::synthesize_logs(config, source);
  monitor::CollectedLogs logs;
  logs.records = source.records();
  const auto bytes = encode_trace(logs, kTraceFormatV4);

  for (std::size_t shards : {std::size_t{1}, std::size_t{8}}) {
    LogDatabase record_db(shards);
    for (const monitor::CollectedLogs& seg : decode_trace_segments(bytes)) {
      record_db.ingest(seg);
    }
    LogDatabase column_db(shards);
    for (const ColumnBundle& cols : decode_trace_columns(bytes)) {
      column_db.ingest(cols);
    }
    ASSERT_EQ(column_db.size(), record_db.size()) << shards << " shards";
    auto dscg_r = Dscg::build(record_db);
    auto dscg_c = Dscg::build(column_db);
    EXPECT_EQ(characterization_report(dscg_c, column_db),
              characterization_report(dscg_r, record_db))
        << shards << " shards";
  }
}

TEST(TraceIo, DecodeTraceColumnsRejectsRecordMajorFormats) {
  const auto bytes = encode_trace(sample_logs(), kTraceFormatV3);
  EXPECT_THROW(decode_trace_columns(bytes), TraceIoError);
}

TEST(TraceIo, CorruptSegmentErrorTextIsKernelIndependent) {
  // The overlong-varint and underflow rejections live in one strict
  // decoder shared by every kernel, so the error a corrupt segment raises
  // must not depend on which kernel decoded it.  Two corpses: a truncated
  // trailing column varint (underflow) and a hand-built segment whose
  // object-key column holds an overlong ten-byte encoding.
  auto truncated = encode_trace(sample_logs(), kTraceFormatV4);
  truncated.back() |= 0x80;

  WireBuffer seg;
  seg.write_u32(0x43575452);
  seg.write_u32(4);
  const std::size_t length_at = seg.size();
  seg.write_u64(0);
  const std::size_t body = seg.size();
  seg.write_u64(1);     // epoch
  seg.write_u64(0);     // dropped
  seg.write_varint(0);  // no domains
  seg.write_varint(1);  // one string: "a"
  seg.write_varint(1);
  seg.write_u8('a');
  seg.write_varint(1);  // one record
  seg.write_varint(1);  // one run
  seg.write_u64(1);     // chain hi/lo
  seg.write_u64(2);
  seg.write_varint(1);   // run length
  seg.write_svarint(1);  // seq delta
  seg.write_u8(1);       // flags1
  seg.write_u8(0);       // flags2
  seg.write_varint(0);   // interface id
  seg.write_varint(0);   // function id
  for (int i = 0; i < 9; ++i) seg.write_u8(0x80);  // object key: overlong --
  seg.write_u8(0x02);                              // bits past the 64th
  seg.write_varint(0);   // process id
  seg.write_varint(0);   // node id
  seg.write_varint(0);   // type id
  seg.write_varint(0);   // thread ordinal
  seg.write_svarint(0);  // value_start
  seg.write_svarint(0);  // value_end
  seg.overwrite_u64(length_at, seg.size() - body);
  const std::vector<std::uint8_t> overlong = seg.bytes();

  const VarintKernel previous = active_varint_kernel();
  auto error_text = [](const std::vector<std::uint8_t>& bytes) {
    LogDatabase db;
    try {
      decode_trace(bytes, db);
    } catch (const TraceIoError& e) {
      return std::string(e.what());
    }
    return std::string("(no error)");
  };
  std::string truncated_text, overlong_text;
  for (VarintKernel kernel :
       {VarintKernel::kScalar, VarintKernel::kSwar, VarintKernel::kSse,
        VarintKernel::kAvx2, VarintKernel::kNeon}) {
    if (!varint_kernel_available(kernel)) continue;
    force_varint_kernel(kernel);
    const std::string t = error_text(truncated);
    const std::string o = error_text(overlong);
    EXPECT_NE(t, "(no error)");
    EXPECT_TRUE(o.find("varint overlong") != std::string::npos)
        << o << " under kernel " << std::string(to_string(kernel));
    if (truncated_text.empty()) {
      truncated_text = t;
      overlong_text = o;
    } else {
      EXPECT_EQ(t, truncated_text)
          << "kernel " << std::string(to_string(kernel));
      EXPECT_EQ(o, overlong_text)
          << "kernel " << std::string(to_string(kernel));
    }
  }
  force_varint_kernel(previous);
}

TEST(TraceIo, LargeStreamRoundTrip) {
  // Full paper-shape stream through the codec.
  workload::LogSynthConfig config;
  config.total_calls = 5'000;
  LogDatabase source;
  workload::synthesize_logs(config, source);

  monitor::CollectedLogs logs;
  logs.records = source.records();
  const auto bytes = encode_trace(logs);

  LogDatabase decoded;
  EXPECT_EQ(decode_trace(bytes, decoded), source.size());
  auto dscg_a = Dscg::build(source);
  auto dscg_b = Dscg::build(decoded);
  EXPECT_EQ(dscg_a.call_count(), dscg_b.call_count());
  EXPECT_EQ(dscg_a.anomaly_count(), dscg_b.anomaly_count());
  EXPECT_EQ(dscg_a.chains().size(), dscg_b.chains().size());
}

TEST(Report, RendersAllSections) {
  workload::LogSynthConfig config;
  config.total_calls = 800;
  config.drop_fraction = 0.01;
  LogDatabase db;
  workload::synthesize_logs(config, db);
  auto dscg = Dscg::build(db);

  const std::string report = characterization_report(dscg, db);
  EXPECT_NE(report.find("characterization report"), std::string::npos);
  EXPECT_NE(report.find("probe mode: latency"), std::string::npos);
  EXPECT_NE(report.find("--- per function ---"), std::string::npos);
  EXPECT_NE(report.find("--- calls served per process ---"), std::string::npos);
  EXPECT_NE(report.find("--- cross-process invocations"), std::string::npos);
  EXPECT_NE(report.find("--- slowest calls"), std::string::npos);
  EXPECT_NE(report.find("--- anomalies ---"), std::string::npos);
}

TEST(Report, SummaryJsonIsBalancedAndComplete) {
  workload::LogSynthConfig config;
  config.total_calls = 500;
  LogDatabase db;
  workload::synthesize_logs(config, db);
  auto dscg = Dscg::build(db);
  const std::string json = summary_json(dscg, db);

  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  for (const char* key :
       {"\"records\":", "\"chains\":", "\"calls\":", "\"anomalies\":",
        "\"failures\":", "\"mode\":\"latency\"", "\"topology\":",
        "\"transaction_latency_us\":", "\"total_self_cpu_us\":"}) {
    EXPECT_NE(json.find(key), std::string::npos) << key;
  }
  int braces = 0;
  for (char c : json) braces += (c == '{') - (c == '}');
  EXPECT_EQ(braces, 0);
}

TEST(LogSynthCpu, CpuModeStreamsAnnotate) {
  workload::LogSynthConfig config;
  config.mode = monitor::ProbeMode::kCpu;
  config.total_calls = 2'000;
  LogDatabase db;
  const auto stats = workload::synthesize_logs(config, db);
  EXPECT_EQ(db.primary_mode(), monitor::ProbeMode::kCpu);

  auto dscg = Dscg::build(db);
  EXPECT_EQ(dscg.anomaly_count(), 0u);
  auto report = annotate_cpu(dscg);
  EXPECT_GT(report.annotated, stats.calls / 2);

  // Self CPU is non-negative everywhere (clamped) and positive somewhere.
  Nanos total = 0;
  dscg.visit([&](const CallNode& node, int) {
    EXPECT_GE(node.self_cpu.total(), 0);
    total += node.self_cpu.total();
  });
  EXPECT_GT(total, 0);
}

TEST(Report, CpuModeShowsProcessorAxes) {
  // Build a tiny CPU-mode stream by hand.
  monitor::CollectedLogs logs;
  const Uuid chain = Uuid::generate();
  auto rec = [&](std::uint64_t seq, monitor::EventKind event, Nanos v0,
                 Nanos v1) {
    monitor::TraceRecord r;
    r.chain = chain;
    r.seq = seq;
    r.event = event;
    r.kind = monitor::CallKind::kSync;
    r.interface_name = "I";
    r.function_name = "f";
    r.process_name = "procA";
    r.node_name = "n";
    r.processor_type = "pa-risc";
    r.mode = monitor::ProbeMode::kCpu;
    r.value_start = v0;
    r.value_end = v1;
    return r;
  };
  logs.records.push_back(rec(1, monitor::EventKind::kStubStart, 0, 1));
  logs.records.push_back(rec(2, monitor::EventKind::kSkelStart, 100, 110));
  logs.records.push_back(rec(3, monitor::EventKind::kSkelEnd, 5110, 5120));
  logs.records.push_back(rec(4, monitor::EventKind::kStubEnd, 10, 11));

  LogDatabase db;
  db.ingest(logs);
  auto dscg = Dscg::build(db);
  const std::string report = characterization_report(dscg, db);
  EXPECT_NE(report.find("probe mode: cpu"), std::string::npos);
  EXPECT_NE(report.find("self cpu us"), std::string::npos);
  EXPECT_NE(report.find("pa-risc"), std::string::npos);
}

}  // namespace
}  // namespace causeway::analysis
