// Forked end-to-end acceptance for the durable store + query pipeline: a
// real `causeway-record --publish` feeds a real `causeway-collectd --store`
// that rotates into sealed files, and `causeway-query` is then driven
// against the resulting directory -- including the catalog-pruning stats, a
// compressed (v5) vs uncompressed (v4) store identity check across ingest
// shard counts, and a kill -9 of the daemon followed by
// `causeway-analyze --reindex` crash repair.
//
// Tool binaries are injected at configure time (CAUSEWAY_*_BIN); children
// are plain fork+exec with stdout/stderr captured to files.
#include <gtest/gtest.h>

#include <fcntl.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "store/store.h"

namespace {

namespace fs = std::filesystem;

std::string tmp(const std::string& name) {
  return ::testing::TempDir() + "cw_store_e2e_" +
         std::to_string(::getpid()) + "_" + name;
}

// fork+exec with stdout/stderr redirected to files ("" = inherit).
// Returns the child's exit status, or -1.
int run(const std::vector<std::string>& argv, const std::string& out_path = "",
        const std::string& err_path = "") {
  std::vector<char*> cargv;
  for (const std::string& a : argv) {
    cargv.push_back(const_cast<char*>(a.c_str()));
  }
  cargv.push_back(nullptr);
  const pid_t pid = ::fork();
  if (pid < 0) return -1;
  if (pid == 0) {
    auto redirect = [](const std::string& path, int fd) {
      if (path.empty()) return;
      const int file =
          ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
      if (file >= 0) {
        ::dup2(file, fd);
        ::close(file);
      }
    };
    redirect(out_path, STDOUT_FILENO);
    redirect(err_path, STDERR_FILENO);
    ::execv(cargv[0], cargv.data());
    ::_exit(127);
  }
  int status = 0;
  if (::waitpid(pid, &status, 0) != pid) return -1;
  return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
}

pid_t spawn(const std::vector<std::string>& argv) {
  std::vector<char*> cargv;
  for (const std::string& a : argv) {
    cargv.push_back(const_cast<char*>(a.c_str()));
  }
  cargv.push_back(nullptr);
  const pid_t pid = ::fork();
  if (pid == 0) {
    ::execv(cargv[0], cargv.data());
    ::_exit(127);
  }
  return pid;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return {std::istreambuf_iterator<char>(in),
          std::istreambuf_iterator<char>()};
}

// Wait for the daemon's --addr-file (complete files end in a newline).
bool wait_addr(const std::string& path) {
  for (int i = 0; i < 1000; ++i) {
    const std::string contents = slurp(path);
    if (!contents.empty() && contents.back() == '\n') return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  return false;
}

// One store-producing run: daemon with the given store flags, one
// publisher of the fixed workload, daemon reaped via --expect=1.
void produce_store(const std::string& tag, const std::string& store_dir,
                   const std::vector<std::string>& extra_daemon_flags,
                   const std::string& mode = "latency") {
  const std::string sock = tmp(tag + ".sock");
  const std::string addr_file = tmp(tag + ".addr");
  fs::remove(sock);
  fs::remove(addr_file);
  std::vector<std::string> daemon_args = {
      CAUSEWAY_COLLECTD_BIN, "--listen=" + sock, "--store=" + store_dir,
      "--expect=1",          "--quiet",          "--addr-file=" + addr_file};
  daemon_args.insert(daemon_args.end(), extra_daemon_flags.begin(),
                     extra_daemon_flags.end());
  const pid_t daemon = spawn(daemon_args);
  ASSERT_TRUE(wait_addr(addr_file)) << "daemon never bound " << sock;
  ASSERT_EQ(run({CAUSEWAY_RECORD_BIN, "--workload=synthetic",
                 "--mode=" + mode, "--transactions=80", "--seed=42",
                 "--interval-ms=5", "--publish=" + sock}),
            0);
  int status = 0;
  ASSERT_EQ(::waitpid(daemon, &status, 0), daemon);
  ASSERT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 0);
}

// Runs causeway-query and returns its stdout; stats stderr (if requested)
// goes to *stats_out.
std::string query(const std::vector<std::string>& inputs,
                  const std::string& q, std::string* stats_out = nullptr) {
  const std::string out = tmp("q_out.txt");
  const std::string err = tmp("q_err.txt");
  std::vector<std::string> argv = {CAUSEWAY_QUERY_BIN};
  argv.insert(argv.end(), inputs.begin(), inputs.end());
  argv.push_back("--query=" + q);
  argv.push_back("--format=csv");
  if (stats_out) argv.push_back("--stats");
  EXPECT_EQ(run(argv, out, err), 0) << slurp(err);
  if (stats_out) *stats_out = slurp(err);
  return slurp(out);
}

std::size_t sealed_count(const std::string& dir) {
  std::size_t n = 0;
  for (const auto& entry : fs::directory_iterator(dir)) {
    const std::string name = entry.path().filename().string();
    if (name.rfind("store-", 0) == 0) ++n;
  }
  return n;
}

TEST(StoreE2e, CollectdRotatesIntoSealedFilesAndQueryPrunes) {
  const std::string dir = tmp("rotate_store");
  fs::remove_all(dir);
  produce_store("rotate", dir,
                {"--rotate-segments=1", "--checkpoint-segments=1"});

  // The run must have rotated into at least three sealed files plus the
  // catalog (ISSUE acceptance floor).
  ASSERT_GE(sealed_count(dir), 3u);
  ASSERT_TRUE(fs::exists(fs::path(dir) / "catalog.cwc"));
  ASSERT_FALSE(fs::exists(fs::path(dir) / "current.cwt"));

  // Offline reference of the same seed: span counts are deterministic
  // even in latency mode (only the latency *values* differ run to run).
  const std::string ref = tmp("rotate_ref.cwt");
  ASSERT_EQ(run({CAUSEWAY_RECORD_BIN, "--workload=synthetic",
                 "--mode=latency", "--transactions=80", "--seed=42",
                 "--out=" + ref}),
            0);
  EXPECT_EQ(query({dir}, "count, count group by iface"),
            query({ref}, "count, count group by iface"));

  // Time-window + interface-filter + p95 against the middle sealed file's
  // timestamp range: the planner must open only the files whose catalog
  // range intersects the window -- asserted through the decode counters,
  // not trusted.
  const causeway::store::StoreView view = causeway::store::open_store(dir);
  ASSERT_GE(view.files.size(), 3u);
  const auto& mid = view.files[view.files.size() / 2].entry;
  std::string stats;
  query({dir},
        "count, p95(latency) where iface =~ Iface since " +
            std::to_string(mid.min_ts) + " until " + std::to_string(mid.max_ts),
        &stats);
  std::size_t candidates = 0, pruned = 0, opened = 0;
  ASSERT_EQ(std::sscanf(stats.c_str(),
                        "[query] files: %zu candidates, %zu pruned by "
                        "catalog, %zu opened",
                        &candidates, &pruned, &opened),
            3)
      << stats;
  EXPECT_EQ(candidates, view.files.size());
  EXPECT_GE(pruned, 1u);
  EXPECT_LT(opened, candidates);
  EXPECT_EQ(opened + pruned, candidates);

  // A window before every record prunes everything: no file opened.
  query({dir}, "count since -2000000000 until -1000000000", &stats);
  ASSERT_EQ(std::sscanf(stats.c_str(),
                        "[query] files: %zu candidates, %zu pruned by "
                        "catalog, %zu opened",
                        &candidates, &pruned, &opened),
            3);
  EXPECT_EQ(opened, 0u);
  EXPECT_EQ(pruned, candidates);
}

TEST(StoreE2e, CompressedStoreAndShardCountsQueryIdentically) {
  // Same workload into an uncompressed v4 store (1 ingest shard) and a
  // --compress v5 store (8 ingest shards).  Causality mode keeps records
  // value-free, so every query result -- not just counts -- must be
  // byte-identical across compression and shard count.
  const std::string dir_v4 = tmp("plain_store");
  const std::string dir_v5 = tmp("compressed_store");
  fs::remove_all(dir_v4);
  fs::remove_all(dir_v5);
  produce_store("plain", dir_v4, {"--rotate-segments=2", "--ingest-shards=1"},
                "causality");
  produce_store("compressed", dir_v5,
                {"--rotate-segments=2", "--ingest-shards=8", "--compress"},
                "causality");

  for (const std::string& q :
       {std::string("count, count group by iface"),
        std::string("count group by func"),
        std::string("count where outcome != ok group by kind")}) {
    EXPECT_EQ(query({dir_v5}, q), query({dir_v4}, q)) << q;
  }

  // The offline recording of the same seed agrees too.
  const std::string ref = tmp("shard_ref.cwt");
  ASSERT_EQ(run({CAUSEWAY_RECORD_BIN, "--workload=synthetic",
                 "--mode=causality", "--transactions=80", "--seed=42",
                 "--out=" + ref}),
            0);
  EXPECT_EQ(query({dir_v4}, "count group by iface"),
            query({ref}, "count group by iface"));
}

TEST(StoreE2e, KillNineThenReindexLosesAtMostUncheckpointedTail) {
  // Daemon with a large rotation threshold, so the live file accumulates
  // checkpointed segments; the publisher completes, the daemon is killed
  // with SIGKILL before any clean shutdown, and --reindex must recover
  // every complete segment: with --checkpoint-segments=1 the unsealed
  // tail past the last checkpoint is at most one torn segment, and here
  // (the writes all completed) exactly zero records.
  const std::string dir = tmp("kill_store");
  const std::string sock = tmp("kill.sock");
  const std::string addr_file = tmp("kill.addr");
  fs::remove_all(dir);
  fs::remove(sock);
  fs::remove(addr_file);

  const pid_t daemon = spawn({CAUSEWAY_COLLECTD_BIN, "--listen=" + sock,
                              "--store=" + dir, "--rotate-segments=64",
                              "--checkpoint-segments=1", "--quiet",
                              "--addr-file=" + addr_file});
  ASSERT_TRUE(wait_addr(addr_file));
  ASSERT_EQ(run({CAUSEWAY_RECORD_BIN, "--workload=synthetic",
                 "--mode=causality", "--transactions=80", "--seed=42",
                 "--interval-ms=5", "--publish=" + sock}),
            0);
  // Give the daemon a beat to drain the socket, then kill it cold.
  std::this_thread::sleep_for(std::chrono::milliseconds(500));
  ASSERT_EQ(::kill(daemon, SIGKILL), 0);
  int status = 0;
  ASSERT_EQ(::waitpid(daemon, &status, 0), daemon);
  ASSERT_TRUE(WIFSIGNALED(status));

  // The crash left a live file (nothing rotated at this threshold) and no
  // catalog entry for it.
  ASSERT_TRUE(fs::exists(fs::path(dir) / "current.cwt"));

  // Repair the whole directory, then the query result must match the
  // offline recording exactly: no complete segment was lost.
  const std::string reindex_out = tmp("reindex.txt");
  ASSERT_EQ(run({CAUSEWAY_ANALYZE_BIN, dir, "--reindex"}, reindex_out), 0);
  EXPECT_NE(slurp(reindex_out).find("store reindexed"), std::string::npos);
  EXPECT_FALSE(fs::exists(fs::path(dir) / "current.cwt"));
  ASSERT_GE(sealed_count(dir), 1u);

  const std::string ref = tmp("kill_ref.cwt");
  ASSERT_EQ(run({CAUSEWAY_RECORD_BIN, "--workload=synthetic",
                 "--mode=causality", "--transactions=80", "--seed=42",
                 "--out=" + ref}),
            0);
  EXPECT_EQ(query({dir}, "count, count group by iface"),
            query({ref}, "count, count group by iface"));
}

}  // namespace
