#include "analysis/export.h"

#include <gtest/gtest.h>

#include "analysis/latency.h"
#include "analysis_test_util.h"

namespace causeway::analysis {
namespace {

using monitor::CallKind;
using monitor::EventKind;
using testutil::Scribe;

struct Fixture {
  LogDatabase db;
  Dscg dscg;

  Fixture() {
    Scribe s;
    s.emit(EventKind::kStubStart, CallKind::kSync, "Shop::Store", "buy", 0, 1);
    s.emit(EventKind::kSkelStart, CallKind::kSync, "Shop::Store", "buy", 2, 3,
           "procB", 2);
    Nanos t[8] = {4, 5, 6, 7, 8, 9, 10, 11};
    s.leaf_sync("Shop::Pay", "charge", t, "procB", "procC");
    s.emit(EventKind::kSkelEnd, CallKind::kSync, "Shop::Store", "buy", 12, 13,
           "procB", 2);
    s.emit(EventKind::kStubEnd, CallKind::kSync, "Shop::Store", "buy", 14, 15);
    db.ingest_records(s.records());
    dscg = Dscg::build(db);
    annotate_latency(dscg);
  }
};

TEST(Export, TextShowsHierarchyAndAnnotations) {
  Fixture f;
  const std::string text = to_text(f.dscg);
  EXPECT_NE(text.find("chain "), std::string::npos);
  EXPECT_NE(text.find("Shop::Store::buy"), std::string::npos);
  EXPECT_NE(text.find("Shop::Pay::charge"), std::string::npos);
  EXPECT_NE(text.find("latency="), std::string::npos);
  EXPECT_NE(text.find("@procB"), std::string::npos);
  // The child is indented one level deeper than the parent.
  const auto buy = text.find("Shop::Store::buy");
  const auto charge = text.find("Shop::Pay::charge");
  const auto buy_line_start = text.rfind('\n', buy) + 1;
  const auto charge_line_start = text.rfind('\n', charge) + 1;
  EXPECT_GT(charge - charge_line_start, buy - buy_line_start);
}

TEST(Export, TextRespectsNodeLimit) {
  Fixture f;
  ExportOptions options;
  options.max_nodes = 1;
  const std::string text = to_text(f.dscg, options);
  EXPECT_NE(text.find("Shop::Store::buy"), std::string::npos);
  EXPECT_EQ(text.find("Shop::Pay::charge"), std::string::npos);
}

TEST(Export, DotIsStructurallyValid) {
  Fixture f;
  const std::string dot = to_dot(f.dscg);
  EXPECT_EQ(dot.find("digraph DSCG {"), 0u);
  EXPECT_NE(dot.find("n0 ["), std::string::npos);
  EXPECT_NE(dot.find("n0 -> n1;"), std::string::npos);
  EXPECT_EQ(dot.back(), '\n');
  EXPECT_NE(dot.find("}"), std::string::npos);
}

TEST(Export, JsonHasChainsAndNesting) {
  Fixture f;
  const std::string json = to_json(f.dscg);
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  EXPECT_NE(json.find("\"chains\":["), std::string::npos);
  EXPECT_NE(json.find("\"function\":\"buy\""), std::string::npos);
  EXPECT_NE(json.find("\"children\":[{"), std::string::npos);
  EXPECT_NE(json.find("\"latency_ns\":"), std::string::npos);
  // Balanced braces/brackets (cheap structural check).
  int braces = 0, brackets = 0;
  for (char c : json) {
    braces += (c == '{') - (c == '}');
    brackets += (c == '[') - (c == ']');
  }
  EXPECT_EQ(braces, 0);
  EXPECT_EQ(brackets, 0);
}

TEST(Export, HtmlIsSelfContainedAndNested) {
  Fixture f;
  const std::string html = to_html(f.dscg);
  EXPECT_EQ(html.rfind("<!DOCTYPE html>", 0), 0u);
  EXPECT_NE(html.find("<style>"), std::string::npos);
  EXPECT_NE(html.find("Shop::Store::buy"), std::string::npos);
  EXPECT_NE(html.find("Shop::Pay::charge"), std::string::npos);
  // Parent is a collapsible node; leaf child is a plain row.
  EXPECT_NE(html.find("<details open><summary>"), std::string::npos);
  EXPECT_NE(html.find("<div class='leaf'>"), std::string::npos);
  // Balanced details tags.
  std::size_t open = 0, close = 0, pos = 0;
  while ((pos = html.find("<details", pos)) != std::string::npos) {
    ++open;
    pos += 8;
  }
  pos = 0;
  while ((pos = html.find("</details>", pos)) != std::string::npos) {
    ++close;
    pos += 10;
  }
  EXPECT_EQ(open, close);
  EXPECT_NE(html.find("</html>"), std::string::npos);
}

TEST(Export, HtmlEscapesAndAnnotates) {
  Fixture f;
  const std::string html = to_html(f.dscg);
  EXPECT_NE(html.find("class='metric'"), std::string::npos);  // latency shown
  EXPECT_NE(html.find("@procB"), std::string::npos);
}

TEST(Export, SpawnedChainsRendered) {
  Scribe parent;
  const Uuid child = Uuid::generate();
  auto& start = parent.emit(EventKind::kStubStart, CallKind::kOneway,
                            "I", "notify", 0, 1);
  start.spawned_chain = child;
  parent.emit(EventKind::kStubEnd, CallKind::kOneway, "I", "notify", 2, 3);

  std::vector<monitor::TraceRecord> child_records;
  monitor::TraceRecord r;
  r.chain = child;
  r.seq = 1;
  r.event = EventKind::kSkelStart;
  r.kind = CallKind::kOneway;
  r.interface_name = "I";
  r.function_name = "notify";
  r.process_name = "procB";
  r.node_name = "n";
  r.processor_type = "x";
  child_records.push_back(r);
  r.seq = 2;
  r.event = EventKind::kSkelEnd;
  child_records.push_back(r);

  LogDatabase db;
  db.ingest_records(parent.records());
  db.ingest_records(child_records);
  Dscg dscg = Dscg::build(db);

  const std::string text = to_text(dscg);
  EXPECT_NE(text.find("~> spawned chain"), std::string::npos);
  const std::string json = to_json(dscg);
  EXPECT_NE(json.find("\"spawned\":[{"), std::string::npos);
}

}  // namespace
}  // namespace causeway::analysis
