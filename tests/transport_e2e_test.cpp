// Forked multi-process acceptance for the collection transport: N real
// `causeway-record --publish` processes feed one real `causeway-collectd`,
// and the merged trace must render the byte-identical characterization
// report to the same workloads collected offline -- the paper's
// "scattered logs are collected and synthesized" claim, across genuine
// process boundaries.
//
// The tool binaries are injected at configure time (CAUSEWAY_RECORD_BIN /
// CAUSEWAY_COLLECTD_BIN / CAUSEWAY_ANALYZE_BIN); every child is a plain
// fork+exec, so nothing in this gtest process (threads, runtimes, TSS)
// leaks into the monitored children.
#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

namespace {

std::string tmp(const std::string& name) {
  return ::testing::TempDir() + "cw_e2e_" + std::to_string(::getpid()) + "_" +
         name;
}

// fork+exec, return the child's exit status (-1 on spawn failure).
int run(const std::vector<std::string>& argv) {
  std::vector<char*> cargv;
  cargv.reserve(argv.size() + 1);
  for (const std::string& a : argv) {
    cargv.push_back(const_cast<char*>(a.c_str()));
  }
  cargv.push_back(nullptr);
  const pid_t pid = ::fork();
  if (pid < 0) return -1;
  if (pid == 0) {
    ::execv(cargv[0], cargv.data());
    ::_exit(127);
  }
  int status = 0;
  if (::waitpid(pid, &status, 0) != pid) return -1;
  return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
}

pid_t spawn(const std::vector<std::string>& argv) {
  std::vector<char*> cargv;
  cargv.reserve(argv.size() + 1);
  for (const std::string& a : argv) {
    cargv.push_back(const_cast<char*>(a.c_str()));
  }
  cargv.push_back(nullptr);
  const pid_t pid = ::fork();
  if (pid == 0) {
    ::execv(cargv[0], cargv.data());
    ::_exit(127);
  }
  return pid;
}

int wait_exit(pid_t pid) {
  int status = 0;
  if (::waitpid(pid, &status, 0) != pid) return -1;
  return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return {std::istreambuf_iterator<char>(in),
          std::istreambuf_iterator<char>()};
}

// Wait for a daemon's --addr-file and return its first bound address.
// The file is written complete-then-flushed, so a fully written file ends
// in a newline; anything else is a partial write still in progress.
std::string wait_addr(const std::string& path) {
  for (int i = 0; i < 1000; ++i) {
    const std::string contents = slurp(path);
    if (!contents.empty() && contents.back() == '\n') {
      return contents.substr(0, contents.find('\n'));
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  return {};
}

std::vector<std::string> record_args(const std::string& seed) {
  return {CAUSEWAY_RECORD_BIN,  "--workload=synthetic", "--mode=causality",
          "--transactions=5",   "--seed=" + seed};
}

TEST(TransportE2eTest, TwoPublishersMergeToOfflineIdenticalReport) {
  const std::string sock = tmp("collect.sock");
  const std::string merged = tmp("merged.cwt");
  const std::string ref_a = tmp("ref_a.cwt");
  const std::string ref_b = tmp("ref_b.cwt");
  const std::string ref_txt = tmp("ref.txt");
  const std::string got_txt = tmp("got.txt");

  // Offline reference: each workload recorded to its own trace by its own
  // process, both analyzed together.  Causality mode keeps the records
  // value-free, so reports compare exactly across runs.
  {
    auto a = record_args("77");
    a.push_back("--out=" + ref_a);
    ASSERT_EQ(run(a), 0);
    auto b = record_args("78");
    b.push_back("--out=" + ref_b);
    ASSERT_EQ(run(b), 0);
    ASSERT_EQ(run({CAUSEWAY_ANALYZE_BIN, ref_a, ref_b, "--report", "-o",
                   ref_txt}),
              0);
  }

  // Transport run: daemon first (listening before start() returns), then
  // two concurrent publisher processes of the same two workloads.
  const pid_t daemon = spawn({CAUSEWAY_COLLECTD_BIN, "--listen=" + sock,
                              "--out=" + merged, "--expect=2", "--quiet"});
  ASSERT_GT(daemon, 0);
  auto a = record_args("77");
  a.push_back("--publish=" + sock);
  a.push_back("--publish-name=proc-a");
  auto b = record_args("78");
  b.push_back("--publish=" + sock);
  b.push_back("--publish-name=proc-b");
  const pid_t pub_a = spawn(a);
  const pid_t pub_b = spawn(b);
  ASSERT_GT(pub_a, 0);
  ASSERT_GT(pub_b, 0);
  EXPECT_EQ(wait_exit(pub_a), 0);
  EXPECT_EQ(wait_exit(pub_b), 0);
  ASSERT_EQ(wait_exit(daemon), 0);  // --expect=2: exits after both finish

  ASSERT_EQ(run({CAUSEWAY_ANALYZE_BIN, merged, "--report", "-o", got_txt}),
            0);

  const std::string reference = slurp(ref_txt);
  const std::string transported = slurp(got_txt);
  ASSERT_FALSE(reference.empty());
  EXPECT_EQ(transported, reference)
      << "merged multi-process report diverged from offline collection";

  for (const std::string& p :
       {sock, merged, ref_a, ref_b, ref_txt, got_txt}) {
    ::unlink(p.c_str());
  }
}

// The tiered fabric, across real process boundaries and real TCP: two
// publishers feed a leaf causeway-collectd over TCP loopback, the leaf
// relays everything to a root causeway-collectd over a second TCP hop, and
// the root's merged trace must render the byte-identical report to the
// same workloads collected offline.  Ephemeral ports throughout; each
// daemon's bound address is discovered through --addr-file, so the chain
// never races a bind and never hardcodes a port.
TEST(TransportE2eTest, TieredRelayOverTcpMatchesOfflineReport) {
  const std::string root_addrs = tmp("tier_root.addr");
  const std::string leaf_addrs = tmp("tier_leaf.addr");
  const std::string merged = tmp("tier_merged.cwt");
  const std::string ref_a = tmp("tier_ref_a.cwt");
  const std::string ref_b = tmp("tier_ref_b.cwt");
  const std::string ref_txt = tmp("tier_ref.txt");
  const std::string got_txt = tmp("tier_got.txt");

  {
    auto a = record_args("57");
    a.push_back("--out=" + ref_a);
    ASSERT_EQ(run(a), 0);
    auto b = record_args("58");
    b.push_back("--out=" + ref_b);
    ASSERT_EQ(run(b), 0);
    ASSERT_EQ(run({CAUSEWAY_ANALYZE_BIN, ref_a, ref_b, "--report", "-o",
                   ref_txt}),
              0);
  }

  // Root tier: merges what the relay forwards; exits when both origin
  // uplinks have come and gone.
  const pid_t root =
      spawn({CAUSEWAY_COLLECTD_BIN, "--listen=tcp:127.0.0.1:0",
             "--addr-file=" + root_addrs, "--out=" + merged, "--expect=2",
             "--quiet"});
  ASSERT_GT(root, 0);
  const std::string root_addr = wait_addr(root_addrs);
  ASSERT_FALSE(root_addr.empty()) << "root daemon never published its address";

  // Leaf tier: pure relay, exits when both publishers have finished.
  const pid_t leaf =
      spawn({CAUSEWAY_COLLECTD_BIN, "--listen=tcp:127.0.0.1:0",
             "--addr-file=" + leaf_addrs, "--relay=" + root_addr,
             "--expect=2", "--quiet"});
  ASSERT_GT(leaf, 0);
  const std::string leaf_addr = wait_addr(leaf_addrs);
  ASSERT_FALSE(leaf_addr.empty()) << "leaf daemon never published its address";

  auto a = record_args("57");
  a.push_back("--publish=" + leaf_addr);
  a.push_back("--publish-name=proc-a");
  auto b = record_args("58");
  b.push_back("--publish=" + leaf_addr);
  b.push_back("--publish-name=proc-b");
  const pid_t pub_a = spawn(a);
  const pid_t pub_b = spawn(b);
  ASSERT_GT(pub_a, 0);
  ASSERT_GT(pub_b, 0);
  EXPECT_EQ(wait_exit(pub_a), 0);
  EXPECT_EQ(wait_exit(pub_b), 0);
  ASSERT_EQ(wait_exit(leaf), 0);  // flushes its relay uplinks on the way out
  ASSERT_EQ(wait_exit(root), 0);

  ASSERT_EQ(run({CAUSEWAY_ANALYZE_BIN, merged, "--report", "-o", got_txt}),
            0);
  const std::string reference = slurp(ref_txt);
  const std::string transported = slurp(got_txt);
  ASSERT_FALSE(reference.empty());
  EXPECT_EQ(transported, reference)
      << "tiered TCP relay report diverged from offline collection";

  for (const std::string& p : {root_addrs, leaf_addrs, merged, ref_a, ref_b,
                               ref_txt, got_txt}) {
    ::unlink(p.c_str());
  }
}

// The adaptive control plane at rest costs nothing: a daemon running
// --policy=auto with an unreachable burst threshold still completes the
// version-2 handshake, sends its hello directive, and receives CWST acks
// -- yet the live report it renders is byte-identical to the same workload
// collected offline with no control plane at all.  This is the ctest pin
// on "sampling 1:1 + no directives => unchanged output".
TEST(TransportE2eTest, ControlPlaneIdleKeepsReportByteIdentical) {
  const std::string sock = tmp("idlectl.sock");
  const std::string ref_trace = tmp("idlectl_ref.cwt");
  const std::string ref_txt = tmp("idlectl_ref.txt");
  const std::string got_txt = tmp("idlectl_got.txt");

  {
    auto a = record_args("84");
    a.push_back("--out=" + ref_trace);
    ASSERT_EQ(run(a), 0);
    ASSERT_EQ(
        run({CAUSEWAY_ANALYZE_BIN, ref_trace, "--report", "-o", ref_txt}),
        0);
  }

  const pid_t daemon = spawn({CAUSEWAY_COLLECTD_BIN, "--listen=" + sock,
                              "--report=" + got_txt, "--policy=auto",
                              "--policy-burst=1000000", "--expect=1",
                              "--quiet"});
  ASSERT_GT(daemon, 0);
  auto a = record_args("84");
  a.push_back("--publish=" + sock);
  a.push_back("--publish-name=idle-ctl");
  ASSERT_EQ(run(a), 0);
  ASSERT_EQ(wait_exit(daemon), 0);

  const std::string reference = slurp(ref_txt);
  const std::string live = slurp(got_txt);
  ASSERT_FALSE(reference.empty());
  EXPECT_EQ(live, reference)
      << "idle control plane perturbed the live report";

  for (const std::string& p : {sock, ref_trace, ref_txt, got_txt}) {
    ::unlink(p.c_str());
  }
}

// The merged trace is a first-class .cwt: --reindex leaves it untouched,
// and chopping its tail (a "crashed daemon" artifact) reindexes back to a
// readable clean prefix.
TEST(TransportE2eTest, MergedTraceSurvivesCrashAndReindex) {
  const std::string sock = tmp("crash.sock");
  const std::string merged = tmp("crash_merged.cwt");

  const pid_t daemon = spawn({CAUSEWAY_COLLECTD_BIN, "--listen=" + sock,
                              "--out=" + merged, "--expect=1", "--quiet"});
  ASSERT_GT(daemon, 0);
  auto a = record_args("91");
  a.push_back("--publish=" + sock);
  a.push_back("--publish-name=solo");
  ASSERT_EQ(run(a), 0);
  ASSERT_EQ(wait_exit(daemon), 0);

  // Intact file: reindex is a no-op.
  ASSERT_EQ(run({CAUSEWAY_ANALYZE_BIN, merged, "--reindex"}), 0);

  // Simulate a crash: drop the trailer plus a few segment bytes.
  std::string bytes = slurp(merged);
  ASSERT_GT(bytes.size(), 64u);
  bytes.resize(bytes.size() - 48);
  {
    std::ofstream out(merged, std::ios::binary | std::ios::trunc);
    out << bytes;
  }
  ASSERT_EQ(run({CAUSEWAY_ANALYZE_BIN, merged, "--reindex"}), 0);
  // The reindexed clean prefix analyzes cleanly.
  ASSERT_EQ(run({CAUSEWAY_ANALYZE_BIN, merged, "--summary", "-o",
                 tmp("crash_summary.txt")}),
            0);
  ::unlink(merged.c_str());
  ::unlink(tmp("crash_summary.txt").c_str());
  ::unlink(sock.c_str());
}

}  // namespace
