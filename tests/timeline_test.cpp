#include "analysis/timeline.h"

#include <gtest/gtest.h>

#include "analysis_test_util.h"

namespace causeway::analysis {
namespace {

using monitor::CallKind;
using monitor::EventKind;
using testutil::Scribe;

struct TimelineFixture {
  LogDatabase db;
  Dscg dscg;
  std::vector<TimelineEntry> entries;

  TimelineFixture() {
    Scribe s;
    // F served on procB/thread 2, window [110, 400]; its child G on
    // procC/thread 3, window [210, 300].
    s.emit(EventKind::kStubStart, CallKind::kSync, "I", "F", 0, 1);
    s.emit(EventKind::kSkelStart, CallKind::kSync, "I", "F", 100, 110,
           "procB", 2);
    s.emit(EventKind::kStubStart, CallKind::kSync, "I", "G", 150, 151,
           "procB", 2);
    s.emit(EventKind::kSkelStart, CallKind::kSync, "I", "G", 200, 210,
           "procC", 3);
    s.emit(EventKind::kSkelEnd, CallKind::kSync, "I", "G", 300, 301,
           "procC", 3);
    s.emit(EventKind::kStubEnd, CallKind::kSync, "I", "G", 350, 351,
           "procB", 2);
    s.emit(EventKind::kSkelEnd, CallKind::kSync, "I", "F", 400, 401,
           "procB", 2);
    s.emit(EventKind::kStubEnd, CallKind::kSync, "I", "F", 500, 501);
    db.ingest_records(s.records());
    dscg = Dscg::build(db);
    entries = build_timeline(dscg);
  }
};

TEST(Timeline, ExtractsServerSideWindows) {
  TimelineFixture f;
  ASSERT_EQ(f.entries.size(), 2u);
  // Sorted by (process, thread, start): procB before procC.
  EXPECT_EQ(f.entries[0].process, "procB");
  EXPECT_EQ(f.entries[0].function_name, "F");
  EXPECT_EQ(f.entries[0].start, 110);
  EXPECT_EQ(f.entries[0].end, 400);
  EXPECT_EQ(f.entries[0].span(), 290);
  EXPECT_EQ(f.entries[1].process, "procC");
  EXPECT_EQ(f.entries[1].thread, 3u);
  EXPECT_EQ(f.entries[1].function_name, "G");
  // Both carry the one causal chain -- what OVATION cannot provide.
  EXPECT_EQ(f.entries[0].chain, f.entries[1].chain);
}

TEST(Timeline, StubOnlyNodesAreExcluded) {
  Scribe s;
  s.emit(EventKind::kStubStart, CallKind::kSync, "I", "F", 0, 1);
  s.emit(EventKind::kStubEnd, CallKind::kSync, "I", "F", 10, 11);
  LogDatabase db;
  db.ingest_records(s.records());
  Dscg dscg = Dscg::build(db);
  EXPECT_TRUE(build_timeline(dscg).empty());
}

TEST(Timeline, CpuModeRecordsAreExcluded) {
  Scribe s(monitor::ProbeMode::kCpu);
  Nanos t[8] = {0, 1, 2, 3, 4, 5, 6, 7};
  s.leaf_sync("I", "F", t);
  LogDatabase db;
  db.ingest_records(s.records());
  Dscg dscg = Dscg::build(db);
  EXPECT_TRUE(build_timeline(dscg).empty());
}

TEST(Timeline, TextGroupsByLane) {
  TimelineFixture f;
  const std::string text = timeline_to_text(f.entries);
  EXPECT_NE(text.find("== procB / thread 2 =="), std::string::npos);
  EXPECT_NE(text.find("== procC / thread 3 =="), std::string::npos);
  EXPECT_NE(text.find("I::F [sync]"), std::string::npos);
  EXPECT_LT(text.find("procB"), text.find("procC"));
}

TEST(Timeline, CsvHasHeaderAndOneRowPerEntry) {
  TimelineFixture f;
  const std::string csv = timeline_to_csv(f.entries);
  EXPECT_EQ(csv.rfind("process,thread,", 0), 0u);
  std::size_t rows = 0, pos = 0;
  while ((pos = csv.find('\n', pos)) != std::string::npos) {
    ++rows;
    ++pos;
  }
  EXPECT_EQ(rows, 1u + f.entries.size());
  EXPECT_NE(csv.find("procC,3,I,G,sync,210,300,"), std::string::npos);
}

TEST(Timeline, LanesAreTimeOrdered) {
  // Two sibling calls served by the same thread must appear in time order.
  Scribe s;
  Nanos t1[8] = {0, 1, 10, 11, 40, 41, 50, 51};
  s.leaf_sync("I", "first", t1, "procA", "procB");
  Nanos t2[8] = {60, 61, 70, 71, 90, 91, 100, 101};
  s.leaf_sync("I", "second", t2, "procA", "procB");
  LogDatabase db;
  db.ingest_records(s.records());
  Dscg dscg = Dscg::build(db);
  const auto entries = build_timeline(dscg);
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_EQ(entries[0].function_name, "first");
  EXPECT_EQ(entries[1].function_name, "second");
  EXPECT_LE(entries[0].end, entries[1].start);
}

}  // namespace
}  // namespace causeway::analysis
