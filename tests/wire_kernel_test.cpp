// Differential tests for the batch varint kernels (common/wire.h): every
// available kernel -- scalar reference, SWAR, SSE, AVX2, NEON -- must
// decode identical bytes to identical values, leave the cursor at the same
// position, and raise the same WireError text at the same input, over
// randomized columns and adversarial encodings (overlong varints,
// max-length values, truncated tails).  The scalar loop is the oracle; the
// strict single-value decoder (WireCursor::read_varint) is a second oracle
// the column paths must agree with byte for byte.
#include <cstdint>
#include <random>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/wire.h"

namespace causeway {
namespace {

// Restores the dispatch a test pinned, so test order never leaks kernels.
class KernelGuard {
 public:
  KernelGuard() : previous_(active_varint_kernel()) {}
  ~KernelGuard() { force_varint_kernel(previous_); }

 private:
  VarintKernel previous_;
};

std::vector<VarintKernel> available_kernels() {
  std::vector<VarintKernel> out;
  for (VarintKernel k :
       {VarintKernel::kScalar, VarintKernel::kSwar, VarintKernel::kSse,
        VarintKernel::kAvx2, VarintKernel::kNeon}) {
    if (varint_kernel_available(k)) out.push_back(k);
  }
  return out;
}

// Decodes `n` varints from `bytes` under `kernel`, returning either the
// values + final cursor position or the thrown error text.
struct ColumnOutcome {
  std::vector<std::uint64_t> values;
  std::size_t position{0};
  bool threw{false};
  std::string error;

  bool operator==(const ColumnOutcome&) const = default;
};

ColumnOutcome decode_column(const std::vector<std::uint8_t>& bytes,
                            std::size_t n, VarintKernel kernel) {
  KernelGuard guard;
  force_varint_kernel(kernel);
  ColumnOutcome out;
  out.values.resize(n);
  WireCursor cursor(bytes.data(), bytes.size());
  try {
    cursor.read_varint_column(out.values.data(), n);
    out.position = cursor.position();
  } catch (const WireError& e) {
    out.threw = true;
    out.error = e.what();
    out.values.clear();
    out.position = 0;
  }
  return out;
}

// The oracle: n strict single-value decodes, the path that predates the
// batch kernels.
ColumnOutcome decode_scalar_loop(const std::vector<std::uint8_t>& bytes,
                                 std::size_t n) {
  ColumnOutcome out;
  out.values.resize(n);
  WireCursor cursor(bytes.data(), bytes.size());
  try {
    for (std::size_t i = 0; i < n; ++i) out.values[i] = cursor.read_varint();
    out.position = cursor.position();
  } catch (const WireError& e) {
    out.threw = true;
    out.error = e.what();
    out.values.clear();
    out.position = 0;
  }
  return out;
}

void expect_all_kernels_match(const std::vector<std::uint8_t>& bytes,
                              std::size_t n, const char* label) {
  const ColumnOutcome oracle = decode_scalar_loop(bytes, n);
  for (VarintKernel kernel : available_kernels()) {
    const ColumnOutcome got = decode_column(bytes, n, kernel);
    EXPECT_EQ(got, oracle) << label << " under kernel "
                           << std::string(to_string(kernel));
  }
}

TEST(WireKernel, ScalarAndSwarAlwaysAvailable) {
  EXPECT_TRUE(varint_kernel_available(VarintKernel::kScalar));
  EXPECT_TRUE(varint_kernel_available(VarintKernel::kSwar));
}

TEST(WireKernel, ForceUnavailableKernelThrows) {
  for (VarintKernel k : {VarintKernel::kSse, VarintKernel::kAvx2,
                         VarintKernel::kNeon}) {
    if (!varint_kernel_available(k)) {
      EXPECT_THROW(force_varint_kernel(k), WireError);
    }
  }
}

TEST(WireKernel, ForcePinsActiveKernel) {
  KernelGuard guard;
  for (VarintKernel k : available_kernels()) {
    force_varint_kernel(k);
    EXPECT_EQ(active_varint_kernel(), k);
  }
}

TEST(WireKernel, RandomizedColumnsMatchScalarOracle) {
  std::mt19937_64 rng(20260807);
  for (int trial = 0; trial < 300; ++trial) {
    const std::size_t n = 1 + rng() % 600;
    std::vector<std::uint64_t> values(n);
    for (auto& v : values) {
      // Mix magnitudes so runs of 1-byte varints (the fast path), long
      // encodings, and 10-byte maxima all appear within one column.
      switch (rng() % 8) {
        case 0: v = rng() % 2; break;
        case 1: v = rng() % 128; break;
        case 2: v = rng() % 16384; break;
        case 3: v = rng() % (1ull << 21); break;
        case 4: v = rng() % (1ull << 35); break;
        case 5: v = rng() % (1ull << 56); break;
        case 6: v = rng(); break;
        default: v = ~0ull; break;
      }
    }
    WireBuffer buffer;
    for (std::uint64_t v : values) buffer.write_varint(v);
    const std::vector<std::uint8_t>& bytes = buffer.bytes();

    for (VarintKernel kernel : available_kernels()) {
      const ColumnOutcome got = decode_column(bytes, n, kernel);
      ASSERT_FALSE(got.threw)
          << "trial " << trial << " kernel " << std::string(to_string(kernel))
          << ": " << got.error;
      EXPECT_EQ(got.values, values) << "trial " << trial << " kernel "
                                    << std::string(to_string(kernel));
      EXPECT_EQ(got.position, bytes.size());
    }
  }
}

TEST(WireKernel, SingleByteRunsDecodeExactly) {
  // Long all-short columns exercise the vector fast paths start to finish.
  std::vector<std::uint64_t> values(1024);
  for (std::size_t i = 0; i < values.size(); ++i) values[i] = i % 128;
  WireBuffer buffer;
  for (std::uint64_t v : values) buffer.write_varint(v);
  for (VarintKernel kernel : available_kernels()) {
    const ColumnOutcome got = decode_column(buffer.bytes(), values.size(),
                                            kernel);
    ASSERT_FALSE(got.threw);
    EXPECT_EQ(got.values, values);
  }
}

TEST(WireKernel, MaxLengthValuesRoundTrip) {
  // Every 10-byte encoding boundary: 2^63, 2^63+1, UINT64_MAX, and the
  // 9-byte maxima around 2^56.
  const std::vector<std::uint64_t> values = {
      (1ull << 63), (1ull << 63) + 1, ~0ull, (1ull << 56) - 1, (1ull << 56),
      (1ull << 62), 0, 1, 127, 128};
  WireBuffer buffer;
  for (std::uint64_t v : values) buffer.write_varint(v);
  expect_all_kernels_match(buffer.bytes(), values.size(), "max-length");
}

TEST(WireKernel, OverlongElevenByteVarintRejectedIdentically) {
  // Eleven continuation bytes: more than any 64-bit value can need.
  std::vector<std::uint8_t> bytes(11, 0xff);
  bytes.push_back(0x00);
  expect_all_kernels_match(bytes, 1, "11-byte overlong");
  const ColumnOutcome out =
      decode_column(bytes, 1, VarintKernel::kScalar);
  ASSERT_TRUE(out.threw);
  EXPECT_EQ(out.error, "varint overlong");
}

TEST(WireKernel, TenthByteValueBitsRejectedIdentically) {
  // Ten bytes whose last carries bits beyond the 64th: overlong, even
  // though the length is legal.
  std::vector<std::uint8_t> bytes(9, 0x80);
  bytes.push_back(0x02);  // shift 63, byte > 1
  expect_all_kernels_match(bytes, 1, "10th-byte overflow");
  const ColumnOutcome out = decode_column(bytes, 1, VarintKernel::kScalar);
  ASSERT_TRUE(out.threw);
  EXPECT_EQ(out.error, "varint overlong");
}

TEST(WireKernel, TruncatedTailRejectedIdentically) {
  // A well-formed prefix, then a varint whose continuation bit runs off
  // the end of the input.
  WireBuffer buffer;
  for (std::uint64_t v : {5ull, 300ull, 1ull << 40}) buffer.write_varint(v);
  std::vector<std::uint8_t> bytes = buffer.bytes();
  bytes.push_back(0x80);
  bytes.push_back(0x80);
  expect_all_kernels_match(bytes, 4, "truncated tail");
  const ColumnOutcome out = decode_column(bytes, 4, VarintKernel::kScalar);
  ASSERT_TRUE(out.threw);
  EXPECT_EQ(out.error, "wire underflow");
}

TEST(WireKernel, EmptyInputUnderflowsIdentically) {
  const std::vector<std::uint8_t> empty;
  expect_all_kernels_match(empty, 1, "empty input");
}

TEST(WireKernel, AdversarialTruncationsAtEveryLength) {
  // For every encoded length 1..10, truncate one byte short and require
  // identical underflow behavior from every kernel; also embed the
  // truncation after a page of short values so vector paths are mid-block
  // when they hit it.
  for (unsigned len = 1; len <= 10; ++len) {
    std::vector<std::uint8_t> bytes;
    for (int i = 0; i < 40; ++i) bytes.push_back(0x01);
    for (unsigned b = 0; b + 1 < len; ++b) bytes.push_back(0x80);
    // (len-1 continuation bytes, final byte missing)
    expect_all_kernels_match(bytes, 41,
                             "truncation mid-column");
  }
}

TEST(WireKernel, ZigZagColumnMatchesScalar) {
  std::mt19937_64 rng(7);
  for (int trial = 0; trial < 100; ++trial) {
    const std::size_t n = 1 + rng() % 400;
    std::vector<std::int64_t> values(n);
    for (auto& v : values) {
      const std::uint64_t raw = rng();
      switch (rng() % 5) {
        case 0: v = static_cast<std::int64_t>(raw % 7) - 3; break;
        case 1: v = static_cast<std::int64_t>(raw % 100000) - 50000; break;
        case 2: v = static_cast<std::int64_t>(raw); break;
        case 3: v = INT64_MIN; break;
        default: v = INT64_MAX; break;
      }
    }
    WireBuffer buffer;
    for (std::int64_t v : values) buffer.write_svarint(v);

    for (VarintKernel kernel : available_kernels()) {
      KernelGuard guard;
      force_varint_kernel(kernel);
      WireCursor cursor(buffer.bytes().data(), buffer.bytes().size());
      std::vector<std::int64_t> got(n);
      cursor.read_svarint_column(got.data(), n);
      EXPECT_EQ(got, values) << "trial " << trial << " kernel "
                             << std::string(to_string(kernel));
      EXPECT_EQ(cursor.remaining(), 0u);
    }
  }
}

TEST(WireKernel, ColumnMatchesSingleValueReadsMidStream) {
  // A column decode must leave the cursor exactly where n single reads
  // would, so mixed column/scalar parsing (the v4 segment decoder) stays
  // aligned.
  WireBuffer buffer;
  const std::vector<std::uint64_t> values = {1, 200, 1ull << 30, 7, ~0ull,
                                             0, 65, 1ull << 20};
  for (std::uint64_t v : values) buffer.write_varint(v);
  buffer.write_u32(0xdeadbeef);
  for (VarintKernel kernel : available_kernels()) {
    KernelGuard guard;
    force_varint_kernel(kernel);
    WireCursor cursor(buffer);
    std::vector<std::uint64_t> got(values.size());
    cursor.read_varint_column(got.data(), got.size());
    EXPECT_EQ(got, values);
    EXPECT_EQ(cursor.read_u32(), 0xdeadbeefu)
        << "kernel " << std::string(to_string(kernel));
  }
}

// ---------------------------------------------------------------------------
// Encode side.  LEB128 is canonical, so the contract is stronger than
// decode's: every kernel must emit *byte-identical* output, which the
// single-value write_varint loop (the path that predates the batch
// kernels) defines.

std::vector<std::uint8_t> encode_column(const std::vector<std::uint64_t>& v,
                                        VarintKernel kernel) {
  KernelGuard guard;
  force_varint_kernel(kernel);
  WireBuffer buffer;
  buffer.write_varint_column(v.data(), v.size());
  return buffer.bytes();
}

std::vector<std::uint64_t> random_column(std::mt19937_64& rng,
                                         std::size_t n) {
  std::vector<std::uint64_t> values(n);
  for (auto& v : values) {
    switch (rng() % 8) {
      case 0: v = rng() % 2; break;
      case 1: v = rng() % 128; break;
      case 2: v = rng() % 16384; break;
      case 3: v = rng() % (1ull << 21); break;
      case 4: v = rng() % (1ull << 35); break;
      case 5: v = rng() % (1ull << 56); break;
      case 6: v = rng(); break;
      default: v = ~0ull; break;
    }
  }
  return values;
}

TEST(WireKernel, EncodeColumnBytesIdenticalAcrossKernels) {
  std::mt19937_64 rng(20260808);
  for (int trial = 0; trial < 200; ++trial) {
    const std::size_t n = rng() % 700;  // includes n == 0
    const std::vector<std::uint64_t> values = random_column(rng, n);

    // Reference: the scalar single-value writer.
    WireBuffer reference;
    for (std::uint64_t v : values) reference.write_varint(v);

    for (VarintKernel kernel : available_kernels()) {
      EXPECT_EQ(encode_column(values, kernel), reference.bytes())
          << "trial " << trial << " kernel "
          << std::string(to_string(kernel));
    }
  }
}

TEST(WireKernel, EncodeDecodeRoundTripEveryKernelPair) {
  // Encode with kernel A, decode with kernel B, for every available pair.
  std::mt19937_64 rng(31337);
  for (int trial = 0; trial < 40; ++trial) {
    const std::size_t n = 1 + rng() % 500;
    const std::vector<std::uint64_t> values = random_column(rng, n);
    for (VarintKernel enc : available_kernels()) {
      const std::vector<std::uint8_t> bytes = encode_column(values, enc);
      for (VarintKernel dec : available_kernels()) {
        const ColumnOutcome got = decode_column(bytes, n, dec);
        ASSERT_FALSE(got.threw)
            << "enc " << std::string(to_string(enc)) << " dec "
            << std::string(to_string(dec)) << ": " << got.error;
        EXPECT_EQ(got.values, values)
            << "trial " << trial << " enc " << std::string(to_string(enc))
            << " dec " << std::string(to_string(dec));
        EXPECT_EQ(got.position, bytes.size());
      }
    }
  }
}

TEST(WireKernel, SvarintColumnExtremesRoundTripEveryKernelPair) {
  std::vector<std::int64_t> values = {INT64_MIN, INT64_MAX, 0, -1, 1,
                                      INT64_MIN + 1, INT64_MAX - 1, -128,
                                      127, -(1ll << 40), (1ll << 40)};
  // Pad to cross the vector block width with extremes on both edges.
  for (int i = 0; i < 40; ++i) values.push_back(i % 2 ? INT64_MIN : i);
  for (VarintKernel enc : available_kernels()) {
    KernelGuard guard;
    force_varint_kernel(enc);
    WireBuffer buffer;
    buffer.write_svarint_column(values.data(), values.size());

    // Reference bytes from the single-value writer.
    WireBuffer reference;
    for (std::int64_t v : values) reference.write_svarint(v);
    EXPECT_EQ(buffer.bytes(), reference.bytes())
        << "enc " << std::string(to_string(enc));

    for (VarintKernel dec : available_kernels()) {
      force_varint_kernel(dec);
      WireCursor cursor(buffer);
      std::vector<std::int64_t> got(values.size());
      cursor.read_svarint_column(got.data(), got.size());
      EXPECT_EQ(got, values) << "enc " << std::string(to_string(enc))
                             << " dec " << std::string(to_string(dec));
      EXPECT_EQ(cursor.remaining(), 0u);
    }
  }
}

TEST(WireKernel, WriteColumnAppendsMidStream) {
  // Column writes must compose with scalar writes exactly like a loop of
  // write_varint calls would (the v4 segment encoder interleaves both).
  const std::vector<std::uint64_t> values = {1, 200, 1ull << 30, 7, ~0ull,
                                             0, 65, 1ull << 20, 3};
  for (VarintKernel kernel : available_kernels()) {
    KernelGuard guard;
    force_varint_kernel(kernel);
    WireBuffer buffer;
    buffer.write_u32(0xdeadbeef);
    buffer.write_varint_column(values.data(), values.size());
    buffer.write_u32(0xfeedface);

    WireBuffer reference;
    reference.write_u32(0xdeadbeef);
    for (std::uint64_t v : values) reference.write_varint(v);
    reference.write_u32(0xfeedface);
    EXPECT_EQ(buffer.bytes(), reference.bytes())
        << "kernel " << std::string(to_string(kernel));
  }
}

// ---------------------------------------------------------------------------
// Transform passes (zig-zag, delta, prefix-sum) over whole columns: the
// dispatched implementation must match a freshly-written scalar reference
// under every kernel pin, including the INT64 edge values.

TEST(WireKernel, ZigZagEncodeColumnMatchesScalarReference) {
  std::mt19937_64 rng(99);
  for (int trial = 0; trial < 60; ++trial) {
    const std::size_t n = rng() % 300;
    std::vector<std::uint64_t> raw(n);
    for (auto& v : raw) v = rng();
    if (n > 2) {
      raw[0] = static_cast<std::uint64_t>(INT64_MIN);
      raw[1] = static_cast<std::uint64_t>(INT64_MAX);
    }
    std::vector<std::uint64_t> expected(raw);
    for (auto& v : expected) {
      v = zigzag_encode(static_cast<std::int64_t>(v));
    }
    for (VarintKernel kernel : available_kernels()) {
      KernelGuard guard;
      force_varint_kernel(kernel);
      std::vector<std::uint64_t> got(raw);
      zigzag_encode_column(got.data(), got.size());
      EXPECT_EQ(got, expected) << "trial " << trial << " kernel "
                               << std::string(to_string(kernel));
    }
  }
}

TEST(WireKernel, ZigZagDecodeColumnInvertsEncode) {
  std::mt19937_64 rng(100);
  for (int trial = 0; trial < 60; ++trial) {
    const std::size_t n = rng() % 300;
    std::vector<std::int64_t> original(n);
    for (auto& v : original) v = static_cast<std::int64_t>(rng());
    if (n > 2) {
      original[0] = INT64_MIN;
      original[1] = INT64_MAX;
    }
    for (VarintKernel kernel : available_kernels()) {
      KernelGuard guard;
      force_varint_kernel(kernel);
      std::vector<std::uint64_t> encoded(n);
      for (std::size_t i = 0; i < n; ++i) {
        encoded[i] = zigzag_encode(original[i]);
      }
      auto* as_signed = reinterpret_cast<std::int64_t*>(encoded.data());
      zigzag_decode_column(as_signed, n);
      for (std::size_t i = 0; i < n; ++i) {
        ASSERT_EQ(as_signed[i], original[i])
            << "trial " << trial << " index " << i << " kernel "
            << std::string(to_string(kernel));
      }
    }
  }
}

TEST(WireKernel, DeltaEncodePrefixSumRoundTrip) {
  std::mt19937_64 rng(101);
  for (int trial = 0; trial < 60; ++trial) {
    const std::size_t n = rng() % 300;
    std::vector<std::uint64_t> original(n);
    for (auto& v : original) v = rng();
    for (VarintKernel kernel : available_kernels()) {
      KernelGuard guard;
      force_varint_kernel(kernel);

      // delta_encode_column must match the obvious backward scalar loop.
      std::vector<std::uint64_t> deltas(original);
      delta_encode_column(deltas.data(), deltas.size());
      std::vector<std::uint64_t> expected(original);
      for (std::size_t i = expected.size(); i-- > 1;) {
        expected[i] -= expected[i - 1];
      }
      EXPECT_EQ(deltas, expected) << "trial " << trial << " kernel "
                                  << std::string(to_string(kernel));

      // prefix_sum_column over the deltas restores the original column
      // (all arithmetic is wrapping uint64, so this holds for any input).
      prefix_sum_column(reinterpret_cast<std::int64_t*>(deltas.data()),
                        deltas.size());
      EXPECT_EQ(deltas, original) << "trial " << trial << " kernel "
                                  << std::string(to_string(kernel));
    }
  }
}

TEST(WireKernel, TransformPassesHandleEmptyAndSingle) {
  for (VarintKernel kernel : available_kernels()) {
    KernelGuard guard;
    force_varint_kernel(kernel);
    zigzag_encode_column(nullptr, 0);
    zigzag_decode_column(nullptr, 0);
    delta_encode_column(nullptr, 0);
    prefix_sum_column(nullptr, 0);
    std::uint64_t one = static_cast<std::uint64_t>(-17);
    zigzag_encode_column(&one, 1);
    EXPECT_EQ(one, zigzag_encode(std::int64_t{-17}));
    std::int64_t sone = 42;
    prefix_sum_column(&sone, 1);
    EXPECT_EQ(sone, 42);
    std::uint64_t done = 9;
    delta_encode_column(&done, 1);
    EXPECT_EQ(done, 9u);
  }
}

TEST(WireKernel, KernelNamesRoundTrip) {
  EXPECT_EQ(to_string(VarintKernel::kScalar), "scalar");
  EXPECT_EQ(to_string(VarintKernel::kSwar), "swar");
  EXPECT_EQ(to_string(VarintKernel::kSse), "sse");
  EXPECT_EQ(to_string(VarintKernel::kAvx2), "avx2");
  EXPECT_EQ(to_string(VarintKernel::kNeon), "neon");
}

}  // namespace
}  // namespace causeway
