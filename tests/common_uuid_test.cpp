#include "common/ids.h"

#include <gtest/gtest.h>

#include <set>
#include <thread>
#include <vector>

namespace causeway {
namespace {

TEST(Uuid, DefaultIsNil) {
  Uuid u;
  EXPECT_TRUE(u.is_nil());
  EXPECT_EQ(u, Uuid{});
}

TEST(Uuid, GenerateIsNeverNil) {
  for (int i = 0; i < 1000; ++i) {
    EXPECT_FALSE(Uuid::generate().is_nil());
  }
}

TEST(Uuid, GenerateIsUnique) {
  std::set<Uuid> seen;
  for (int i = 0; i < 10000; ++i) {
    EXPECT_TRUE(seen.insert(Uuid::generate()).second);
  }
}

TEST(Uuid, SeedMakesStreamDeterministic) {
  set_uuid_seed(1234);
  std::vector<Uuid> first;
  for (int i = 0; i < 16; ++i) first.push_back(Uuid::generate());
  set_uuid_seed(1234);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(first[i], Uuid::generate());
  set_uuid_seed(1235);
  EXPECT_NE(first[0], Uuid::generate());
}

TEST(Uuid, ToStringCanonicalForm) {
  const Uuid u{0x0123456789abcdefull, 0xfedcba9876543210ull};
  const std::string s = u.to_string();
  ASSERT_EQ(s.size(), 36u);
  EXPECT_EQ(s, "01234567-89ab-cdef-fedc-ba9876543210");
}

TEST(Uuid, ParseRoundTrip) {
  set_uuid_seed(99);
  for (int i = 0; i < 200; ++i) {
    const Uuid u = Uuid::generate();
    auto parsed = Uuid::parse(u.to_string());
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, u);
  }
}

TEST(Uuid, ParseAcceptsUpperCase) {
  auto parsed = Uuid::parse("01234567-89AB-CDEF-FEDC-BA9876543210");
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->hi, 0x0123456789abcdefull);
}

class UuidParseRejects : public ::testing::TestWithParam<const char*> {};

TEST_P(UuidParseRejects, Malformed) {
  EXPECT_FALSE(Uuid::parse(GetParam()).has_value());
}

INSTANTIATE_TEST_SUITE_P(
    Malformed, UuidParseRejects,
    ::testing::Values("", "0123", "01234567-89ab-cdef-fedc-ba987654321",
                      "01234567-89ab-cdef-fedc-ba98765432100",
                      "01234567x89ab-cdef-fedc-ba9876543210",
                      "0123456789ab-cdef-fedc-ba9876543210aa",
                      "01234567-89ab-cdef-fedc-ba987654321g",
                      "01234567_89ab_cdef_fedc_ba9876543210"));

TEST(Uuid, OrderingIsLexicographicOnWords) {
  const Uuid a{1, 5};
  const Uuid b{1, 6};
  const Uuid c{2, 0};
  EXPECT_LT(a, b);
  EXPECT_LT(b, c);
}

TEST(Uuid, HashSpreads) {
  std::set<std::size_t> hashes;
  std::hash<Uuid> h;
  for (int i = 0; i < 1000; ++i) hashes.insert(h(Uuid::generate()));
  EXPECT_GT(hashes.size(), 990u);
}

TEST(Uuid, ConcurrentGenerationStaysUnique) {
  constexpr int kThreads = 4;
  constexpr int kPerThread = 2000;
  std::vector<std::vector<Uuid>> results(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      results[static_cast<std::size_t>(t)].reserve(kPerThread);
      for (int i = 0; i < kPerThread; ++i) {
        results[static_cast<std::size_t>(t)].push_back(Uuid::generate());
      }
    });
  }
  for (auto& t : threads) t.join();
  std::set<Uuid> all;
  for (const auto& batch : results) {
    for (const Uuid& u : batch) EXPECT_TRUE(all.insert(u).second);
  }
  EXPECT_EQ(all.size(), static_cast<std::size_t>(kThreads * kPerThread));
}

}  // namespace
}  // namespace causeway
