#include "analysis/critical_path.h"

#include <gtest/gtest.h>

#include "analysis/latency.h"
#include "analysis_test_util.h"

namespace causeway::analysis {
namespace {

using monitor::CallKind;
using monitor::EventKind;
using testutil::Scribe;

// Builds F -> {G (slow), H (fast)}, G -> K.  Critical path: F, G, K.
struct PathFixture {
  LogDatabase db;
  Dscg dscg;

  PathFixture() {
    Scribe s;
    s.emit(EventKind::kStubStart, CallKind::kSync, "I", "F", 0, 10);
    s.emit(EventKind::kSkelStart, CallKind::kSync, "I", "F", 0, 0, "procB", 2);
    // G: client window 100..900 (L = 800).
    s.emit(EventKind::kStubStart, CallKind::kSync, "I", "G", 100, 100, "procB", 2);
    s.emit(EventKind::kSkelStart, CallKind::kSync, "I", "G", 0, 0, "procC", 3);
    //   K inside G: window 10..210 (L = 200).
    s.emit(EventKind::kStubStart, CallKind::kSync, "I", "K", 10, 10, "procC", 3);
    s.emit(EventKind::kSkelStart, CallKind::kSync, "I", "K", 0, 0, "procD", 4);
    s.emit(EventKind::kSkelEnd, CallKind::kSync, "I", "K", 0, 0, "procD", 4);
    s.emit(EventKind::kStubEnd, CallKind::kSync, "I", "K", 210, 210, "procC", 3);
    s.emit(EventKind::kSkelEnd, CallKind::kSync, "I", "G", 0, 0, "procC", 3);
    s.emit(EventKind::kStubEnd, CallKind::kSync, "I", "G", 900, 900, "procB", 2);
    // H: window 910..1010 (L = 100).
    s.emit(EventKind::kStubStart, CallKind::kSync, "I", "H", 910, 910, "procB", 2);
    s.emit(EventKind::kSkelStart, CallKind::kSync, "I", "H", 0, 0, "procE", 5);
    s.emit(EventKind::kSkelEnd, CallKind::kSync, "I", "H", 0, 0, "procE", 5);
    s.emit(EventKind::kStubEnd, CallKind::kSync, "I", "H", 1010, 1010, "procB", 2);
    s.emit(EventKind::kSkelEnd, CallKind::kSync, "I", "F", 0, 0, "procB", 2);
    s.emit(EventKind::kStubEnd, CallKind::kSync, "I", "F", 1100, 1100);
    db.ingest_records(s.records());
    dscg = Dscg::build(db);
    annotate_latency(dscg);
  }
};

TEST(CriticalPath, FollowsDominantChild) {
  PathFixture f;
  const auto paths = critical_paths(f.dscg);
  ASSERT_EQ(paths.size(), 1u);
  const CriticalPath& path = paths[0];
  ASSERT_EQ(path.steps.size(), 3u);
  EXPECT_EQ(path.steps[0].node->function_name, "F");
  EXPECT_EQ(path.steps[1].node->function_name, "G");  // not H
  EXPECT_EQ(path.steps[2].node->function_name, "K");

  // L(F) = 1100 - 10 = 1090; L(G) = 800; L(K) = 200.
  EXPECT_EQ(path.total(), 1090);
  EXPECT_EQ(path.steps[0].exclusive, 1090 - 800);
  EXPECT_EQ(path.steps[1].exclusive, 800 - 200);
  EXPECT_EQ(path.steps[2].exclusive, 200);

  // G carries the largest exclusive share (600).
  const CriticalStep* hot = path.dominant();
  ASSERT_NE(hot, nullptr);
  EXPECT_EQ(hot->node->function_name, "G");
}

TEST(CriticalPath, ExclusiveSumsToTotal) {
  PathFixture f;
  const auto paths = critical_paths(f.dscg);
  Nanos sum = 0;
  for (const auto& step : paths[0].steps) sum += step.exclusive;
  EXPECT_EQ(sum, paths[0].total());
}

TEST(CriticalPath, OnewayChildrenNeverBoundTheCaller) {
  Scribe s;
  s.emit(EventKind::kStubStart, CallKind::kSync, "I", "F", 0, 0);
  s.emit(EventKind::kSkelStart, CallKind::kSync, "I", "F", 0, 0, "procB", 2);
  auto& spawn = s.emit(EventKind::kStubStart, CallKind::kOneway, "I", "N",
                       10, 10, "procB", 2);
  spawn.spawned_chain = Uuid::generate();
  s.emit(EventKind::kStubEnd, CallKind::kOneway, "I", "N", 20, 20, "procB", 2);
  s.emit(EventKind::kSkelEnd, CallKind::kSync, "I", "F", 0, 0, "procB", 2);
  s.emit(EventKind::kStubEnd, CallKind::kSync, "I", "F", 500, 500);

  LogDatabase db;
  db.ingest_records(s.records());
  Dscg dscg = Dscg::build(db);
  annotate_latency(dscg);
  const auto paths = critical_paths(dscg);
  ASSERT_EQ(paths.size(), 1u);
  ASSERT_EQ(paths[0].steps.size(), 1u);  // N excluded: F is the whole path
  EXPECT_EQ(paths[0].steps[0].node->function_name, "F");
}

TEST(CriticalPath, SortedSlowestFirstAcrossTransactions) {
  LogDatabase db;
  for (Nanos span : {100, 900, 400}) {
    Scribe s;
    s.emit(EventKind::kStubStart, CallKind::kSync, "I", "F", 0, 0);
    s.emit(EventKind::kSkelStart, CallKind::kSync, "I", "F", 0, 0, "procB", 2);
    s.emit(EventKind::kSkelEnd, CallKind::kSync, "I", "F", 0, 0, "procB", 2);
    s.emit(EventKind::kStubEnd, CallKind::kSync, "I", "F", span, span);
    db.ingest_records(s.records());
  }
  Dscg dscg = Dscg::build(db);
  annotate_latency(dscg);
  const auto paths = critical_paths(dscg);
  ASSERT_EQ(paths.size(), 3u);
  EXPECT_EQ(paths[0].total(), 900);
  EXPECT_EQ(paths[1].total(), 400);
  EXPECT_EQ(paths[2].total(), 100);
}

TEST(CriticalPath, UnannotatedNodesStopTheDescent) {
  Scribe s(monitor::ProbeMode::kCausalityOnly);
  Nanos t[8] = {0, 0, 0, 0, 0, 0, 0, 0};
  s.leaf_sync("I", "F", t);
  LogDatabase db;
  db.ingest_records(s.records());
  Dscg dscg = Dscg::build(db);
  annotate_latency(dscg);  // annotates nothing in causality-only mode
  EXPECT_TRUE(critical_paths(dscg).empty());
}

TEST(CriticalPath, ToStringRendersEveryStep) {
  PathFixture f;
  const auto paths = critical_paths(f.dscg);
  const std::string text = paths[0].to_string();
  EXPECT_NE(text.find("I::F"), std::string::npos);
  EXPECT_NE(text.find("I::G"), std::string::npos);
  EXPECT_NE(text.find("I::K"), std::string::npos);
  EXPECT_NE(text.find("exclusive="), std::string::npos);
}

}  // namespace
}  // namespace causeway::analysis
