// idlc --runtime=both: one generated header, one implementation class, two
// hosting infrastructures -- and one causal chain crossing both through the
// FTL-aware bridge.
#include <gtest/gtest.h>

#include "analysis/dscg.h"
#include "bridge/bridge.h"
#include "common/work.h"
#include "monitor/collector.h"
#include "monitor/tss.h"
#include "telemetry.causeway.h"

namespace {

using namespace causeway;

class RecorderImpl final : public Telemetry::Recorder {
 public:
  void record(const Telemetry::Sample& s) override {
    burn_cpu(10 * kNanosPerMicro);
    last_[s.channel] = s;
    ++counts_[s.channel];
  }

  Telemetry::Sample last(const std::string& channel) override {
    auto it = last_.find(channel);
    if (it == last_.end()) {
      Telemetry::NoSuchChannel missing;
      missing.channel = channel;
      throw missing;
    }
    return it->second;
  }

  std::int32_t count(const std::string& channel) override {
    auto it = counts_.find(channel);
    return it == counts_.end() ? 0 : it->second;
  }

  void flush_hint(std::int32_t) override { flushes_.fetch_add(1); }

  std::atomic<int> flushes_{0};

 private:
  std::map<std::string, Telemetry::Sample> last_;
  std::map<std::string, std::int32_t> counts_;
};

class BothRuntimesTest : public ::testing::Test {
 protected:
  void SetUp() override { monitor::tss_clear(); }
  void TearDown() override { monitor::tss_clear(); }
};

TEST_F(BothRuntimesTest, SameImplementationHostsOnEitherInfrastructure) {
  // ORB hosting.
  orb::Fabric fabric;
  orb::DomainOptions so;
  so.process_name = "orb-host";
  orb::ProcessDomain server(fabric, so);
  orb::DomainOptions co;
  co.process_name = "orb-client";
  orb::ProcessDomain client(fabric, co);
  auto orb_impl = std::make_shared<RecorderImpl>();
  auto ref = Telemetry::activate_Recorder(server, orb_impl);
  Telemetry::RecorderProxy orb_proxy(client, ref);

  // COM hosting of a *second instance of the same class*.
  monitor::MonitorRuntime com_monitor(
      monitor::DomainIdentity{"com-host", "n", "x86"},
      monitor::MonitorConfig{true, monitor::ProbeMode::kLatency},
      ClockDomain{});
  com::ComRuntime com_rt(&com_monitor);
  const auto sta = com_rt.create_sta();
  auto com_impl = std::make_shared<RecorderImpl>();
  const auto com_id = Telemetry::register_Recorder(com_rt, sta, com_impl);
  Telemetry::RecorderComProxy com_proxy(com_rt, com_id);

  Telemetry::Sample s;
  s.channel = "temp";
  s.value = 21.5;
  s.at = 1;
  orb_proxy.record(s);
  s.value = 22.5;
  com_proxy.record(s);

  EXPECT_DOUBLE_EQ(orb_proxy.last("temp").value, 21.5);
  EXPECT_DOUBLE_EQ(com_proxy.last("temp").value, 22.5);
  EXPECT_EQ(orb_proxy.count("temp"), 1);
  EXPECT_THROW(orb_proxy.last("nope"), Telemetry::NoSuchChannel);
  EXPECT_THROW(com_proxy.last("nope"), Telemetry::NoSuchChannel);

  com_rt.shutdown();
}

TEST_F(BothRuntimesTest, OneChainThroughBridgeIntoComHostedRecorder) {
  orb::Fabric fabric;
  orb::DomainOptions go;
  go.process_name = "gateway";
  orb::ProcessDomain gateway(fabric, go);
  orb::DomainOptions co;
  co.process_name = "client";
  orb::ProcessDomain client(fabric, co);

  monitor::MonitorRuntime com_monitor(
      monitor::DomainIdentity{"com-host", "n", "x86"},
      monitor::MonitorConfig{true, monitor::ProbeMode::kLatency},
      ClockDomain{});
  com::ComRuntime com_rt(&com_monitor);
  const auto sta = com_rt.create_sta();
  auto impl = std::make_shared<RecorderImpl>();
  const auto com_id = Telemetry::register_Recorder(com_rt, sta, impl);

  // The COM-hosted recorder, exposed to the ORB through the bridge, driven
  // through the *generated ORB proxy* -- the wire format matches because
  // both bindings came from the same idlc pass.
  auto bridged = gateway.activate(std::make_shared<bridge::ComBackedServant>(
      "Telemetry::Recorder", com_rt, com_id, bridge::FtlPolicy::kForward));
  Telemetry::RecorderProxy proxy(client, bridged);

  Telemetry::Sample s;
  s.channel = "rpm";
  s.value = 7000;
  s.at = 42;
  proxy.record(s);
  EXPECT_EQ(proxy.count("rpm"), 1);
  EXPECT_DOUBLE_EQ(proxy.last("rpm").value, 7000);

  // All three calls share chains that span ORB client -> COM skeleton.
  analysis::LogDatabase db;
  monitor::Collector collector;
  collector.attach(&client.monitor_runtime());
  collector.attach(&gateway.monitor_runtime());
  collector.attach(&com_monitor);
  db.ingest(collector.collect());
  auto dscg = analysis::Dscg::build(db);
  EXPECT_EQ(dscg.anomaly_count(), 0u);
  EXPECT_EQ(db.chains().size(), 1u);  // one client thread, sibling calls
  EXPECT_EQ(dscg.call_count(), 3u);
  // Stub side in "client", skeleton side in the COM host.
  const analysis::CallNode& first = *dscg.roots()[0]->root->children[0];
  EXPECT_EQ(first.record(monitor::EventKind::kStubStart)->process_name,
            "client");
  EXPECT_EQ(first.server_process(), "com-host");

  com_rt.shutdown();
}

TEST_F(BothRuntimesTest, OnewayWorksOnBothBindings) {
  orb::Fabric fabric;
  orb::DomainOptions so;
  so.process_name = "host";
  orb::ProcessDomain server(fabric, so);
  auto orb_impl = std::make_shared<RecorderImpl>();
  auto ref = Telemetry::activate_Recorder(server, orb_impl);
  Telemetry::RecorderProxy orb_proxy(server, ref);

  monitor::MonitorRuntime com_monitor(
      monitor::DomainIdentity{"com-host", "n", "x86"},
      monitor::MonitorConfig{true, monitor::ProbeMode::kLatency},
      ClockDomain{});
  com::ComRuntime com_rt(&com_monitor);
  auto com_impl = std::make_shared<RecorderImpl>();
  const auto com_id = Telemetry::register_Recorder(
      com_rt, com_rt.create_sta(), com_impl);
  Telemetry::RecorderComProxy com_proxy(com_rt, com_id);

  orb_proxy.flush_hint(1);
  com_proxy.flush_hint(2);
  for (int i = 0;
       i < 500 && (orb_impl->flushes_.load() == 0 ||
                   com_impl->flushes_.load() == 0);
       ++i) {
    idle_for(kNanosPerMilli);
  }
  EXPECT_EQ(orb_impl->flushes_.load(), 1);
  EXPECT_EQ(com_impl->flushes_.load(), 1);
  com_rt.shutdown();
}

}  // namespace
