// Collector semantics: the bundle must be self-contained (regression test
// for a real lifetime bug: records used to hold views into the monitored
// application's name tables, dangling once the workload was torn down).
#include "monitor/collector.h"

#include <gtest/gtest.h>

#include "monitor/probes.h"
#include "monitor/tss.h"

namespace causeway::monitor {
namespace {

class CollectorTest : public ::testing::Test {
 protected:
  void SetUp() override { tss_clear(); }
  void TearDown() override { tss_clear(); }
};

TEST_F(CollectorTest, BundleOutlivesTheRuntimeAndItsStrings) {
  CollectedLogs logs;
  {
    // Identity strings live in short-lived storage.
    auto iface = std::make_unique<std::string>("Ephemeral::Iface");
    auto fn = std::make_unique<std::string>("short_lived_fn");

    MonitorRuntime rt(DomainIdentity{"proc-x", "node-x", "type-x"},
                      MonitorConfig{true, ProbeMode::kLatency},
                      ClockDomain{});
    StubProbes probes(&rt, CallIdentity{*iface, *fn, 1}, CallKind::kSync);
    probes.on_stub_start();
    probes.on_stub_end(std::nullopt);

    Collector collector;
    collector.attach(&rt);
    logs = collector.collect();

    // Scribble over and destroy the sources.
    iface->assign("XXXXXXXXXXXXXXXX");
    fn->assign("YYYYYYYYYYYYYYYY");
    iface.reset();
    fn.reset();
  }  // runtime (and its DomainIdentity strings) destroyed here

  ASSERT_EQ(logs.records.size(), 2u);
  EXPECT_EQ(logs.records[0].interface_name, "Ephemeral::Iface");
  EXPECT_EQ(logs.records[0].function_name, "short_lived_fn");
  EXPECT_EQ(logs.records[0].process_name, "proc-x");
  EXPECT_EQ(logs.domains[0].identity.processor_type, "type-x");
}

TEST_F(CollectorTest, CopiesShareThePool) {
  MonitorRuntime rt(DomainIdentity{"p", "n", "t"},
                    MonitorConfig{true, ProbeMode::kLatency}, ClockDomain{});
  StubProbes probes(&rt, CallIdentity{"I", "f", 1}, CallKind::kSync);
  probes.on_stub_start();

  Collector collector;
  collector.attach(&rt);
  CollectedLogs original = collector.collect();
  CollectedLogs copy = original;
  original.records.clear();
  original.strings.reset();
  EXPECT_EQ(copy.records[0].interface_name, "I");
}

TEST_F(CollectorTest, MultipleRuntimesConcatenateInOrder) {
  MonitorRuntime a(DomainIdentity{"procA", "n", "t"},
                   MonitorConfig{true, ProbeMode::kLatency}, ClockDomain{});
  MonitorRuntime b(DomainIdentity{"procB", "n", "t"},
                   MonitorConfig{true, ProbeMode::kCpu}, ClockDomain{});
  {
    StubProbes probes(&a, CallIdentity{"I", "f", 1}, CallKind::kSync);
    probes.on_stub_start();
    probes.on_stub_end(std::nullopt);
  }
  tss_clear();
  {
    StubProbes probes(&b, CallIdentity{"I", "g", 1}, CallKind::kSync);
    probes.on_stub_start();
  }

  Collector collector;
  collector.attach(&a);
  collector.attach(&b);
  const CollectedLogs logs = collector.collect();
  ASSERT_EQ(logs.domains.size(), 2u);
  EXPECT_EQ(logs.domains[0].record_count, 2u);
  EXPECT_EQ(logs.domains[1].record_count, 1u);
  EXPECT_EQ(logs.domains[1].mode, ProbeMode::kCpu);
  ASSERT_EQ(logs.records.size(), 3u);
  EXPECT_EQ(logs.records[2].process_name, "procB");
}

TEST_F(CollectorTest, SnapshotIsPointInTime) {
  MonitorRuntime rt(DomainIdentity{"p", "n", "t"},
                    MonitorConfig{true, ProbeMode::kLatency}, ClockDomain{});
  Collector collector;
  collector.attach(&rt);

  StubProbes first(&rt, CallIdentity{"I", "f", 1}, CallKind::kSync);
  first.on_stub_start();
  const CollectedLogs snap1 = collector.collect();

  StubProbes second(&rt, CallIdentity{"I", "g", 1}, CallKind::kSync);
  second.on_stub_start();
  const CollectedLogs snap2 = collector.collect();

  EXPECT_EQ(snap1.records.size(), 1u);
  EXPECT_EQ(snap2.records.size(), 2u);
}

}  // namespace
}  // namespace causeway::monitor
