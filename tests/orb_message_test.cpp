#include "orb/message.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/wire.h"

namespace causeway::orb {
namespace {

TEST(Message, RequestRoundTrip) {
  RequestMessage m;
  m.call_id = 77;
  m.reply_to = "clientA";
  m.connection = "clientA#3";
  m.object_key = 12;
  m.method_id = 4;
  m.oneway = true;
  m.payload = {1, 2, 3, 4, 5};

  const auto bytes = m.encode();
  const RequestMessage d = RequestMessage::decode(bytes);
  EXPECT_EQ(d.call_id, m.call_id);
  EXPECT_EQ(d.reply_to, m.reply_to);
  EXPECT_EQ(d.connection, m.connection);
  EXPECT_EQ(d.object_key, m.object_key);
  EXPECT_EQ(d.method_id, m.method_id);
  EXPECT_EQ(d.oneway, m.oneway);
  EXPECT_EQ(d.payload, m.payload);
}

TEST(Message, ReplyRoundTrip) {
  ReplyMessage m;
  m.call_id = 9;
  m.status = ReplyStatus::kAppError;
  m.error_name = "Bank::InsufficientFunds";
  m.error_text = "balance too low";
  m.payload = {9, 8, 7};

  const auto bytes = m.encode();
  const ReplyMessage d = ReplyMessage::decode(bytes);
  EXPECT_EQ(d.call_id, m.call_id);
  EXPECT_EQ(d.status, m.status);
  EXPECT_EQ(d.error_name, m.error_name);
  EXPECT_EQ(d.error_text, m.error_text);
  EXPECT_EQ(d.payload, m.payload);
}

TEST(Message, EmptyPayloadRoundTrip) {
  RequestMessage m;
  const auto bytes = m.encode();
  const RequestMessage d = RequestMessage::decode(bytes);
  EXPECT_TRUE(d.payload.empty());
  EXPECT_FALSE(d.oneway);
}

TEST(Message, TruncatedBytesThrow) {
  RequestMessage m;
  m.reply_to = "somewhere";
  m.payload = {1, 2, 3};
  auto bytes = m.encode();
  for (std::size_t cut = 1; cut < bytes.size(); cut += 3) {
    std::vector<std::uint8_t> shorter(bytes.begin(),
                                      bytes.end() - static_cast<long>(cut));
    EXPECT_THROW(RequestMessage::decode(shorter), WireError);
  }
}

class MessageFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MessageFuzz, RandomBytesNeverCrash) {
  Xoshiro256 rng(GetParam());
  for (int i = 0; i < 2000; ++i) {
    std::vector<std::uint8_t> bytes(rng.uniform(64));
    for (auto& b : bytes) b = static_cast<std::uint8_t>(rng.uniform(256));
    try {
      (void)RequestMessage::decode(bytes);
    } catch (const WireError&) {
      // expected for malformed input
    }
    try {
      (void)ReplyMessage::decode(bytes);
    } catch (const WireError&) {
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MessageFuzz, ::testing::Values(1, 2, 3, 4));

}  // namespace
}  // namespace causeway::orb
