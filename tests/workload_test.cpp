#include <gtest/gtest.h>

#include "analysis/dscg.h"
#include "analysis/latency.h"
#include "monitor/tss.h"
#include "workload/logsynth.h"
#include "workload/synthetic.h"

namespace causeway::workload {
namespace {

class SyntheticTest : public ::testing::Test {
 protected:
  void SetUp() override { monitor::tss_clear(); }
  void TearDown() override { monitor::tss_clear(); }
};

SyntheticConfig small_config() {
  SyntheticConfig config;
  config.seed = 11;
  config.domains = 3;
  config.components = 9;
  config.interfaces = 4;
  config.methods_per_interface = 3;
  config.levels = 3;
  config.max_children = 2;
  config.oneway_fraction = 0.15;
  config.cpu_per_call = 2 * kNanosPerMicro;
  return config;
}

TEST_F(SyntheticTest, TransactionShapeIsDeterministic) {
  orb::Fabric f1, f2;
  SyntheticSystem a(f1, small_config());
  SyntheticSystem b(f2, small_config());
  EXPECT_EQ(a.calls_per_transaction(), b.calls_per_transaction());
  EXPECT_GE(a.calls_per_transaction(), 1u);
}

TEST_F(SyntheticTest, RunAndReconstruct) {
  orb::Fabric fabric;
  SyntheticSystem system(fabric, small_config());
  const std::size_t cpt = system.calls_per_transaction();
  constexpr std::size_t kTransactions = 5;
  system.run_transactions(kTransactions);
  system.wait_quiescent();

  analysis::LogDatabase db;
  db.ingest(system.collect());
  auto dscg = analysis::Dscg::build(db);

  EXPECT_EQ(dscg.anomaly_count(), 0u);
  // Every oneway call contributes two DSCG nodes (stub-side + spawned
  // skeleton-side); sync/collocated contribute one.
  std::size_t oneway_stub_nodes = 0;
  dscg.visit([&](const analysis::CallNode& node, int) {
    if (node.kind == monitor::CallKind::kOneway &&
        node.record(monitor::EventKind::kStubStart)) {
      ++oneway_stub_nodes;
    }
  });
  EXPECT_EQ(dscg.call_count(), kTransactions * cpt + oneway_stub_nodes);

  // Latency annotates cleanly in latency mode.
  auto report = analysis::annotate_latency(dscg);
  EXPECT_GT(report.annotated, 0u);
  EXPECT_EQ(report.skipped, 0u);
}

TEST_F(SyntheticTest, EveryPolicyProducesCleanChains) {
  for (auto policy :
       {orb::PolicyKind::kThreadPerRequest,
        orb::PolicyKind::kThreadPerConnection, orb::PolicyKind::kThreadPool}) {
    orb::Fabric fabric;
    auto config = small_config();
    config.policy = policy;
    SyntheticSystem system(fabric, config);
    system.run_transactions(3);
    system.wait_quiescent();
    analysis::LogDatabase db;
    db.ingest(system.collect());
    auto dscg = analysis::Dscg::build(db);
    EXPECT_EQ(dscg.anomaly_count(), 0u)
        << "policy " << std::string(to_string(policy));
  }
}

TEST_F(SyntheticTest, ConcurrentClientsProduceOneChainPerTransaction) {
  orb::Fabric fabric;
  auto config = small_config();
  config.oneway_fraction = 0.0;  // keep chain counting exact
  SyntheticSystem system(fabric, config);

  constexpr std::size_t kTotal = 12;
  system.run_transactions_concurrent(kTotal, 4);
  system.wait_quiescent();

  analysis::LogDatabase db;
  db.ingest(system.collect());
  auto dscg = analysis::Dscg::build(db);
  EXPECT_EQ(dscg.anomaly_count(), 0u);
  EXPECT_EQ(dscg.chains().size(), kTotal);
  EXPECT_EQ(dscg.call_count(), kTotal * system.calls_per_transaction());
}

TEST_F(SyntheticTest, UninstrumentedRunIsSilent) {
  orb::Fabric fabric;
  auto config = small_config();
  config.instrumented = false;
  SyntheticSystem system(fabric, config);
  system.run_transactions(3);
  system.wait_quiescent();
  EXPECT_EQ(system.collect().records.size(), 0u);
}

TEST_F(SyntheticTest, CommercialShapePresetScales) {
  // A miniature of the paper's commercial-system shape knobs.
  orb::Fabric fabric;
  SyntheticConfig config;
  config.seed = 5;
  config.domains = 4;
  config.components = 32;
  config.interfaces = 16;
  config.methods_per_interface = 5;
  config.levels = 4;
  config.max_children = 3;
  config.processor_kinds = 3;
  config.cpu_per_call = 1 * kNanosPerMicro;
  SyntheticSystem system(fabric, config);
  system.run_transactions(4);
  system.wait_quiescent();

  analysis::LogDatabase db;
  db.ingest(system.collect());
  EXPECT_EQ(db.processor_types().size(), 3u);
  auto dscg = analysis::Dscg::build(db);
  EXPECT_EQ(dscg.anomaly_count(), 0u);
  EXPECT_GE(dscg.call_count(), 4u);
}

TEST(LogSynth, ProducesRequestedCallVolume) {
  LogSynthConfig config;
  config.total_calls = 2000;
  config.seed = 3;
  analysis::LogDatabase db;
  const LogSynthStats stats = synthesize_logs(config, db);
  EXPECT_EQ(stats.calls, 2000u);
  EXPECT_EQ(stats.dropped, 0u);
  EXPECT_EQ(db.size(), stats.records);

  auto dscg = analysis::Dscg::build(db);
  EXPECT_EQ(dscg.anomaly_count(), 0u);
  // Oneway calls appear twice (stub node + spawned skeleton node).
  std::size_t oneway_stub_nodes = 0;
  dscg.visit([&](const analysis::CallNode& node, int) {
    if (node.kind == monitor::CallKind::kOneway &&
        node.record(monitor::EventKind::kStubStart)) {
      ++oneway_stub_nodes;
    }
  });
  EXPECT_EQ(dscg.call_count(), stats.calls + oneway_stub_nodes);
}

TEST(LogSynth, DeterministicForSeed) {
  LogSynthConfig config;
  config.total_calls = 500;
  config.seed = 77;
  analysis::LogDatabase a, b;
  auto sa = synthesize_logs(config, a);
  auto sb = synthesize_logs(config, b);
  EXPECT_EQ(sa.records, sb.records);
  EXPECT_EQ(sa.chains, sb.chains);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.records()[i].seq, b.records()[i].seq);
    EXPECT_EQ(a.records()[i].event, b.records()[i].event);
  }
}

TEST(LogSynth, DroppedRecordsSurfaceAsAnomalies) {
  LogSynthConfig config;
  config.total_calls = 1500;
  config.seed = 9;
  config.drop_fraction = 0.02;
  analysis::LogDatabase db;
  const auto stats = synthesize_logs(config, db);
  EXPECT_GT(stats.dropped, 0u);

  auto dscg = analysis::Dscg::build(db);
  // The analyzer must flag the damage rather than crash or silently accept.
  EXPECT_GT(dscg.anomaly_count(), 0u);
  // And still recover most of the structure.
  EXPECT_GT(dscg.call_count(), stats.calls / 2);
}

TEST(LogSynth, DuplicatedRecordsSurfaceAsAnomalies) {
  LogSynthConfig config;
  config.total_calls = 1500;
  config.seed = 10;
  config.duplicate_fraction = 0.02;
  analysis::LogDatabase db;
  const auto stats = synthesize_logs(config, db);
  EXPECT_GT(stats.duplicated, 0u);
  auto dscg = analysis::Dscg::build(db);
  EXPECT_GT(dscg.anomaly_count(), 0u);
  EXPECT_GE(dscg.call_count(), stats.calls);
}

TEST(LogSynth, PaperScaleSmokeRun) {
  // The full 195k-call shape, used by bench E2; here just prove it builds
  // and reconstructs cleanly at a reduced volume.
  LogSynthConfig config;  // defaults = paper shape
  config.total_calls = 20'000;
  analysis::LogDatabase db;
  const auto stats = synthesize_logs(config, db);
  EXPECT_EQ(stats.calls, 20'000u);
  auto dscg = analysis::Dscg::build(db);
  EXPECT_EQ(dscg.anomaly_count(), 0u);
}

}  // namespace
}  // namespace causeway::workload
