// Exercises the probe protocol directly (no ORB): FTL creation, event
// numbering, TSS bridging, oneway spawning, probe modes, channel-hook saver.
#include "monitor/probes.h"

#include <gtest/gtest.h>

#include <thread>

#include "common/work.h"
#include "monitor/tss.h"

namespace causeway::monitor {
namespace {

MonitorRuntime make_runtime(ProbeMode mode = ProbeMode::kLatency) {
  return MonitorRuntime(DomainIdentity{"procA", "node0", "x86"},
                        MonitorConfig{true, mode}, ClockDomain{});
}

CallIdentity identity(std::string_view fn = "f") {
  return CallIdentity{"Test::Iface", fn, 9};
}

class ProbeTest : public ::testing::Test {
 protected:
  void SetUp() override { tss_clear(); }
  void TearDown() override { tss_clear(); }
};

TEST_F(ProbeTest, RootCallCreatesChain) {
  auto rt = make_runtime();
  StubProbes stub(&rt, identity(), CallKind::kSync);
  const Ftl wire = stub.on_stub_start();
  ASSERT_TRUE(wire.valid());
  EXPECT_EQ(wire.seq, 1u);  // first event on a fresh chain

  auto records = rt.store().snapshot();
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].event, EventKind::kStubStart);
  EXPECT_EQ(records[0].seq, 1u);
  EXPECT_EQ(records[0].chain, wire.chain);
  EXPECT_EQ(records[0].interface_name, "Test::Iface");
  EXPECT_EQ(records[0].function_name, "f");
  EXPECT_EQ(records[0].object_key, 9u);
  EXPECT_EQ(records[0].process_name, "procA");
  EXPECT_EQ(records[0].mode, ProbeMode::kLatency);
  EXPECT_GE(records[0].value_end, records[0].value_start);
}

TEST_F(ProbeTest, FullSyncCallEventNumbering) {
  auto client = make_runtime();
  auto server = make_runtime();

  StubProbes stub(&client, identity(), CallKind::kSync);
  Ftl wire = stub.on_stub_start();  // seq 1

  SkelProbes skel(&server, identity(), CallKind::kSync);
  skel.on_skel_start(wire);              // seq 2
  Ftl reply = skel.on_skel_end();        // seq 3
  EXPECT_EQ(reply.seq, 3u);
  stub.on_stub_end(reply);               // seq 4

  auto client_records = client.store().snapshot();
  auto server_records = server.store().snapshot();
  ASSERT_EQ(client_records.size(), 2u);
  ASSERT_EQ(server_records.size(), 2u);
  EXPECT_EQ(client_records[0].seq, 1u);
  EXPECT_EQ(server_records[0].seq, 2u);
  EXPECT_EQ(server_records[1].seq, 3u);
  EXPECT_EQ(client_records[1].seq, 4u);
  // Everything shares the one chain.
  for (const auto& r : server_records) EXPECT_EQ(r.chain, wire.chain);
  // Caller TSS carries the final FTL for sibling continuation.
  EXPECT_EQ(tss_get().seq, 4u);
  EXPECT_EQ(tss_get().chain, wire.chain);
}

TEST_F(ProbeTest, SiblingsShareChain) {
  auto rt = make_runtime();
  Uuid chain;
  for (int i = 0; i < 3; ++i) {
    StubProbes stub(&rt, identity(), CallKind::kSync);
    Ftl wire = stub.on_stub_start();
    if (i == 0) {
      chain = wire.chain;
    } else {
      EXPECT_EQ(wire.chain, chain);  // Table 1: siblings, same Function UUID
    }
    stub.on_stub_end(std::nullopt);
  }
  // 3 calls x 2 stub events, contiguous numbering.
  auto records = rt.store().snapshot();
  ASSERT_EQ(records.size(), 6u);
  for (std::size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ(records[i].seq, i + 1);
  }
}

TEST_F(ProbeTest, FreshChainAfterClear) {
  auto rt = make_runtime();
  StubProbes first(&rt, identity(), CallKind::kSync);
  const Uuid chain1 = first.on_stub_start().chain;
  first.on_stub_end(std::nullopt);

  tss_clear();
  StubProbes second(&rt, identity(), CallKind::kSync);
  EXPECT_NE(second.on_stub_start().chain, chain1);
}

TEST_F(ProbeTest, OnewaySpawnsChildChain) {
  auto rt = make_runtime();
  StubProbes stub(&rt, identity("notify"), CallKind::kOneway);
  const Ftl wire = stub.on_stub_start();
  stub.on_stub_end_oneway();

  auto records = rt.store().snapshot();
  ASSERT_EQ(records.size(), 2u);
  const Uuid parent_chain = records[0].chain;
  EXPECT_NE(wire.chain, parent_chain);     // child chain went on the wire
  EXPECT_EQ(wire.seq, 0u);                 // child numbering starts fresh
  EXPECT_EQ(records[0].spawned_chain, wire.chain);
  EXPECT_EQ(records[0].seq, 1u);
  EXPECT_EQ(records[1].seq, 2u);
  EXPECT_TRUE(records[1].spawned_chain.is_nil());
  // Parent chain stays in this thread.
  EXPECT_EQ(tss_get().chain, parent_chain);
}

TEST_F(ProbeTest, OnewayCalleeContinuesChildChain) {
  auto server = make_runtime();
  const Ftl wire{Uuid::generate(), 0};
  SkelProbes skel(&server, identity("notify"), CallKind::kOneway);
  skel.on_skel_start(wire);
  const Ftl end = skel.on_skel_end();
  EXPECT_EQ(end.chain, wire.chain);
  EXPECT_EQ(end.seq, 2u);
  auto records = server.store().snapshot();
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].event, EventKind::kSkelStart);
  EXPECT_EQ(records[1].event, EventKind::kSkelEnd);
}

TEST_F(ProbeTest, UninstrumentedCallerStartsFreshChainAtSkeleton) {
  auto server = make_runtime();
  SkelProbes skel(&server, identity(), CallKind::kSync);
  skel.on_skel_start(std::nullopt);  // no trailer from the plain caller
  auto records = server.store().snapshot();
  ASSERT_EQ(records.size(), 1u);
  EXPECT_FALSE(records[0].chain.is_nil());
  EXPECT_EQ(records[0].seq, 1u);
}

TEST_F(ProbeTest, DisabledRuntimeIsFullyTransparent) {
  auto rt = MonitorRuntime(DomainIdentity{"p", "n", "t"},
                           MonitorConfig{false, ProbeMode::kLatency},
                           ClockDomain{});
  StubProbes stub(&rt, identity(), CallKind::kSync);
  EXPECT_FALSE(stub.on_stub_start().valid());  // no trailer to append
  stub.on_stub_end(std::nullopt);
  EXPECT_EQ(rt.store().size(), 0u);
  EXPECT_FALSE(tss_get().valid());

  StubProbes null_stub(nullptr, identity(), CallKind::kSync);
  EXPECT_FALSE(null_stub.on_stub_start().valid());
}

TEST_F(ProbeTest, CausalityOnlyModeRecordsNoValues) {
  auto rt = make_runtime(ProbeMode::kCausalityOnly);
  StubProbes stub(&rt, identity(), CallKind::kSync);
  stub.on_stub_start();
  stub.on_stub_end(std::nullopt);
  for (const auto& r : rt.store().snapshot()) {
    EXPECT_EQ(r.value_start, 0);
    EXPECT_EQ(r.value_end, 0);
    EXPECT_EQ(r.mode, ProbeMode::kCausalityOnly);
  }
}

TEST_F(ProbeTest, CpuModeSamplesThreadCpu) {
  auto rt = make_runtime(ProbeMode::kCpu);
  StubProbes stub(&rt, identity(), CallKind::kSync);
  stub.on_stub_start();
  burn_cpu(2 * kNanosPerMilli);
  stub.on_stub_end(std::nullopt);
  auto records = rt.store().snapshot();
  ASSERT_EQ(records.size(), 2u);
  // CPU between the two probes is at least what we burned.
  EXPECT_GE(records[1].value_start - records[0].value_end,
            2 * kNanosPerMilli);
}

TEST_F(ProbeTest, LatencyModeUsesDomainClock) {
  const Nanos skew = 7200 * kNanosPerSecond;
  auto rt = MonitorRuntime(DomainIdentity{"p", "n", "t"},
                           MonitorConfig{true, ProbeMode::kLatency},
                           ClockDomain(skew, 0));
  StubProbes stub(&rt, identity(), CallKind::kSync);
  stub.on_stub_start();
  auto records = rt.store().snapshot();
  EXPECT_GT(records[0].value_start, skew);  // timestamps live in domain time
}

TEST_F(ProbeTest, FtlSaverRestoresSlot) {
  const Ftl original{Uuid::generate(), 10};
  tss_set(original);
  {
    FtlSaver saver;
    tss_set(Ftl{Uuid::generate(), 99});
    EXPECT_NE(tss_get(), original);
  }
  EXPECT_EQ(tss_get(), original);
}

TEST_F(ProbeTest, ThreadOrdinalsAreStableAndDistinct) {
  const std::uint64_t mine = this_thread_ordinal();
  EXPECT_EQ(mine, this_thread_ordinal());
  std::uint64_t other = 0;
  std::thread t([&] { other = this_thread_ordinal(); });
  t.join();
  EXPECT_NE(other, 0u);
  EXPECT_NE(other, mine);
}

TEST_F(ProbeTest, TssIsPerThread) {
  tss_set(Ftl{Uuid::generate(), 5});
  Ftl seen_in_thread;
  std::thread t([&] { seen_in_thread = tss_get(); });
  t.join();
  EXPECT_FALSE(seen_in_thread.valid());
}

TEST_F(ProbeTest, ReplyFtlContinuesOverLocalFallback) {
  auto rt = make_runtime();
  StubProbes stub(&rt, identity(), CallKind::kSync);
  Ftl wire = stub.on_stub_start();  // seq 1
  // Instrumented peer advanced the chain by two skeleton events.
  Ftl reply = wire;
  reply.seq = 3;
  stub.on_stub_end(reply);  // seq 4
  EXPECT_EQ(tss_get().seq, 4u);

  // Plain peer: no reply FTL, fall back to the local value.
  tss_clear();
  StubProbes stub2(&rt, identity(), CallKind::kSync);
  stub2.on_stub_start();           // seq 1 on new chain
  stub2.on_stub_end(std::nullopt); // seq 2
  EXPECT_EQ(tss_get().seq, 2u);
}

}  // namespace
}  // namespace causeway::monitor
