#include <gtest/gtest.h>

#include "idl/lexer.h"
#include "idl/parser.h"
#include "idl/sema.h"

namespace causeway::idl {
namespace {

TEST(Lexer, TokenizesPunctuationAndWords) {
  auto tokens = lex("module Foo { interface Bar { void f(in long x); }; };");
  ASSERT_FALSE(tokens.empty());
  EXPECT_TRUE(tokens[0].is_keyword("module"));
  EXPECT_TRUE(tokens[1].is_ident());
  EXPECT_EQ(tokens[1].text, "Foo");
  EXPECT_EQ(tokens.back().kind, TokenKind::kEof);
}

TEST(Lexer, SkipsLineAndBlockComments) {
  auto tokens = lex("// line\nmodule /* blocky\n multi */ M {};");
  EXPECT_TRUE(tokens[0].is_keyword("module"));
  EXPECT_EQ(tokens[1].text, "M");
}

TEST(Lexer, TracksLineNumbers) {
  auto tokens = lex("module\nM\n{\n}\n;");
  EXPECT_EQ(tokens[0].line, 1);
  EXPECT_EQ(tokens[1].line, 2);
  EXPECT_EQ(tokens[4].line, 5);
}

TEST(Lexer, ScopeToken) {
  auto tokens = lex("A::B");
  EXPECT_EQ(tokens[1].kind, TokenKind::kScope);
}

TEST(Lexer, RejectsIllegalCharacters) {
  EXPECT_THROW(lex("module M { $ };"), LexError);
  EXPECT_THROW(lex("a : b"), LexError);
  EXPECT_THROW(lex("/* never closed"), LexError);
}

TEST(Parser, MinimalModule) {
  SpecDef spec = parse("module M {};");
  ASSERT_EQ(spec.modules.size(), 1u);
  EXPECT_EQ(spec.modules[0]->name, "M");
}

TEST(Parser, FullFeatureSpec) {
  const char* src = R"(
    module Shop {
      struct Item { string name; long price; };
      exception OutOfStock { string item; };
      module Sub { struct Inner { double d; }; };
      interface Store {
        Item find(in string name) raises (OutOfStock);
        oneway void log_visit(in string who);
        void bulk(in sequence<Item> items, out long total, inout long count);
        sequence<sequence<octet>> blobs(in unsigned long long n);
      };
    };
  )";
  SpecDef spec = parse(src);
  ASSERT_EQ(spec.modules.size(), 1u);
  const ModuleDef& m = *spec.modules[0];
  ASSERT_EQ(m.structs.size(), 1u);
  ASSERT_EQ(m.exceptions.size(), 1u);
  ASSERT_EQ(m.submodules.size(), 1u);
  ASSERT_EQ(m.interfaces.size(), 1u);

  const InterfaceDef& store = m.interfaces[0];
  ASSERT_EQ(store.operations.size(), 4u);
  EXPECT_EQ(store.operations[0].name, "find");
  ASSERT_EQ(store.operations[0].raises.size(), 1u);
  EXPECT_TRUE(store.operations[1].oneway);
  const Operation& bulk = store.operations[2];
  ASSERT_EQ(bulk.params.size(), 3u);
  EXPECT_EQ(bulk.params[0].direction, ParamDirection::kIn);
  EXPECT_EQ(bulk.params[1].direction, ParamDirection::kOut);
  EXPECT_EQ(bulk.params[2].direction, ParamDirection::kInOut);
  const Operation& blobs = store.operations[3];
  EXPECT_EQ(blobs.return_type.kind, Type::Kind::kSequence);
  EXPECT_EQ(blobs.return_type.element->kind, Type::Kind::kSequence);
  EXPECT_EQ(blobs.params[0].type.primitive, PrimitiveKind::kULongLong);
}

TEST(Parser, LongLongVsLong) {
  SpecDef spec = parse(
      "module M { interface I { long long f(in long x); }; };");
  const Operation& op = spec.modules[0]->interfaces[0].operations[0];
  EXPECT_EQ(op.return_type.primitive, PrimitiveKind::kLongLong);
  EXPECT_EQ(op.params[0].type.primitive, PrimitiveKind::kLong);
}

class ParserRejects : public ::testing::TestWithParam<const char*> {};

TEST_P(ParserRejects, Malformed) {
  EXPECT_THROW(parse(GetParam()), ParseError);
}

INSTANTIATE_TEST_SUITE_P(
    Cases, ParserRejects,
    ::testing::Values(
        "interface I {};",                            // no module
        "module M { interface I { void f() } };",     // missing semicolon
        "module M { interface I { f(); }; };",        // missing return type
        "module M { interface I { void f(long x); }; };",  // no direction
        "module M { struct S { void v; }; };",        // void member
        "module M { interface I { void f(in sequence<void> s); }; };",
        "module M { interface I { void f(in unsigned double d); }; };",
        "module M {"));                               // unterminated

TEST(Parser, EnumAndTypedef) {
  SpecDef spec = parse(R"(
    module M {
      enum State { kIdle, kBusy, kDone, };
      typedef sequence<State> History;
      typedef unsigned long long Ticks;
      interface I { State poll(in History h, in Ticks t); };
    };
  )");
  const ModuleDef& m = *spec.modules[0];
  ASSERT_EQ(m.enums.size(), 1u);
  EXPECT_EQ(m.enums[0].enumerators.size(), 3u);  // trailing comma tolerated
  ASSERT_EQ(m.typedefs.size(), 2u);
  EXPECT_EQ(m.typedefs[0].aliased.kind, Type::Kind::kSequence);
  EXPECT_EQ(m.typedefs[1].aliased.primitive, PrimitiveKind::kULongLong);
  EXPECT_TRUE(check(spec).empty());
}

TEST(Parser, ConstDeclarations) {
  SpecDef spec = parse(R"(
    module M {
      const long kMaxJobs = 64;
      const long kOffset = -7;
      const double kRatio = 1.25;
      const string kName = "pipeline \"A\"\n";
      const boolean kEnabled = TRUE;
      const boolean kDisabled = FALSE;
    };
  )");
  const ModuleDef& m = *spec.modules[0];
  ASSERT_EQ(m.consts.size(), 6u);
  EXPECT_EQ(m.consts[0].number_text, "64");
  EXPECT_EQ(m.consts[1].number_text, "-7");
  EXPECT_EQ(m.consts[2].number_text, "1.25");
  EXPECT_EQ(m.consts[3].string_value, "pipeline \"A\"\n");
  EXPECT_TRUE(m.consts[4].bool_value);
  EXPECT_FALSE(m.consts[5].bool_value);
  EXPECT_TRUE(check(spec).empty());
}

TEST(Parser, ConstRejectsBadLiterals) {
  EXPECT_THROW(parse("module M { const long kX = ; };"), ParseError);
  EXPECT_THROW(parse("module M { const string kX = -\"s\"; };"), ParseError);
  EXPECT_THROW(parse("module M { const boolean kX = maybe; };"), ParseError);
  EXPECT_THROW(parse("module M { const void kX = 1; };"), ParseError);
}

TEST(Sema, ConstTypeLiteralMismatches) {
  EXPECT_FALSE(check(parse("module M { const long kX = TRUE; };")).empty());
  EXPECT_FALSE(
      check(parse("module M { const string kX = 5; };")).empty());
  EXPECT_FALSE(
      check(parse("module M { const boolean kX = 1; };")).empty());
  EXPECT_FALSE(check(parse("module M { struct S { long a; }; "
                           "const S kX = 5; };"))
                   .empty());
}

TEST(Lexer, NumberAndStringLiterals) {
  auto tokens = lex("123 45.75 \"hi\\\"there\\n\"");
  ASSERT_GE(tokens.size(), 4u);
  EXPECT_EQ(tokens[0].kind, TokenKind::kNumber);
  EXPECT_EQ(tokens[0].text, "123");
  EXPECT_EQ(tokens[1].kind, TokenKind::kNumber);
  EXPECT_EQ(tokens[1].text, "45.75");
  EXPECT_EQ(tokens[2].kind, TokenKind::kStringLit);
  EXPECT_EQ(tokens[2].text, "hi\"there\n");
  EXPECT_THROW(lex("\"unterminated"), LexError);
}

TEST(Sema, EnumAndTypedefErrors) {
  {
    SpecDef spec = parse("module M { enum E { kA, kA }; };");
    EXPECT_FALSE(check(spec).empty());
  }
  {
    SpecDef spec = parse("module M { typedef Missing T; };");
    EXPECT_FALSE(check(spec).empty());
  }
  {
    // Interfaces are not data types, even via typedef targets.
    SpecDef spec =
        parse("module M { interface I {}; typedef I T; };");
    EXPECT_FALSE(check(spec).empty());
  }
}

TEST(Sema, AcceptsValidSpec) {
  SpecDef spec = parse(R"(
    module A {
      struct P { long x; };
      exception E { string why; };
      interface I {
        P f(in P p) raises (E);
      };
    };
  )");
  EXPECT_TRUE(check(spec).empty());
}

TEST(Sema, ResolvesAcrossModulesAndScopes) {
  SpecDef spec = parse(R"(
    module Outer {
      struct S { long x; };
      module Inner {
        interface I {
          S use_outer(in Outer::S absolute);
        };
      };
    };
  )");
  EXPECT_TRUE(check(spec).empty());

  SymbolTable table = SymbolTable::build(spec);
  auto rel = table.resolve({"S"}, {"Outer", "Inner"});
  ASSERT_TRUE(rel.has_value());
  EXPECT_EQ(rel->first, "Outer::S");
  auto abs = table.resolve({"Outer", "S"}, {"Outer", "Inner"});
  ASSERT_TRUE(abs.has_value());
  EXPECT_EQ(abs->first, "Outer::S");
  EXPECT_FALSE(table.resolve({"Nope"}, {"Outer"}).has_value());
}

struct SemaCase {
  const char* src;
  const char* expected_fragment;
};

class SemaRejects : public ::testing::TestWithParam<SemaCase> {};

TEST_P(SemaRejects, ReportsError) {
  SpecDef spec = parse(GetParam().src);
  const auto errors = check(spec);
  ASSERT_FALSE(errors.empty()) << GetParam().src;
  bool found = false;
  for (const auto& e : errors) {
    if (e.find(GetParam().expected_fragment) != std::string::npos) found = true;
  }
  EXPECT_TRUE(found) << "wanted '" << GetParam().expected_fragment
                     << "' in: " << errors[0];
}

INSTANTIATE_TEST_SUITE_P(
    Cases, SemaRejects,
    ::testing::Values(
        SemaCase{"module M { interface I {}; interface I {}; };",
                 "duplicate definition"},
        SemaCase{"module M { interface I { void f(); void f(); }; };",
                 "duplicate operation"},
        SemaCase{"module M { interface I { void f(in long a, in long a); }; };",
                 "duplicate parameter"},
        SemaCase{"module M { struct S { long a; long a; }; };",
                 "duplicate member"},
        SemaCase{"module M { interface I { void f(in Missing m); }; };",
                 "unresolved type"},
        SemaCase{"module M { exception E { string s; }; "
                 "interface I { void f(in E e); }; };",
                 "not a struct"},
        SemaCase{"module M { interface I { void f() raises (Nope); }; };",
                 "unresolved exception"},
        SemaCase{"module M { struct S { long x; }; "
                 "interface I { void f() raises (S); }; };",
                 "is not an exception"},
        SemaCase{"module M { interface I { oneway long f(); }; };",
                 "must return void"},
        SemaCase{"module M { interface I { oneway void f(out long x); }; };",
                 "may only take 'in'"},
        SemaCase{"module M { exception E { string s; }; "
                 "interface I { oneway void f() raises (E); }; };",
                 "may not raise"}));

}  // namespace
}  // namespace causeway::idl
