// Cross-process collection transport, exercised in-process over real
// sockets (no fork needed): protocol codecs, endpoint address parsing,
// the publisher-to-daemon loopback (byte-identical to offline
// collection), drop-not-block back-pressure, drop-notice accounting,
// protocol-error containment, partial-frame discard, and publisher
// reconnect across a daemon restart.
//
// Every socket-level suite runs twice -- once over a Unix-domain
// endpoint, once over TCP loopback -- through the same TEST_P body: the
// transport seam (endpoint.h) promises the byte stream above it is
// kind-agnostic, and these tests are that promise's enforcement.
#include <gtest/gtest.h>

#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <functional>
#include <memory>
#include <span>
#include <thread>

#include "analysis/pipeline.h"
#include "analysis/trace_io.h"
#include "common/wire_io.h"
#include "monitor/tss.h"
#include "transport/endpoint.h"
#include "transport/ingest_sink.h"
#include "transport/protocol.h"
#include "transport/publisher.h"
#include "transport/subscriber.h"
#include "workload/synthetic.h"

namespace causeway {
namespace {

using transport::CollectorDaemon;
using transport::DropNotice;
using transport::EndpointKind;
using transport::EpochPublisher;
using transport::Handshake;
using transport::IngestSink;
using transport::PeerInfo;
using transport::PublisherConfig;
using transport::TransportError;

std::string unix_spec(const char* name) {
  return "unix:" + ::testing::TempDir() + "cw_transport_" + name + "_" +
         std::to_string(::getpid()) + ".sock";
}

bool wait_for(const std::function<bool()>& pred,
              std::uint64_t timeout_ms = 10000) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  while (std::chrono::steady_clock::now() < deadline) {
    if (pred()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  return pred();
}

class TransportTest : public ::testing::Test {
 protected:
  void SetUp() override { monitor::tss_clear(); }
  void TearDown() override { monitor::tss_clear(); }
};

// The socket-level suites, parameterized over the endpoint kind.  Daemons
// bind `listen_spec` (TCP uses an ephemeral port); everything that needs
// to *reach* the daemon asks it for the resolved address afterwards.
class TransportSocketTest : public ::testing::TestWithParam<EndpointKind> {
 protected:
  void SetUp() override { monitor::tss_clear(); }
  void TearDown() override { monitor::tss_clear(); }

  std::string listen_spec(const char* name) {
    return GetParam() == EndpointKind::kTcp ? "tcp:127.0.0.1:0"
                                            : unix_spec(name);
  }

  // An address nothing listens on (and nothing will): connect must fail.
  std::string dead_spec(const char* name) {
    // Port 1 on loopback is as close to "guaranteed refused" as TCP gets.
    return GetParam() == EndpointKind::kTcp ? "tcp:127.0.0.1:1"
                                            : unix_spec(name);
  }

  static std::string bound_address(const CollectorDaemon& daemon) {
    const std::vector<transport::EndpointAddress> bound =
        daemon.listen_addresses();
    EXPECT_EQ(bound.size(), 1u);
    return bound.front().to_string();
  }
};

workload::SyntheticConfig synthetic_config(std::uint64_t seed) {
  workload::SyntheticConfig config;
  config.seed = seed;
  config.domains = 3;
  config.components = 9;
  config.interfaces = 5;
  config.methods_per_interface = 3;
  config.levels = 3;
  config.max_children = 2;
  config.monitor.mode = monitor::ProbeMode::kCausalityOnly;
  return config;
}

// A raw publisher-side client for protocol-level tests: hand-crafted bytes
// straight onto the socket, whichever kind the address names.
class RawClient {
 public:
  explicit RawClient(const std::string& address) {
    endpoint_ =
        transport::connect_endpoint(transport::parse_endpoint(address), 1000);
    endpoint_.set_blocking(true);
  }
  bool connected() const { return endpoint_.valid(); }
  bool send(std::span<const std::uint8_t> bytes) {
    return io_write_full(endpoint_.fd(), bytes.data(), bytes.size());
  }
  void close() { endpoint_.close(); }

 private:
  transport::StreamEndpoint endpoint_;
};

// Records everything the daemon delivers; callbacks run on the daemon
// thread, reads happen after stop() or behind wait_for (monotonic counters
// read through the mutex).
class RecordingSink : public transport::DaemonSink {
 public:
  void on_connect(const PeerInfo& peer) override {
    std::lock_guard lk(mu);
    connects.push_back(peer);
  }
  void on_segment(const PeerInfo&,
                  std::span<const std::uint8_t> segment) override {
    monitor::CollectedLogs logs = analysis::decode_trace_segment(segment);
    std::lock_guard lk(mu);
    records += logs.records.size();
    ++segments;
  }
  void on_drop_notice(const PeerInfo&, const DropNotice& notice) override {
    std::lock_guard lk(mu);
    drop_records += notice.records;
    drop_segments += notice.segments;
  }
  void on_disconnect(const PeerInfo&, bool clean) override {
    std::lock_guard lk(mu);
    ++disconnects;
    if (!clean) ++unclean_disconnects;
  }

  std::uint64_t records_seen() {
    std::lock_guard lk(mu);
    return records;
  }
  std::uint64_t segments_seen() {
    std::lock_guard lk(mu);
    return segments;
  }

  std::mutex mu;
  std::vector<PeerInfo> connects;
  std::uint64_t records{0};
  std::uint64_t segments{0};
  std::uint64_t drop_records{0};
  std::uint64_t drop_segments{0};
  int disconnects{0};
  int unclean_disconnects{0};
};

TEST_F(TransportTest, HandshakeCodecRoundtrip) {
  Handshake hs;
  hs.trace_format = analysis::kTraceFormatV4;
  hs.pid = 4242;
  hs.process_name = "planner";
  const std::vector<std::uint8_t> bytes = transport::encode_handshake(hs);

  auto decoded = transport::try_decode_handshake(bytes);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->second, bytes.size());
  EXPECT_EQ(decoded->first.protocol, transport::kProtocolVersion);
  EXPECT_EQ(decoded->first.trace_format, analysis::kTraceFormatV4);
  EXPECT_EQ(decoded->first.pid, 4242u);
  EXPECT_EQ(decoded->first.process_name, "planner");

  // Every strict prefix is "incomplete", never an error.
  for (std::size_t n = 0; n < bytes.size(); ++n) {
    EXPECT_FALSE(
        transport::try_decode_handshake(std::span(bytes.data(), n)))
        << "prefix length " << n;
  }
  // Trailing bytes beyond the frame are someone else's problem.
  std::vector<std::uint8_t> more = bytes;
  more.push_back(0xAB);
  auto with_tail = transport::try_decode_handshake(more);
  ASSERT_TRUE(with_tail.has_value());
  EXPECT_EQ(with_tail->second, bytes.size());
}

TEST_F(TransportTest, HandshakeRejectsGarbage) {
  std::vector<std::uint8_t> bad(32, 0x5A);
  EXPECT_THROW(transport::try_decode_handshake(bad), TransportError);

  // Right magic, hostile name length.
  Handshake hs;
  hs.process_name = "x";
  std::vector<std::uint8_t> bytes = transport::encode_handshake(hs);
  const std::size_t len_at = 4 + 4 + 4 + 8;  // magic+proto+format+pid
  bytes[len_at] = 0xFF;
  bytes[len_at + 1] = 0xFF;
  bytes[len_at + 2] = 0xFF;
  bytes[len_at + 3] = 0x7F;
  EXPECT_THROW(transport::try_decode_handshake(bytes), TransportError);

  Handshake long_name;
  long_name.process_name.assign(transport::kMaxProcessNameBytes + 1, 'n');
  EXPECT_THROW(transport::encode_handshake(long_name), TransportError);
}

TEST_F(TransportTest, ControlCodecRoundtrip) {
  transport::ControlDirective d;
  d.seq = 42;
  d.mode = 2;
  d.sample_rate_index = monitor::sample_rate_index_for(10);
  d.enabled = true;
  d.muted_interfaces = std::vector<std::string>{"Stock::Pricing", "Job::Run"};
  const std::vector<std::uint8_t> bytes = transport::encode_control(d);

  auto decoded = transport::try_decode_control(bytes);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->second, bytes.size());
  EXPECT_EQ(decoded->first.seq, 42u);
  ASSERT_TRUE(decoded->first.mode.has_value());
  EXPECT_EQ(*decoded->first.mode, 2);
  ASSERT_TRUE(decoded->first.sample_rate_index.has_value());
  EXPECT_EQ(*decoded->first.sample_rate_index,
            monitor::sample_rate_index_for(10));
  ASSERT_TRUE(decoded->first.enabled.has_value());
  EXPECT_TRUE(*decoded->first.enabled);
  ASSERT_TRUE(decoded->first.muted_interfaces.has_value());
  EXPECT_EQ(*decoded->first.muted_interfaces,
            (std::vector<std::string>{"Stock::Pricing", "Job::Run"}));

  // Every strict prefix is "incomplete", never an error.
  for (std::size_t n = 0; n < bytes.size(); ++n) {
    EXPECT_FALSE(transport::try_decode_control(std::span(bytes.data(), n)))
        << "prefix length " << n;
  }
  // Trailing bytes beyond the frame are the next frame's problem.
  std::vector<std::uint8_t> more = bytes;
  more.push_back(0xAB);
  auto with_tail = transport::try_decode_control(more);
  ASSERT_TRUE(with_tail.has_value());
  EXPECT_EQ(with_tail->second, bytes.size());

  // The hello (all fields absent) must survive the wire as exactly that.
  transport::ControlDirective hello;
  hello.seq = 1;
  auto hello_rt = transport::try_decode_control(transport::encode_control(hello));
  ASSERT_TRUE(hello_rt.has_value());
  EXPECT_EQ(hello_rt->first.seq, 1u);
  EXPECT_TRUE(hello_rt->first.empty());
}

TEST_F(TransportTest, StatusCodecRoundtrip) {
  transport::ControlStatus st;
  st.applied_seq = 9;
  st.sampled_out = 123456789ull;
  st.sample_rate_index = 5;
  st.mode = 1;
  const std::vector<std::uint8_t> bytes = transport::encode_status(st);
  auto decoded = transport::try_decode_status(bytes);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->second, bytes.size());
  EXPECT_EQ(decoded->first.applied_seq, 9u);
  EXPECT_EQ(decoded->first.sampled_out, 123456789ull);
  EXPECT_EQ(decoded->first.sample_rate_index, 5);
  EXPECT_EQ(decoded->first.mode, 1);
  for (std::size_t n = 0; n < bytes.size(); ++n) {
    EXPECT_FALSE(transport::try_decode_status(std::span(bytes.data(), n)))
        << "prefix length " << n;
  }
}

TEST_F(TransportTest, DropNoticeCodecRoundtrip) {
  const std::vector<std::uint8_t> bytes =
      transport::encode_drop_notice({123456789ull, 17ull});
  EXPECT_EQ(bytes.size(), transport::kDropNoticeBytes);
  auto decoded = transport::try_decode_drop_notice(bytes);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->first.records, 123456789ull);
  EXPECT_EQ(decoded->first.segments, 17ull);
  EXPECT_FALSE(transport::try_decode_drop_notice(
      std::span(bytes.data(), bytes.size() - 1)));
}

// Address parsing is the transport's configure-time gate: every accepted
// spelling round-trips, every malformed spec is a clear error before a
// socket exists.
TEST_F(TransportTest, EndpointParsing) {
  const transport::EndpointAddress unix_addr =
      transport::parse_endpoint("unix:/tmp/cw.sock");
  EXPECT_EQ(unix_addr.kind, EndpointKind::kUnix);
  EXPECT_EQ(unix_addr.path, "/tmp/cw.sock");
  EXPECT_EQ(unix_addr.to_string(), "unix:/tmp/cw.sock");

  // Bare paths stay valid: the pre-TCP spelling keeps working.
  EXPECT_EQ(transport::parse_endpoint("/tmp/bare.sock").kind,
            EndpointKind::kUnix);

  const transport::EndpointAddress tcp_addr =
      transport::parse_endpoint("tcp:collect.example:9917");
  EXPECT_EQ(tcp_addr.kind, EndpointKind::kTcp);
  EXPECT_EQ(tcp_addr.host, "collect.example");
  EXPECT_EQ(tcp_addr.port, 9917);
  EXPECT_EQ(tcp_addr.to_string(), "tcp:collect.example:9917");
  // IPv6 hosts split on the *last* colon.
  EXPECT_EQ(transport::parse_endpoint("tcp:::1:80").host, "::1");

  EXPECT_THROW(transport::parse_endpoint(""), TransportError);
  EXPECT_THROW(transport::parse_endpoint("unix:"), TransportError);
  EXPECT_THROW(transport::parse_endpoint("tcp:nohost"), TransportError);
  EXPECT_THROW(transport::parse_endpoint("tcp:host:"), TransportError);
  EXPECT_THROW(transport::parse_endpoint("tcp:host:notaport"),
               TransportError);
  EXPECT_THROW(transport::parse_endpoint("tcp:host:70000"), TransportError);
  EXPECT_THROW(transport::parse_endpoint("udp:host:1"), TransportError);
}

// A Unix socket path that cannot fit sockaddr_un::sun_path must fail at
// configuration time -- publisher construction and daemon construction
// alike -- with the length in the message, never a silent truncation.
TEST_F(TransportTest, OversizedUnixPathRejectedAtConfigTime) {
  const std::string oversized = "unix:/tmp/" + std::string(200, 'x') + ".sock";
  try {
    transport::parse_endpoint(oversized);
    FAIL() << "oversized unix path must not parse";
  } catch (const TransportError& e) {
    EXPECT_NE(std::string(e.what()).find("too long"), std::string::npos);
  }

  orb::Fabric fabric;
  workload::SyntheticSystem system(fabric, synthetic_config(3));
  monitor::Collector collector;
  system.attach_collector(collector);
  PublisherConfig config;
  config.address = oversized;
  config.process_name = "toolong";
  EXPECT_THROW(EpochPublisher(collector, config), TransportError);

  RecordingSink sink;
  EXPECT_THROW(CollectorDaemon({{oversized}, 0}, sink), TransportError);
}

// One daemon, two transports at once: a Unix listener for local
// publishers and a TCP listener for remote ones, each accounted per kind.
TEST_F(TransportTest, MultiListenerServesBothTransports) {
  const std::string unix_address = unix_spec("multi");
  RecordingSink sink;
  CollectorDaemon daemon({{unix_address, "tcp:127.0.0.1:0"}, 0}, sink);
  daemon.start();
  const std::vector<transport::EndpointAddress> bound =
      daemon.listen_addresses();
  ASSERT_EQ(bound.size(), 2u);
  EXPECT_EQ(bound[0].kind, EndpointKind::kUnix);
  EXPECT_EQ(bound[1].kind, EndpointKind::kTcp);
  EXPECT_NE(bound[1].port, 0) << "ephemeral port must resolve";

  for (const transport::EndpointAddress& address : bound) {
    RawClient client(address.to_string());
    ASSERT_TRUE(client.connected()) << address.to_string();
    Handshake hs;
    hs.process_name = std::string("via-") +
                      transport::endpoint_kind_name(address.kind);
    ASSERT_TRUE(client.send(transport::encode_handshake(hs)));
    monitor::CollectedLogs empty;
    ASSERT_TRUE(client.send(analysis::encode_trace(empty)));
    client.close();
  }
  ASSERT_TRUE(wait_for([&] { return sink.segments_seen() == 2; }));
  daemon.stop();

  const CollectorDaemon::Stats stats = daemon.stats();
  EXPECT_EQ(stats.connections_unix, 1u);
  EXPECT_EQ(stats.connections_tcp, 1u);
  EXPECT_EQ(stats.connections_total, 2u);
  std::lock_guard lk(sink.mu);
  ASSERT_EQ(sink.connects.size(), 2u);
  EXPECT_EQ(sink.connects[0].transport == EndpointKind::kUnix ? 1 : 0,
            sink.connects[0].process_name == "via-unix" ? 1 : 0);
}

// A handshake claiming a protocol newer than this build must be rejected:
// the unit decoder throws, and the daemon closes exactly that connection
// while a concurrent well-behaved publisher is untouched.
TEST_P(TransportSocketTest, FutureProtocolVersionRejectedCleanly) {
  Handshake hs;
  hs.process_name = "from-the-future";
  std::vector<std::uint8_t> bytes = transport::encode_handshake(hs);
  bytes[4] = 0xFF;  // protocol u32 follows the magic; LSB first
  EXPECT_THROW(transport::try_decode_handshake(bytes), TransportError);

  RecordingSink sink;
  CollectorDaemon daemon({{listen_spec("future")}, 0}, sink);
  daemon.start();
  const std::string address = bound_address(daemon);

  RawClient future(address);
  ASSERT_TRUE(future.connected());
  ASSERT_TRUE(future.send(bytes));
  ASSERT_TRUE(wait_for([&] { return daemon.stats().protocol_errors == 1; }));

  // Per-connection containment: the daemon still serves a current peer.
  RawClient good(address);
  ASSERT_TRUE(good.connected());
  Handshake current;
  current.process_name = "current";
  ASSERT_TRUE(good.send(transport::encode_handshake(current)));
  monitor::CollectedLogs empty;
  ASSERT_TRUE(good.send(analysis::encode_trace(empty)));
  ASSERT_TRUE(wait_for([&] { return sink.segments_seen() == 1; }));
  good.close();
  future.close();
  daemon.stop();
  EXPECT_EQ(daemon.stats().protocol_errors, 1u);
  ASSERT_EQ(sink.connects.size(), 1u);  // the future peer never handshook
  EXPECT_EQ(sink.connects[0].process_name, "current");
}

// A daemon that accepts the connection but never reads -- wedged, not dead
// -- must not stall finish() past its flush deadline.  The publisher fills
// the socket buffers, hits the deadline, counts the rest as dropped and
// returns.
TEST_P(TransportSocketTest, WedgedDaemonCannotStallFinish) {
  // A bound, listening endpoint nobody ever accepts or reads from: bytes
  // pile up in the kernel until the publisher's writes stall on EAGAIN.
  // Shrink both kernel buffers -- the listener's receive side (inherited
  // by the never-accepted connection) and, below, the publisher's send
  // side -- so the wedge bites at kilobytes; TCP would otherwise autotune
  // several megabytes of invisible capacity and absorb the whole workload.
  transport::Listener wedged(
      transport::parse_endpoint(listen_spec("wedged")));
  const int tiny_rcvbuf = 4096;
  ::setsockopt(wedged.fd(), SOL_SOCKET, SO_RCVBUF, &tiny_rcvbuf,
               sizeof tiny_rcvbuf);
  const std::string address = wedged.address().to_string();

  orb::Fabric fabric;
  workload::SyntheticSystem system(fabric, synthetic_config(13));
  monitor::Collector collector;
  system.attach_collector(collector);

  PublisherConfig config;
  config.address = address;
  config.process_name = "wedged-feeder";
  config.interval_ms = 1;
  config.flush_timeout_ms = 250;
  config.sndbuf_bytes = 32 * 1024;
  EpochPublisher publisher(collector, config);
  publisher.start();
  // Enough volume to overflow the kernel socket buffers (a few hundred KB)
  // so the flush genuinely cannot complete.
  system.run_transactions(1500);
  system.wait_quiescent();

  const auto t0 = std::chrono::steady_clock::now();
  EXPECT_FALSE(publisher.finish());
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
                           std::chrono::steady_clock::now() - t0)
                           .count();
  EXPECT_LT(elapsed, 5000) << "finish() must respect flush_timeout_ms";

  const EpochPublisher::Stats stats = publisher.stats();
  EXPECT_GT(stats.dropped_records, 0u);  // the undeliverable tail
}

// The tentpole loopback: a workload published over the socket must yield
// (a) a pipeline report and (b) a merged-trace report both byte-identical
// to collecting the identical workload in-process.
TEST_P(TransportSocketTest, LoopbackPublishMatchesOfflineCollection) {
  const std::string merged = ::testing::TempDir() + "cw_loopback_merged_" +
                             transport::endpoint_kind_name(GetParam()) +
                             ".cwt";

  // Offline reference: same seed, same workload, collected in-process.
  std::string reference;
  std::size_t reference_records = 0;
  {
    orb::Fabric fabric;
    workload::SyntheticSystem system(fabric, synthetic_config(77));
    system.run_transactions(5);
    system.wait_quiescent();
    analysis::AnalysisPipeline pipeline;
    const monitor::CollectedLogs logs = system.collect();
    reference_records = logs.records.size();
    pipeline.ingest(logs);
    reference = pipeline.report();
  }
  ASSERT_GT(reference_records, 0u);
  monitor::tss_clear();

  // Transport run: daemon with live pipeline + merged file.
  analysis::AnalysisPipeline live;
  IngestSink::Options options;
  options.pipeline = &live;
  options.merged_path = merged;
  IngestSink sink(std::move(options));
  CollectorDaemon daemon({{listen_spec("loopback")}, 0}, sink);
  daemon.start();
  {
    orb::Fabric fabric;
    workload::SyntheticSystem system(fabric, synthetic_config(77));
    monitor::Collector collector;
    system.attach_collector(collector);
    PublisherConfig config;
    config.address = bound_address(daemon);
    config.process_name = "loopback";
    config.interval_ms = 5;
    EpochPublisher publisher(collector, config);
    publisher.start();
    system.run_transactions(5);
    system.wait_quiescent();
    EXPECT_TRUE(publisher.finish());
    const EpochPublisher::Stats stats = publisher.stats();
    EXPECT_EQ(stats.records_sent, reference_records);
    EXPECT_EQ(stats.dropped_records, 0u);
    // Everything sent must land before we stop the daemon.
    ASSERT_TRUE(wait_for([&] {
      return sink.totals().records >= stats.records_sent;
    }));
  }
  daemon.stop();
  const IngestSink::Totals totals = sink.finalize();
  EXPECT_EQ(totals.records, reference_records);
  EXPECT_EQ(totals.publish_dropped_records, 0u);
  EXPECT_EQ(daemon.stats().protocol_errors, 0u);

  // Live pipeline saw the same system the offline collect did.
  EXPECT_EQ(live.report(), reference);

  // And the merged file re-analyzes to the same bytes.
  analysis::AnalysisPipeline from_file;
  analysis::read_trace_file(merged, from_file.database());
  from_file.refresh();
  EXPECT_EQ(from_file.report(), reference);
  ::unlink(merged.c_str());
}

// No daemon at all: the publisher must never block the workload, must keep
// memory bounded, and must account every discarded record.
TEST_P(TransportSocketTest, BackpressureDropsNotBlocks) {
  orb::Fabric fabric;
  workload::SyntheticSystem system(fabric, synthetic_config(31));
  monitor::Collector collector;
  system.attach_collector(collector);

  PublisherConfig config;
  config.address = dead_spec("nowhere");  // nothing listens here
  config.process_name = "lonely";
  config.interval_ms = 1;
  config.max_inflight_bytes = 512;  // absurdly small: force drops fast
  config.reconnect_initial_ms = 1;
  config.reconnect_max_ms = 8;
  config.flush_timeout_ms = 50;
  EpochPublisher publisher(collector, config);
  publisher.start();
  system.run_transactions(6);
  system.wait_quiescent();
  EXPECT_FALSE(publisher.finish());  // nothing could be delivered

  const EpochPublisher::Stats stats = publisher.stats();
  EXPECT_EQ(stats.segments_sent, 0u);
  EXPECT_GT(stats.dropped_segments, 0u);
  // Conservation: every drained record was either sent or counted dropped.
  const monitor::CollectedLogs rest = collector.collect();
  EXPECT_EQ(rest.records.size(), 0u);  // drains consumed everything
  EXPECT_GT(stats.dropped_records, 0u);
}

// Drop notices synthesize publish_dropped bundles: the loss shows up in
// the database counter and as a kPublishDrop anomaly event, distinct from
// ring overflow.
TEST_P(TransportSocketTest, DropNoticeReachesPipelineAndAnomalies) {
  analysis::AnalysisPipeline live;
  std::atomic<int> publish_drop_events{0};
  analysis::CallbackAnomalySink anomaly_sink(
      [&](const analysis::AnomalyEvent& event) {
        if (event.kind == analysis::AnomalyKind::kPublishDrop) {
          ++publish_drop_events;
        }
      });
  live.add_sink(&anomaly_sink);

  IngestSink::Options options;
  options.pipeline = &live;
  IngestSink sink(std::move(options));
  CollectorDaemon daemon({{listen_spec("notice")}, 0}, sink);
  daemon.start();

  RawClient client(bound_address(daemon));
  ASSERT_TRUE(client.connected());
  Handshake hs;
  hs.trace_format = analysis::kTraceFormatV4;
  hs.pid = 7;
  hs.process_name = "dropper";
  ASSERT_TRUE(client.send(transport::encode_handshake(hs)));
  ASSERT_TRUE(client.send(transport::encode_drop_notice({41, 3})));
  client.close();

  ASSERT_TRUE(wait_for([&] { return sink.totals().publish_dropped_records == 41; }));
  daemon.stop();
  EXPECT_EQ(sink.totals().publish_dropped_segments, 3u);
  EXPECT_EQ(live.database().publish_dropped(), 41u);
  EXPECT_EQ(live.database().overflow_dropped(), 0u);  // distinct ledgers
  EXPECT_EQ(publish_drop_events.load(), 1);
  EXPECT_EQ(daemon.stats().drop_notices, 1u);
}

// A connection that violates the protocol is closed; the daemon and its
// other publishers are unharmed.
TEST_P(TransportSocketTest, ProtocolErrorClosesOnlyThatConnection) {
  RecordingSink sink;
  CollectorDaemon daemon({{listen_spec("protoerr")}, 0}, sink);
  daemon.start();
  const std::string address = bound_address(daemon);

  RawClient bad(address);
  ASSERT_TRUE(bad.connected());
  const std::vector<std::uint8_t> garbage(64, 0x99);
  ASSERT_TRUE(bad.send(garbage));
  ASSERT_TRUE(wait_for([&] { return daemon.stats().protocol_errors == 1; }));

  // The daemon still accepts and serves a well-behaved publisher.
  RawClient good(address);
  ASSERT_TRUE(good.connected());
  Handshake hs;
  hs.process_name = "wellbehaved";
  ASSERT_TRUE(good.send(transport::encode_handshake(hs)));
  monitor::CollectedLogs empty;
  ASSERT_TRUE(good.send(analysis::encode_trace(empty)));
  ASSERT_TRUE(wait_for([&] { return sink.segments_seen() == 1; }));
  good.close();
  bad.close();
  daemon.stop();
  EXPECT_EQ(daemon.stats().protocol_errors, 1u);
  ASSERT_EQ(sink.connects.size(), 1u);  // garbage never completed handshake
  EXPECT_EQ(sink.connects[0].process_name, "wellbehaved");
}

// A publisher that dies mid-frame leaves a partial tail; the daemon keeps
// the complete prefix and discards the torn frame -- TraceTail's
// clean-prefix discipline on a socket.
TEST_P(TransportSocketTest, PartialFrameDiscardedOnAbruptClose) {
  RecordingSink sink;
  CollectorDaemon daemon({{listen_spec("partial")}, 0}, sink);
  daemon.start();

  monitor::CollectedLogs empty;
  const std::vector<std::uint8_t> segment = analysis::encode_trace(empty);
  ASSERT_GT(segment.size(), 8u);

  RawClient client(bound_address(daemon));
  ASSERT_TRUE(client.connected());
  Handshake hs;
  hs.process_name = "crasher";
  ASSERT_TRUE(client.send(transport::encode_handshake(hs)));
  ASSERT_TRUE(client.send(segment));  // one whole segment: the clean prefix
  ASSERT_TRUE(client.send(
      std::span(segment.data(), segment.size() / 2)));  // torn frame
  client.close();

  ASSERT_TRUE(wait_for([&] {
    std::lock_guard lk(sink.mu);
    return sink.disconnects == 1;
  }));
  daemon.stop();
  EXPECT_EQ(sink.segments_seen(), 1u);  // the whole one, not the torn one
  EXPECT_EQ(sink.unclean_disconnects, 1);
  EXPECT_EQ(daemon.stats().protocol_errors, 0u);  // torn != corrupt
  EXPECT_GT(daemon.stats().partial_tail_bytes, 0u);
}

// Daemon restart: the publisher reconnects with backoff, re-handshakes,
// resends from a frame boundary, and everything drained after the outage
// still arrives.  The pre-restart clean prefix stays ingested.
TEST_P(TransportSocketTest, PublisherReconnectsAcrossDaemonRestart) {
  RecordingSink sink;

  orb::Fabric fabric;
  workload::SyntheticSystem system(fabric, synthetic_config(55));
  monitor::Collector collector;
  system.attach_collector(collector);

  auto daemon1 = std::make_unique<CollectorDaemon>(
      CollectorDaemon::Options{{listen_spec("restart")}, 0}, sink);
  daemon1->start();
  // The restarted daemon must come back on the same concrete address, so
  // resolve the ephemeral port once and reuse it.
  const std::string address = bound_address(*daemon1);

  PublisherConfig config;
  config.address = address;
  config.process_name = "phoenix-feeder";
  config.interval_ms = 2;
  config.reconnect_initial_ms = 1;
  config.reconnect_max_ms = 16;
  EpochPublisher publisher(collector, config);
  publisher.start();

  system.run_transactions(3);
  system.wait_quiescent();
  // Quiesce phase 1: everything sent has been read and decoded, so the
  // restart cannot eat in-flight bytes.
  ASSERT_TRUE(wait_for([&] {
    return publisher.stats().records_sent > 0 &&
           sink.records_seen() == publisher.stats().records_sent;
  }));
  const std::uint64_t phase1_records = sink.records_seen();

  daemon1->stop();
  daemon1.reset();

  // Outage: the workload keeps running; drained segments queue up (or the
  // first may hit the dead socket and be rewound -- either way nothing is
  // lost, the queue is far under the back-pressure bound).
  system.run_transactions(3);
  system.wait_quiescent();
  std::this_thread::sleep_for(std::chrono::milliseconds(20));

  CollectorDaemon daemon2({{address}, 0}, sink);
  daemon2.start();
  EXPECT_TRUE(publisher.finish());

  const EpochPublisher::Stats stats = publisher.stats();
  EXPECT_GE(stats.reconnects, 1u);
  EXPECT_EQ(stats.dropped_records, 0u);
  ASSERT_TRUE(
      wait_for([&] { return sink.records_seen() >= stats.records_sent; }));
  daemon2.stop();

  // Clean prefix survived and the outage window was fully recovered.
  EXPECT_GE(sink.records_seen(), phase1_records);
  EXPECT_EQ(sink.records_seen(), stats.records_sent);
  {
    std::lock_guard lk(sink.mu);
    ASSERT_GE(sink.connects.size(), 2u);  // original + post-restart handshake
    for (const PeerInfo& peer : sink.connects) {
      EXPECT_EQ(peer.process_name, "phoenix-feeder");
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Transports, TransportSocketTest,
    ::testing::Values(EndpointKind::kUnix, EndpointKind::kTcp),
    [](const ::testing::TestParamInfo<EndpointKind>& info) {
      return std::string(transport::endpoint_kind_name(info.param));
    });

}  // namespace
}  // namespace causeway
