// Sharded-synthesis invariants (DESIGN.md Sec. 8): every public LogDatabase
// query -- and therefore every downstream render -- must be byte-for-byte
// independent of the shard count; chains_since must dedup exactly across
// interleaved generations; the sorted-prefix watermark must keep
// chain_events equal to a full stable sort; and the database must stay
// movable (the parallel machinery lives outside it).
#include <algorithm>
#include <random>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include <gtest/gtest.h>

#include "analysis/database.h"
#include "analysis/dscg.h"
#include "analysis/report.h"
#include "analysis_test_util.h"
#include "workload/logsynth.h"

namespace causeway::analysis {
namespace {

using monitor::CallKind;
using monitor::EventKind;
using monitor::ProbeMode;
using monitor::TraceRecord;
using testutil::Scribe;

// Field-wise record equality (TraceRecord has no operator==; string
// identity must compare by content because shards intern independently).
void expect_same_record(const TraceRecord& a, const TraceRecord& b) {
  EXPECT_EQ(a.chain, b.chain);
  EXPECT_EQ(a.seq, b.seq);
  EXPECT_EQ(a.event, b.event);
  EXPECT_EQ(a.kind, b.kind);
  EXPECT_EQ(a.outcome, b.outcome);
  EXPECT_EQ(a.spawned_chain, b.spawned_chain);
  EXPECT_EQ(a.interface_name, b.interface_name);
  EXPECT_EQ(a.function_name, b.function_name);
  EXPECT_EQ(a.object_key, b.object_key);
  EXPECT_EQ(a.process_name, b.process_name);
  EXPECT_EQ(a.node_name, b.node_name);
  EXPECT_EQ(a.processor_type, b.processor_type);
  EXPECT_EQ(a.thread_ordinal, b.thread_ordinal);
  EXPECT_EQ(a.mode, b.mode);
  EXPECT_EQ(a.value_start, b.value_start);
  EXPECT_EQ(a.value_end, b.value_end);
}

// The full equivalence check: every public query of `a` and `b` agrees.
void expect_same_database(const LogDatabase& a, const LogDatabase& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    expect_same_record(a.records()[i], b.records()[i]);
  }
  ASSERT_EQ(a.chains(), b.chains());
  EXPECT_EQ(a.generation(), b.generation());
  EXPECT_EQ(a.primary_mode(), b.primary_mode());

  std::vector<std::string_view> types_a(a.processor_types().begin(),
                                        a.processor_types().end());
  std::vector<std::string_view> types_b(b.processor_types().begin(),
                                        b.processor_types().end());
  EXPECT_EQ(types_a, types_b);

  for (std::uint64_t gen = 0; gen <= a.generation(); ++gen) {
    EXPECT_EQ(a.chains_since(gen), b.chains_since(gen)) << "gen " << gen;
  }

  for (const Uuid& chain : a.chains()) {
    const auto ea = a.chain_events(chain);
    const auto eb = b.chain_events(chain);
    ASSERT_EQ(ea.size(), eb.size());
    for (std::size_t i = 0; i < ea.size(); ++i) {
      expect_same_record(*ea[i], *eb[i]);
    }
  }
}

// Ingests `records` into `db` split into `batches` roughly equal batches.
void ingest_in_batches(LogDatabase& db, std::span<const TraceRecord> records,
                       std::size_t batches) {
  const std::size_t step = std::max<std::size_t>(1, records.size() / batches);
  for (std::size_t off = 0; off < records.size(); off += step) {
    db.ingest_records(
        records.subspan(off, std::min(step, records.size() - off)));
  }
}

TEST(DatabaseShardTest, ShardCountsRenderIdentically) {
  // A real multi-chain stream: the E2 synthesizer, scaled down.
  LogDatabase source(1);
  workload::LogSynthConfig config;
  config.total_calls = 1'200;
  config.methods = 40;
  config.interfaces = 12;
  config.components = 8;
  config.threads = 8;
  config.processes = 3;
  workload::synthesize_logs(config, source);
  ASSERT_GT(source.chains().size(), 30u);

  // Reference: one shard, same batch schedule.
  LogDatabase one(1);
  ingest_in_batches(one, source.records(), 5);

  for (const std::size_t shards : {std::size_t{3}, std::size_t{8}}) {
    LogDatabase db(shards);
    ASSERT_EQ(db.shard_count(), shards);
    ingest_in_batches(db, source.records(), 5);
    expect_same_database(one, db);

    // The acceptance bar: the full characterization report is
    // byte-identical, so every downstream pass is too.
    Dscg ref = Dscg::build(one);
    Dscg got = Dscg::build(db);
    EXPECT_EQ(characterization_report(ref, one),
              characterization_report(got, db))
        << "shards=" << shards;
  }
}

TEST(DatabaseShardTest, ChainsSinceDedupsAcrossInterleavedGenerations) {
  // Chains touch interleaved subsets of generations; chains_since(g) must
  // list each touched chain exactly once, ordered by its first touching
  // batch after g (then arrival).  Brute-force reference: replay the
  // schedule and record per-chain touch generations.
  Scribe a, b, c, d;
  const std::vector<std::vector<Scribe*>> schedule = {
      {&a, &b}, {&b, &c}, {&a}, {&d, &a, &c}, {&b}};

  LogDatabase db(4);
  std::unordered_map<Uuid, std::vector<std::uint64_t>> touches;
  std::vector<Uuid> arrival_order;  // chain first-arrival across the run
  std::uint64_t gen = 0;
  for (const auto& batch : schedule) {
    std::vector<TraceRecord> records;
    ++gen;
    for (Scribe* scribe : batch) {
      scribe->records().clear();
      scribe->emit(EventKind::kStubStart, CallKind::kSync, "I", "f", 0, 1);
      scribe->emit(EventKind::kStubEnd, CallKind::kSync, "I", "f", 2, 3);
      records.insert(records.end(), scribe->records().begin(),
                     scribe->records().end());
      touches[scribe->chain()].push_back(gen);
      if (std::find(arrival_order.begin(), arrival_order.end(),
                    scribe->chain()) == arrival_order.end()) {
        arrival_order.push_back(scribe->chain());
      }
    }
    db.ingest_records(records);
  }

  for (std::uint64_t cut = 0; cut <= gen + 1; ++cut) {
    // Reference: chains with any touch > cut, ordered by (first touch
    // after cut, arrival within that batch).  The schedule lists chains
    // in batch-arrival order already, so a stable scan per generation
    // reproduces it.
    std::vector<Uuid> expected;
    for (std::uint64_t g = cut + 1; g <= gen; ++g) {
      for (Scribe* scribe : schedule[g - 1]) {
        const auto& t = touches[scribe->chain()];
        const auto first_after =
            std::find_if(t.begin(), t.end(),
                         [&](std::uint64_t x) { return x > cut; });
        if (first_after != t.end() && *first_after == g) {
          expected.push_back(scribe->chain());
        }
      }
    }
    EXPECT_EQ(db.chains_since(cut), expected) << "cut " << cut;
  }
  EXPECT_EQ(db.chains_since(0), db.chains());
  EXPECT_EQ(db.chains(), arrival_order);
}

TEST(DatabaseShardTest, ChainEventsMatchesStableSortUnderDisorder) {
  // Three arrival shapes: already sorted (fast path), out-of-order tails
  // across batches, and duplicate seq numbers (ties must keep insertion
  // order -- stable_sort semantics).
  std::mt19937_64 rng(11);
  for (int scramble = 0; scramble < 3; ++scramble) {
    Scribe scribe;
    for (int i = 0; i < 40; ++i) {
      scribe.emit(EventKind::kStubStart, CallKind::kSync, "I", "f", i, i + 1)
          .object_key = static_cast<std::uint64_t>(i);
    }
    std::vector<TraceRecord> records = scribe.records();
    if (scramble >= 1) {
      std::shuffle(records.begin() + 10, records.end(), rng);
    }
    if (scramble == 2) {
      for (std::size_t i = 0; i < records.size(); ++i) {
        records[i].seq = records[i].seq / 4;  // heavy ties
      }
    }

    LogDatabase db(2);
    ingest_in_batches(db, records, 4);

    // Reference: stable sort of arrival order by seq.
    std::vector<const TraceRecord*> expected;
    for (const auto& r : db.records()) expected.push_back(&r);
    std::stable_sort(expected.begin(), expected.end(),
                     [](const TraceRecord* x, const TraceRecord* y) {
                       return x->seq < y->seq;
                     });

    const auto got = db.chain_events(scribe.chain());
    ASSERT_EQ(got.size(), expected.size());
    for (std::size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(got[i]->seq, expected[i]->seq) << "scramble " << scramble;
      EXPECT_EQ(got[i]->object_key, expected[i]->object_key)
          << "scramble " << scramble << " pos " << i;
    }
  }
}

TEST(DatabaseShardTest, MoveSemanticsSurviveQueriesAndFurtherIngest) {
  Scribe scribe;
  scribe.leaf_sync("IMove", "call", {0, 1, 2, 3, 4, 5, 6, 7});
  LogDatabase db(4);
  db.ingest_records(scribe.records());

  LogDatabase moved(std::move(db));
  EXPECT_EQ(moved.size(), 4u);
  EXPECT_EQ(moved.chains().size(), 1u);
  EXPECT_EQ(moved.chain_events(scribe.chain()).size(), 4u);

  // The moved-to database keeps ingesting correctly.
  Scribe more;
  more.leaf_sync("IMove", "again", {8, 9, 10, 11, 12, 13, 14, 15});
  moved.ingest_records(more.records());
  EXPECT_EQ(moved.size(), 8u);
  EXPECT_EQ(moved.chains().size(), 2u);
  EXPECT_EQ(moved.generation(), 2u);

  LogDatabase assigned(1);
  assigned = std::move(moved);
  EXPECT_EQ(assigned.shard_count(), 4u);
  EXPECT_EQ(assigned.size(), 8u);
  EXPECT_EQ(assigned.chains_since(1).size(), 1u);
}

TEST(DatabaseShardTest, ParallelIngestBigBatchMatchesSerial) {
  // One batch well past the parallel threshold (8192 records), so the
  // worker-pool scatter path actually runs -- under TSan this is the data
  // -race gate for the whole sharded ingest.
  LogDatabase source(1);
  workload::LogSynthConfig config;
  config.seed = 99;
  config.total_calls = 4'000;  // ~4 records per call => >= 12k records
  config.threads = 16;
  config.processes = 4;
  workload::synthesize_logs(config, source);
  ASSERT_GT(source.size(), 8192u);

  LogDatabase parallel(8);
  parallel.ingest_records(source.records());  // single big batch
  LogDatabase serial(1);
  serial.ingest_records(source.records());

  expect_same_database(serial, parallel);
  Dscg ref = Dscg::build(serial);
  Dscg got = Dscg::build(parallel);
  EXPECT_EQ(characterization_report(ref, serial),
            characterization_report(got, parallel));
}

}  // namespace
}  // namespace causeway::analysis
