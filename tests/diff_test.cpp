#include "analysis/diff.h"

#include <gtest/gtest.h>

#include "analysis_test_util.h"

namespace causeway::analysis {
namespace {

using monitor::CallKind;
using monitor::EventKind;
using testutil::Scribe;

// One leaf call of `fn` with client-side window [start, start+span].
void add_call(LogDatabase& db, std::string_view fn, Nanos span) {
  Scribe s;
  s.emit(EventKind::kStubStart, CallKind::kSync, "I", fn, 0, 0);
  s.emit(EventKind::kSkelStart, CallKind::kSync, "I", fn, 0, 0, "procB", 2);
  s.emit(EventKind::kSkelEnd, CallKind::kSync, "I", fn, 0, 0, "procB", 2);
  s.emit(EventKind::kStubEnd, CallKind::kSync, "I", fn, span, span);
  db.ingest_records(s.records());
}

TEST(Diff, ClassifiesRegressionsImprovementsAndStable) {
  LogDatabase base_db, cur_db;
  // slow_fn: 100 -> 200 us (regression); quick_fn: 400 -> 100 (improvement);
  // same_fn: 300 -> 310 (stable at 10% threshold).
  add_call(base_db, "slow_fn", 100'000);
  add_call(cur_db, "slow_fn", 200'000);
  add_call(base_db, "quick_fn", 400'000);
  add_call(cur_db, "quick_fn", 100'000);
  add_call(base_db, "same_fn", 300'000);
  add_call(cur_db, "same_fn", 310'000);

  auto base = Dscg::build(base_db);
  auto cur = Dscg::build(cur_db);
  const RunDiff diff = diff_runs(base, base_db, cur, cur_db);

  EXPECT_EQ(diff.metric, "latency");
  ASSERT_EQ(diff.regressions.size(), 1u);
  EXPECT_EQ(diff.regressions[0].function, "I::slow_fn");
  EXPECT_NEAR(diff.regressions[0].delta_pct(), 100.0, 1.0);
  ASSERT_EQ(diff.improvements.size(), 1u);
  EXPECT_EQ(diff.improvements[0].function, "I::quick_fn");
  ASSERT_EQ(diff.stable.size(), 1u);
  EXPECT_EQ(diff.stable[0].function, "I::same_fn");
  EXPECT_FALSE(diff.clean());
}

TEST(Diff, DetectsAddedAndRemovedFunctions) {
  LogDatabase base_db, cur_db;
  add_call(base_db, "old_only", 100'000);
  add_call(base_db, "shared", 100'000);
  add_call(cur_db, "shared", 100'000);
  add_call(cur_db, "new_only", 100'000);

  auto base = Dscg::build(base_db);
  auto cur = Dscg::build(cur_db);
  const RunDiff diff = diff_runs(base, base_db, cur, cur_db);
  ASSERT_EQ(diff.added.size(), 1u);
  EXPECT_EQ(diff.added[0], "I::new_only");
  ASSERT_EQ(diff.removed.size(), 1u);
  EXPECT_EQ(diff.removed[0], "I::old_only");
  EXPECT_TRUE(diff.clean());
}

TEST(Diff, ThresholdIsConfigurable) {
  LogDatabase base_db, cur_db;
  add_call(base_db, "fn", 100'000);
  add_call(cur_db, "fn", 120'000);  // +20%

  auto base = Dscg::build(base_db);
  auto cur = Dscg::build(cur_db);
  {
    DiffOptions options;
    options.threshold_pct = 25.0;
    auto base2 = Dscg::build(base_db);
    auto cur2 = Dscg::build(cur_db);
    const RunDiff diff = diff_runs(base2, base_db, cur2, cur_db, options);
    EXPECT_TRUE(diff.clean());
    EXPECT_EQ(diff.stable.size(), 1u);
  }
  {
    DiffOptions options;
    options.threshold_pct = 10.0;
    const RunDiff diff = diff_runs(base, base_db, cur, cur_db, options);
    EXPECT_FALSE(diff.clean());
  }
}

TEST(Diff, MultipleCallsAveragePerFunction) {
  LogDatabase base_db, cur_db;
  add_call(base_db, "fn", 100'000);
  add_call(base_db, "fn", 300'000);  // base mean 200
  add_call(cur_db, "fn", 400'000);
  add_call(cur_db, "fn", 400'000);  // cur mean 400

  auto base = Dscg::build(base_db);
  auto cur = Dscg::build(cur_db);
  const RunDiff diff = diff_runs(base, base_db, cur, cur_db);
  ASSERT_EQ(diff.regressions.size(), 1u);
  EXPECT_EQ(diff.regressions[0].base_calls, 2u);
  EXPECT_NEAR(diff.regressions[0].base_mean_us, 200'000 / 1e3, 1.0);
  EXPECT_NEAR(diff.regressions[0].current_mean_us, 400'000 / 1e3, 1.0);
}

TEST(Diff, ToStringListsEverySection) {
  LogDatabase base_db, cur_db;
  add_call(base_db, "reg", 100'000);
  add_call(cur_db, "reg", 300'000);
  add_call(base_db, "gone", 50'000);
  add_call(cur_db, "fresh", 50'000);

  auto base = Dscg::build(base_db);
  auto cur = Dscg::build(cur_db);
  const std::string text = diff_runs(base, base_db, cur, cur_db).to_string();
  EXPECT_NE(text.find("regressions"), std::string::npos);
  EXPECT_NE(text.find("I::reg"), std::string::npos);
  EXPECT_NE(text.find("added functions"), std::string::npos);
  EXPECT_NE(text.find("I::fresh"), std::string::npos);
  EXPECT_NE(text.find("removed functions"), std::string::npos);
  EXPECT_NE(text.find("I::gone"), std::string::npos);
}

}  // namespace
}  // namespace causeway::analysis
