// The epoch-driven pipeline's core contract: feeding a trace in N epochs
// renders byte-identically to feeding it in one, which in turn renders
// byte-identically to the offline free functions -- for every artifact
// (report, summary, CCSG XML, timeline, exports), in every probe mode,
// across mode flips, with anomaly events emitted exactly once.
#include <algorithm>
#include <span>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "analysis/anomaly.h"
#include "analysis/ccsg.h"
#include "analysis/cpu.h"
#include "analysis/dscg.h"
#include "analysis/export.h"
#include "analysis/latency.h"
#include "analysis/pipeline.h"
#include "analysis/report.h"
#include "analysis/timeline.h"
#include "analysis_test_util.h"
#include "orb/domain.h"
#include "workload/synthetic.h"

namespace causeway::analysis {
namespace {

using monitor::CallKind;
using monitor::EventKind;
using monitor::ProbeMode;
using monitor::TraceRecord;
using testutil::Scribe;

struct Renders {
  std::string report, summary, ccsg, timeline, text, json;

  bool operator==(const Renders&) const = default;
};

// The ground truth: the offline free functions over a one-shot database.
Renders offline_renders(std::span<const TraceRecord> records) {
  Renders out;
  LogDatabase db;
  db.ingest_records(records);
  Dscg dscg = Dscg::build(db);
  const ProbeMode mode = db.primary_mode();
  if (mode == ProbeMode::kLatency) {
    annotate_latency(dscg);
  } else if (mode == ProbeMode::kCpu) {
    annotate_cpu(dscg);
  }
  out.text = to_text(dscg, {});
  out.json = to_json(dscg, {});
  out.ccsg = Ccsg::build(dscg).to_xml();
  out.timeline = timeline_to_text(build_timeline(dscg));
  out.report = characterization_report(dscg, db);
  out.summary = summary_json(dscg, db);
  return out;
}

Renders pipeline_renders(AnalysisPipeline& pipeline) {
  Renders out;
  out.report = pipeline.report();
  out.summary = pipeline.summary();
  out.ccsg = pipeline.ccsg_xml();
  out.timeline = pipeline.timeline_text();
  out.text = pipeline.export_text();
  out.json = pipeline.export_json();
  return out;
}

void expect_equal(const Renders& got, const Renders& want) {
  EXPECT_EQ(got.report, want.report);
  EXPECT_EQ(got.summary, want.summary);
  EXPECT_EQ(got.ccsg, want.ccsg);
  EXPECT_EQ(got.timeline, want.timeline);
  EXPECT_EQ(got.text, want.text);
  EXPECT_EQ(got.json, want.json);
}

// A realistic multi-domain trace: cross-process sync calls, oneway spawn
// cascades, several processor types.  Returns the whole bundle -- the
// records' string_views point into its interned pool.
monitor::CollectedLogs synthetic_trace(ProbeMode mode,
                                       std::size_t transactions) {
  workload::SyntheticConfig config;
  config.domains = 3;
  config.components = 10;
  config.interfaces = 5;
  config.levels = 3;
  config.max_children = 2;
  config.oneway_fraction = 0.25;
  config.processor_kinds = 2;
  config.monitor.mode = mode;
  orb::Fabric fabric;
  workload::SyntheticSystem system(fabric, config);
  system.run_transactions(transactions);
  system.wait_quiescent();
  return system.collect();
}

// Splits `records` into `n` deliberately uneven slices; boundaries land in
// the middle of calls and chains, which is exactly what a drain epoch does.
std::vector<std::span<const TraceRecord>> uneven_slices(
    const std::vector<TraceRecord>& records, std::size_t n) {
  std::vector<std::span<const TraceRecord>> out;
  std::size_t begin = 0;
  for (std::size_t i = 0; i < n && begin < records.size(); ++i) {
    std::size_t len = (records.size() / n) + (i % 3) * 7 + 1;
    len = std::min(len, records.size() - begin);
    if (i + 1 == n) len = records.size() - begin;
    out.push_back(std::span(records).subspan(begin, len));
    begin += len;
  }
  if (begin < records.size()) {
    out.push_back(std::span(records).subspan(begin));
  }
  return out;
}

class PipelineEquivalence : public ::testing::TestWithParam<ProbeMode> {};

TEST_P(PipelineEquivalence, OneEpochMatchesOffline) {
  const auto logs = synthetic_trace(GetParam(), 4);
  const auto& records = logs.records;
  ASSERT_FALSE(records.empty());

  AnalysisPipeline pipeline;
  const EpochInfo info = pipeline.ingest_records(records);
  EXPECT_EQ(info.new_records, records.size());
  EXPECT_EQ(pipeline.epochs_ingested(), 1u);

  expect_equal(pipeline_renders(pipeline), offline_renders(records));
}

TEST_P(PipelineEquivalence, ManyEpochsMatchOneEpoch) {
  const auto logs = synthetic_trace(GetParam(), 4);
  const auto& records = logs.records;
  ASSERT_FALSE(records.empty());

  AnalysisPipeline incremental;
  for (const auto slice : uneven_slices(records, 9)) {
    incremental.ingest_records(slice);
    // Render between epochs: exercises cache invalidation, and must not
    // perturb what later epochs produce.
    (void)incremental.report();
    (void)incremental.ccsg_xml();
  }
  EXPECT_GE(incremental.epochs_ingested(), 2u);

  AnalysisPipeline batch;
  batch.ingest_records(records);

  const Renders want = offline_renders(records);
  expect_equal(pipeline_renders(incremental), pipeline_renders(batch));
  expect_equal(pipeline_renders(incremental), want);
}

INSTANTIATE_TEST_SUITE_P(Modes, PipelineEquivalence,
                         ::testing::Values(ProbeMode::kLatency,
                                           ProbeMode::kCpu,
                                           ProbeMode::kCausalityOnly),
                         [](const auto& info) {
                           switch (info.param) {
                             case ProbeMode::kLatency: return "latency";
                             case ProbeMode::kCpu: return "cpu";
                             default: return "causality";
                           }
                         });

// Primary mode flipping mid-stream (a latency-instrumented deployment later
// dominated by CPU-mode domains) forces the full re-annotation path; the
// result must still match an offline build over everything.
TEST(PipelineModeFlip, FlipMatchesOffline) {
  const auto latency_logs = synthetic_trace(ProbeMode::kLatency, 1);
  const auto cpu_logs = synthetic_trace(ProbeMode::kCpu, 3);
  const auto& latency = latency_logs.records;
  const auto& cpu = cpu_logs.records;
  ASSERT_GT(cpu.size(), latency.size());  // the flip must actually happen

  AnalysisPipeline pipeline;
  EpochInfo first = pipeline.ingest_records(latency);
  EXPECT_EQ(first.mode, ProbeMode::kLatency);
  EXPECT_FALSE(first.mode_changed);
  (void)pipeline.report();  // populate caches pre-flip

  EpochInfo second = pipeline.ingest_records(cpu);
  EXPECT_EQ(second.mode, ProbeMode::kCpu);
  EXPECT_TRUE(second.mode_changed);

  std::vector<TraceRecord> all(latency);
  all.insert(all.end(), cpu.begin(), cpu.end());
  expect_equal(pipeline_renders(pipeline), offline_renders(all));
}

TEST(PipelineAnomalies, EventsEmitOnceAcrossRescans) {
  std::vector<AnomalyEvent> events;
  CallbackAnomalySink sink(
      [&](const AnomalyEvent& e) { events.push_back(e); });

  AnalysisPipeline pipeline;
  pipeline.add_sink(&sink);

  // Epoch 1: a failing sync call, plus a seq gap (abnormal transition).
  Scribe s;
  s.emit(EventKind::kStubStart, CallKind::kSync, "I", "F", 0, 1);
  s.emit(EventKind::kSkelStart, CallKind::kSync, "I", "F", 2, 3, "procB", 2);
  s.emit(EventKind::kSkelEnd, CallKind::kSync, "I", "F", 4, 5, "procB", 2)
      .outcome = monitor::CallOutcome::kAppError;
  s.emit(EventKind::kStubEnd, CallKind::kSync, "I", "F", 6, 7).outcome =
      monitor::CallOutcome::kAppError;
  s.emit(EventKind::kStubStart, CallKind::kSync, "I", "G", 8, 9).seq += 5;
  pipeline.ingest_records(s.records());

  const auto count = [&](AnomalyKind kind) {
    return std::count_if(events.begin(), events.end(),
                         [&](const AnomalyEvent& e) { return e.kind == kind; });
  };
  EXPECT_EQ(count(AnomalyKind::kCallFailure), 1);
  const auto transitions_after_first = count(AnomalyKind::kAbnormalTransition);
  EXPECT_GE(transitions_after_first, 1);

  // Epoch 2: the chain grows -- the open call completes.  The rebuild
  // re-parses everything (including the already-reported failure and gap),
  // but previously reported findings must not re-emit.
  s.records().clear();
  s.emit(EventKind::kStubEnd, CallKind::kSync, "I", "G", 10, 11).seq = 11;
  pipeline.ingest_records(s.records());

  EXPECT_EQ(count(AnomalyKind::kCallFailure), 1);  // still exactly one
  EXPECT_EQ(count(AnomalyKind::kAbnormalTransition), transitions_after_first);

  // Epoch 3: collection-tier drops surface as one drop-spike event.
  monitor::CollectedLogs logs;
  logs.epoch = 3;
  logs.dropped = 17;
  pipeline.ingest(logs);
  EXPECT_EQ(count(AnomalyKind::kDropSpike), 1);
  ASSERT_GE(events.size(), 1u);
  const auto spike = std::find_if(
      events.begin(), events.end(),
      [](const AnomalyEvent& e) { return e.kind == AnomalyKind::kDropSpike; });
  EXPECT_NE(spike->detail.find("17 records"), std::string::npos);
  EXPECT_EQ(pipeline.anomaly_events(), events.size());
}

TEST(PipelineBasics, PassOrderAndLiveSummary) {
  AnalysisPipeline pipeline;
  const auto names = pipeline.pass_names();
  const std::vector<std::string_view> want{"dscg",   "annotate", "anomaly",
                                           "ccsg",   "report",   "timeline",
                                           "export"};
  EXPECT_EQ(names, want);

  Scribe s;
  s.leaf_sync("I", "F", {0, 1, 2, 3, 4, 5, 6, 7});
  pipeline.ingest_records(s.records());
  const std::string line = pipeline.live_summary();
  EXPECT_NE(line.find("+4 records"), std::string::npos);
  EXPECT_NE(line.find("1 chains"), std::string::npos);
}

// refresh() is the trace-reader path: append to database() directly, then
// let the passes catch up over everything new -- possibly several
// generations in one epoch.
TEST(PipelineRefresh, CatchesUpOverAppendedGenerations) {
  const auto logs = synthetic_trace(ProbeMode::kLatency, 2);
  const auto& records = logs.records;
  const auto slices = uneven_slices(records, 4);

  AnalysisPipeline pipeline;
  for (const auto slice : slices) pipeline.database().ingest_records(slice);
  const EpochInfo info = pipeline.refresh();
  EXPECT_EQ(info.new_records, records.size());
  EXPECT_EQ(pipeline.epochs_ingested(), 1u);

  expect_equal(pipeline_renders(pipeline), offline_renders(records));

  // A refresh with nothing new is a no-op epoch.
  const EpochInfo idle = pipeline.refresh();
  EXPECT_EQ(idle.new_records, 0u);
  EXPECT_TRUE(idle.scope.affected_roots.empty());
}

}  // namespace
}  // namespace causeway::analysis
