// Tailing a growing trace file: TraceTail must deliver each appended
// segment exactly once, tolerate a partially-written tail (retry, not
// fatal), reject a file that shrinks, and -- driven through the pipeline --
// converge to the same bytes an offline run over the finished file renders.
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "analysis/pipeline.h"
#include "analysis/trace_io.h"
#include "analysis_test_util.h"

namespace causeway::analysis {
namespace {

using monitor::CallKind;
using monitor::EventKind;
using monitor::TraceRecord;
using testutil::Scribe;

std::string temp_path(const char* name) {
  return std::string(::testing::TempDir()) + name;
}

monitor::CollectedLogs bundle_of(std::vector<TraceRecord> records,
                                 std::uint64_t epoch) {
  monitor::CollectedLogs logs;
  logs.epoch = epoch;
  logs.records = std::move(records);
  return logs;
}

void append_raw(const std::string& path, const std::uint8_t* data,
                std::size_t size) {
  std::ofstream out(path, std::ios::binary | std::ios::app);
  out.write(reinterpret_cast<const char*>(data),
            static_cast<std::streamsize>(size));
  ASSERT_TRUE(out.good());
}

TEST(TraceTail, ProgressiveSegmentsConvergeToOfflineBytes) {
  const std::string path = temp_path("tail_progressive.cwt");
  std::remove(path.c_str());

  // Three drain epochs over one growing chain plus one independent chain.
  Scribe a;
  a.leaf_sync("Tail::I", "first", {0, 1, 2, 3, 4, 5, 6, 7});
  Scribe b;
  b.leaf_sync("Tail::I", "other", {10, 11, 12, 13, 14, 15, 16, 17},
              "procC", "procD");
  Scribe c;
  c.leaf_sync("Tail::J", "third", {20, 21, 22, 23, 24, 25, 26, 27});

  TraceWriter writer(path);
  AnalysisPipeline live;
  TraceTail tail(path);

  std::size_t total = 0;
  for (Scribe* s : {&a, &b, &c}) {
    writer.append(bundle_of(s->records(), writer.segments() + 1));
    const std::size_t n = tail.poll(live.database());
    EXPECT_EQ(n, s->records().size());
    total += n;
    live.refresh();
    // Renders at every intermediate state must not corrupt later ones.
    (void)live.report();
  }
  EXPECT_EQ(tail.segments(), 3u);
  EXPECT_EQ(tail.pending_bytes(), 0u);
  EXPECT_EQ(live.epochs_ingested(), 3u);
  EXPECT_EQ(live.database().size(), total);

  // Nothing new: a poll is a no-op.
  EXPECT_EQ(tail.poll(live.database()), 0u);

  // Offline over the finished file renders the same bytes.
  AnalysisPipeline offline;
  EXPECT_EQ(read_trace_file(path, offline.database()), total);
  offline.refresh();
  EXPECT_EQ(live.report(), offline.report());
  EXPECT_EQ(live.summary(), offline.summary());
  EXPECT_EQ(live.ccsg_xml(), offline.ccsg_xml());
  EXPECT_EQ(live.timeline_text(), offline.timeline_text());
}

TEST(TraceTail, PipelinePollMatchesOfflineRender) {
  const std::string path = temp_path("tail_pipeline.cwt");
  std::remove(path.c_str());

  Scribe a;
  a.leaf_sync("Tail::I", "first", {0, 1, 2, 3, 4, 5, 6, 7});
  Scribe b;
  b.leaf_sync("Tail::I", "other", {10, 11, 12, 13, 14, 15, 16, 17},
              "procC", "procD");
  Scribe c;
  c.leaf_sync("Tail::J", "third", {20, 21, 22, 23, 24, 25, 26, 27});

  AnalysisPipeline live;
  TraceTail tail(path);
  std::size_t total = 0;
  {
    TraceWriter writer(path);
    for (Scribe* s : {&a, &b, &c}) {
      writer.append(bundle_of(s->records(), writer.segments() + 1));
      // poll(pipeline): each decoded segment becomes one pipeline epoch
      // directly -- no staging buffer, no separate refresh().
      total += tail.poll(live);
    }
    writer.close();
    // The trailer the close wrote is consumed as metadata, not records.
    EXPECT_EQ(tail.poll(live), 0u);
    EXPECT_EQ(tail.pending_bytes(), 0u);
  }
  EXPECT_EQ(tail.segments(), 3u);
  EXPECT_EQ(live.epochs_ingested(), 3u);
  EXPECT_EQ(live.database().size(), total);

  AnalysisPipeline offline;
  EXPECT_EQ(read_trace_file(path, offline.database()), total);
  offline.refresh();
  EXPECT_EQ(live.report(), offline.report());
  EXPECT_EQ(live.summary(), offline.summary());
  EXPECT_EQ(live.ccsg_xml(), offline.ccsg_xml());
  EXPECT_EQ(live.timeline_text(), offline.timeline_text());
}

TEST(TraceTail, CatchUpPollDecodesManySegmentsAtOnce) {
  // A tail attaching to an already-long trace must catch up in one poll
  // (the parallel-decode path) and count every segment.
  const std::string path = temp_path("tail_catchup.cwt");
  std::remove(path.c_str());

  std::size_t written = 0;
  {
    TraceWriter writer(path);
    for (int epoch = 1; epoch <= 20; ++epoch) {
      Scribe s;
      const Nanos base = epoch * 100;
      s.leaf_sync("Tail::I", "burst",
                  {base, base + 1, base + 2, base + 3, base + 4, base + 5,
                   base + 6, base + 7});
      writer.append(
          bundle_of(s.records(), static_cast<std::uint64_t>(epoch)));
      written += s.records().size();
    }
    writer.close();
  }
  AnalysisPipeline pipeline;
  TraceTail tail(path);
  EXPECT_EQ(tail.poll(pipeline), written);
  EXPECT_EQ(tail.segments(), 20u);
  EXPECT_EQ(tail.pending_bytes(), 0u);
  EXPECT_EQ(pipeline.epochs_ingested(), 20u);
  EXPECT_EQ(pipeline.database().size(), written);
}

TEST(TraceTail, PartialTailIsRetriedNotFatal) {
  const std::string path = temp_path("tail_partial.cwt");
  std::remove(path.c_str());

  Scribe s;
  s.leaf_sync("Tail::I", "split", {0, 1, 2, 3, 4, 5, 6, 7});
  const auto bytes = encode_trace(bundle_of(s.records(), 1));
  ASSERT_GT(bytes.size(), 16u);

  // First half lands: an incomplete segment is "nothing yet", not an error.
  const std::size_t half = bytes.size() / 2;
  append_raw(path, bytes.data(), half);
  LogDatabase db;
  TraceTail tail(path);
  EXPECT_EQ(tail.poll(db), 0u);
  EXPECT_EQ(tail.pending_bytes(), half);
  EXPECT_EQ(tail.segments(), 0u);

  // Polling again without growth stays quiet.
  EXPECT_EQ(tail.poll(db), 0u);

  // The rest lands: the pending bytes complete into one segment.
  append_raw(path, bytes.data() + half, bytes.size() - half);
  EXPECT_EQ(tail.poll(db), s.records().size());
  EXPECT_EQ(tail.segments(), 1u);
  EXPECT_EQ(tail.pending_bytes(), 0u);
  EXPECT_EQ(tail.bytes_consumed(), bytes.size());
}

TEST(TraceTail, MissingFileIsQuietUntilItAppears) {
  const std::string path = temp_path("tail_missing.cwt");
  std::remove(path.c_str());

  LogDatabase db;
  TraceTail tail(path);
  EXPECT_EQ(tail.poll(db), 0u);  // writer has not started yet

  Scribe s;
  s.leaf_sync("Tail::I", "late", {0, 1, 2, 3, 4, 5, 6, 7});
  write_trace_file(path, bundle_of(s.records(), 1));
  EXPECT_EQ(tail.poll(db), s.records().size());
}

TEST(TraceTail, ShrinkingFileThrows) {
  const std::string path = temp_path("tail_shrink.cwt");
  std::remove(path.c_str());

  Scribe s;
  s.leaf_sync("Tail::I", "gone", {0, 1, 2, 3, 4, 5, 6, 7});
  write_trace_file(path, bundle_of(s.records(), 1));

  LogDatabase db;
  TraceTail tail(path);
  EXPECT_GT(tail.poll(db), 0u);

  // Truncate the file under the tail: that is a rewrite, not growth.
  { std::ofstream out(path, std::ios::binary | std::ios::trunc); }
  EXPECT_THROW(tail.poll(db), TraceIoError);
}

TEST(TraceTail, CorruptSegmentThrowsInsteadOfPending) {
  const std::string path = temp_path("tail_corrupt.cwt");
  std::remove(path.c_str());

  // A full-size blob of garbage: enough bytes to read a "magic" word that
  // does not match -- structural corruption, not an incomplete tail.
  std::vector<std::uint8_t> garbage(64, 0xAB);
  append_raw(path, garbage.data(), garbage.size());

  LogDatabase db;
  TraceTail tail(path);
  EXPECT_THROW(tail.poll(db), TraceIoError);
}

}  // namespace
}  // namespace causeway::analysis
