// Streaming-collection semantics: the SPSC ring store under concurrent
// append-while-drain load, epoch-tagged collector drains, and incremental
// database/DSCG updates converging to the offline result.
#include <algorithm>
#include <atomic>
#include <set>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "analysis/database.h"
#include "analysis/dscg.h"
#include "monitor/collector.h"
#include "monitor/log_store.h"
#include "monitor/runtime.h"

namespace causeway::monitor {
namespace {

TraceRecord tagged(std::uint64_t thread, std::uint64_t i) {
  TraceRecord r;
  r.chain = Uuid{thread + 1, i + 1};
  r.seq = i;
  r.interface_name = "Stress::Iface";
  r.function_name = "hammer";
  r.object_key = (thread << 32) | i;
  r.thread_ordinal = thread;
  return r;
}

// N producer threads hammer the store while a consumer drains in a loop:
// every record must come out exactly once, per-thread order preserved
// across the concatenated epochs, with nothing dropped.
TEST(ProcessLogStoreStream, AppendWhileDrainingLosesAndDuplicatesNothing) {
  constexpr std::size_t kThreads = 4;
  constexpr std::uint64_t kPerThread = 30000;

  ProcessLogStore store;
  std::atomic<std::size_t> finished{0};
  std::vector<std::thread> producers;
  producers.reserve(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    producers.emplace_back([&store, &finished, t] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        store.append(tagged(t, i));
      }
      finished.fetch_add(1, std::memory_order_release);
    });
  }

  // Drain concurrently with the producers, epoch after epoch.
  std::vector<TraceRecord> seen;
  while (finished.load(std::memory_order_acquire) < kThreads) {
    auto batch = store.drain();
    seen.insert(seen.end(), batch.begin(), batch.end());
  }
  for (auto& p : producers) p.join();
  // Final drain: everything published after the last mid-run epoch.
  auto tail = store.drain();
  seen.insert(seen.end(), tail.begin(), tail.end());

  EXPECT_EQ(store.dropped(), 0u);
  EXPECT_EQ(store.appended(), kThreads * kPerThread);
  ASSERT_EQ(seen.size(), kThreads * kPerThread);

  // No duplicates, nothing lost.
  std::set<std::uint64_t> keys;
  for (const auto& r : seen) keys.insert(r.object_key);
  EXPECT_EQ(keys.size(), kThreads * kPerThread);

  // Per-thread order survives epoch segmentation.
  std::vector<std::uint64_t> next(kThreads, 0);
  for (const auto& r : seen) {
    const auto t = r.thread_ordinal;
    const auto i = r.object_key & 0xffffffffu;
    EXPECT_EQ(i, next[t]) << "thread " << t << " out of order";
    next[t] = i + 1;
  }
  for (std::size_t t = 0; t < kThreads; ++t) EXPECT_EQ(next[t], kPerThread);

  EXPECT_EQ(store.size(), 0u);
  EXPECT_TRUE(store.snapshot().empty());
}

TEST(ProcessLogStoreStream, OverflowIsCountedNotSilent) {
  ProcessLogStore store(1024);
  ASSERT_EQ(store.ring_capacity(), 1024u);
  for (std::uint64_t i = 0; i < 5000; ++i) store.append(tagged(0, i));

  // The first `capacity` records were accepted in order; the rest counted.
  EXPECT_EQ(store.appended(), 1024u);
  EXPECT_EQ(store.dropped(), 5000u - 1024u);
  auto kept = store.snapshot();
  ASSERT_EQ(kept.size(), 1024u);
  EXPECT_EQ(kept.front().object_key, 0u);
  EXPECT_EQ(kept.back().object_key, 1023u);

  // Draining frees capacity for new appends; clear() resets the counter.
  store.drain();
  store.append(tagged(0, 9000));
  EXPECT_EQ(store.size(), 1u);
  store.clear();
  EXPECT_EQ(store.size(), 0u);
  EXPECT_EQ(store.dropped(), 0u);
}

TEST(ProcessLogStoreStream, SnapshotIsNonConsumingDrainConsumes) {
  ProcessLogStore store;
  for (std::uint64_t i = 0; i < 3; ++i) store.append(tagged(0, i));
  EXPECT_EQ(store.snapshot().size(), 3u);
  EXPECT_EQ(store.snapshot().size(), 3u);  // still there
  EXPECT_EQ(store.drain().size(), 3u);
  EXPECT_TRUE(store.drain().empty());
  EXPECT_EQ(store.size(), 0u);
  EXPECT_EQ(store.appended(), 3u);  // monotonic across drains
}

TEST(CollectorStream, DrainTagsEpochsAndReportsDropDeltas) {
  MonitorRuntime rt(DomainIdentity{"proc", "node", "x86"},
                    MonitorConfig{true, ProbeMode::kCausalityOnly, 16},
                    ClockDomain{});
  Collector collector;
  collector.attach(&rt);

  for (std::uint64_t i = 0; i < 20; ++i) rt.store().append(tagged(0, i));
  CollectedLogs first = collector.drain();
  EXPECT_EQ(first.epoch, 1u);
  EXPECT_EQ(first.records.size(), 16u);
  EXPECT_EQ(first.dropped, 4u);
  ASSERT_EQ(first.domains.size(), 1u);
  EXPECT_EQ(first.domains[0].identity.process_name, "proc");
  EXPECT_EQ(first.domains[0].record_count, 16u);

  // An idle epoch still announces the domain, with a zero count and no
  // double-counted drops.
  CollectedLogs idle = collector.drain();
  EXPECT_EQ(idle.epoch, 2u);
  EXPECT_TRUE(idle.records.empty());
  EXPECT_EQ(idle.dropped, 0u);
  ASSERT_EQ(idle.domains.size(), 1u);
  EXPECT_EQ(idle.domains[0].record_count, 0u);

  // Fresh overflow after the drain shows up as the next epoch's delta.
  for (std::uint64_t i = 0; i < 20; ++i) rt.store().append(tagged(0, 100 + i));
  CollectedLogs third = collector.drain();
  EXPECT_EQ(third.epoch, 3u);
  EXPECT_EQ(third.records.size(), 16u);
  EXPECT_EQ(third.dropped, 4u);

  // collect() stays the offline view: cumulative drop count.
  CollectedLogs offline = collector.collect();
  EXPECT_EQ(offline.epoch, 0u);
  EXPECT_EQ(offline.dropped, 8u);
}

TEST(CollectorStream, DrainSamplesRingUtilizationBeforeConsuming) {
  MonitorRuntime rt(DomainIdentity{"proc", "node", "x86"},
                    MonitorConfig{true, ProbeMode::kCausalityOnly, 64},
                    ClockDomain{});
  Collector collector;
  collector.attach(&rt);

  EXPECT_DOUBLE_EQ(rt.store().max_ring_utilization(), 0.0);
  for (std::uint64_t i = 0; i < 32; ++i) rt.store().append(tagged(0, i));
  EXPECT_DOUBLE_EQ(rt.store().max_ring_utilization(), 0.5);

  // The bundle carries the occupancy the rings had when the drain began --
  // that is the pressure signal the adaptive cadence feeds on.
  CollectedLogs busy = collector.drain();
  EXPECT_DOUBLE_EQ(busy.ring_utilization, 0.5);
  EXPECT_DOUBLE_EQ(rt.store().max_ring_utilization(), 0.0);  // consumed

  CollectedLogs idle = collector.drain();
  EXPECT_DOUBLE_EQ(idle.ring_utilization, 0.0);
}

// The cadence policy, point by point: overflow halves, hot rings shorten,
// idle rings stretch, everything clamps to [base/4, base*4].
TEST(AdaptiveCadence, PolicyShapesInterval) {
  constexpr std::uint64_t kBase = 48;

  // Steady state: moderate occupancy holds the interval.
  EXPECT_EQ(adaptive_interval_ms(kBase, kBase, 0, 0.3), kBase);

  // Drops dominate every other signal: halve.
  EXPECT_EQ(adaptive_interval_ms(kBase, kBase, 5, 0.05), kBase / 2);

  // Hot ring (no drops yet): shorten by a third.
  EXPECT_EQ(adaptive_interval_ms(kBase, kBase, 0, 0.8), kBase * 2 / 3);

  // Near-idle: stretch by half.
  EXPECT_EQ(adaptive_interval_ms(kBase, kBase, 0, 0.01), kBase * 3 / 2);

  // Repeated overflow converges onto the floor, never below it.
  std::uint64_t ms = kBase;
  for (int i = 0; i < 10; ++i) ms = adaptive_interval_ms(ms, kBase, 1, 1.0);
  EXPECT_EQ(ms, kBase / 4);

  // Repeated idling converges onto the ceiling, never above it.
  ms = kBase;
  for (int i = 0; i < 10; ++i) ms = adaptive_interval_ms(ms, kBase, 0, 0.0);
  EXPECT_EQ(ms, kBase * 4);

  // A 1 ms base still makes progress in both directions.
  EXPECT_EQ(adaptive_interval_ms(1, 1, 0, 0.0), 2u);
  EXPECT_EQ(adaptive_interval_ms(4, 1, 1, 1.0), 2u);
  EXPECT_GE(adaptive_interval_ms(1, 1, 1, 1.0), 1u);
}

}  // namespace
}  // namespace causeway::monitor

namespace causeway::analysis {
namespace {

using monitor::CallKind;
using monitor::EventKind;
using monitor::TraceRecord;

TraceRecord event(const Uuid& chain, std::uint64_t seq, EventKind e,
                  CallKind kind = CallKind::kSync) {
  TraceRecord r;
  r.chain = chain;
  r.seq = seq;
  r.event = e;
  r.kind = kind;
  r.interface_name = "Inc::Iface";
  r.function_name = "step";
  r.process_name = "proc";
  r.node_name = "node";
  r.processor_type = "x86";
  return r;
}

void sync_call(std::vector<TraceRecord>& out, const Uuid& chain,
               std::uint64_t& seq) {
  out.push_back(event(chain, ++seq, EventKind::kStubStart));
  out.push_back(event(chain, ++seq, EventKind::kSkelStart));
  out.push_back(event(chain, ++seq, EventKind::kSkelEnd));
  out.push_back(event(chain, ++seq, EventKind::kStubEnd));
}

TEST(IncrementalAnalysis, DscgUpdateMatchesFreshBuildAcrossBatches) {
  const Uuid a{1, 1}, b{2, 2}, c{3, 3};

  LogDatabase db;
  EXPECT_EQ(db.generation(), 0u);

  // Batch 1: chain A = one sync call, then a oneway spawn of chain B whose
  // child events have not arrived yet.
  std::vector<TraceRecord> batch1;
  std::uint64_t seq_a = 0;
  sync_call(batch1, a, seq_a);
  TraceRecord spawn = event(a, ++seq_a, EventKind::kStubStart, CallKind::kOneway);
  spawn.spawned_chain = b;
  batch1.push_back(spawn);
  batch1.push_back(event(a, ++seq_a, EventKind::kStubEnd, CallKind::kOneway));
  db.ingest_records(batch1);
  EXPECT_EQ(db.generation(), 1u);

  Dscg dscg = Dscg::build(db);
  EXPECT_FALSE(dscg.stale(db));
  EXPECT_EQ(dscg.chains().size(), 1u);
  EXPECT_EQ(dscg.roots().size(), 1u);

  // Batch 2: chain B's skeleton-side events arrive, plus a new chain C.
  std::vector<TraceRecord> batch2;
  batch2.push_back(event(b, 1, EventKind::kSkelStart, CallKind::kOneway));
  batch2.push_back(event(b, 2, EventKind::kSkelEnd, CallKind::kOneway));
  std::uint64_t seq_c = 0;
  sync_call(batch2, c, seq_c);
  db.ingest_records(batch2);
  EXPECT_EQ(db.generation(), 2u);
  EXPECT_TRUE(dscg.stale(db));
  EXPECT_EQ(db.chains_since(1).size(), 2u);  // B and C, not A

  // Incremental update rebuilds only the two dirty chains, yet the spawn
  // edge from (unchanged) A now resolves to B.
  EXPECT_EQ(dscg.update(db), 2u);
  EXPECT_EQ(dscg.chains().size(), 3u);
  ASSERT_NE(dscg.find_chain(b), nullptr);
  EXPECT_EQ(dscg.roots().size(), 2u);  // A and C; B hangs under A
  bool b_is_root = false;
  for (const ChainTree* t : dscg.roots()) b_is_root |= (t->chain == b);
  EXPECT_FALSE(b_is_root);

  // Batch 3: more events on A (rebuilds A; the spawn edge must survive).
  std::vector<TraceRecord> batch3;
  sync_call(batch3, a, seq_a);
  db.ingest_records(batch3);
  EXPECT_EQ(dscg.update(db), 1u);

  // The incrementally maintained graph matches a from-scratch build.
  Dscg fresh = Dscg::build(db);
  EXPECT_EQ(dscg.chains().size(), fresh.chains().size());
  EXPECT_EQ(dscg.roots().size(), fresh.roots().size());
  EXPECT_EQ(dscg.call_count(), fresh.call_count());
  EXPECT_EQ(dscg.anomaly_count(), fresh.anomaly_count());
  for (std::size_t i = 0; i < dscg.chains().size(); ++i) {
    EXPECT_EQ(dscg.chains()[i]->chain, fresh.chains()[i]->chain);
  }

  // A's spawn site still hangs B after A's rebuild.
  const ChainTree* a_tree = dscg.find_chain(a);
  ASSERT_NE(a_tree, nullptr);
  bool linked = false;
  for (const auto& child : a_tree->root->children) {
    for (const ChainTree* s : child->spawned) linked |= (s->chain == b);
  }
  EXPECT_TRUE(linked);

  // An update with no new data is a no-op.
  EXPECT_EQ(dscg.update(db), 0u);
}

TEST(IncrementalAnalysis, DomainEntriesMergeAcrossEpochBundles) {
  monitor::CollectedLogs epoch1;
  epoch1.epoch = 1;
  epoch1.dropped = 2;
  epoch1.domains.push_back(
      {monitor::DomainIdentity{"p1", "n1", "x86"},
       monitor::ProbeMode::kCausalityOnly, 3});
  std::uint64_t seq = 0;
  sync_call(epoch1.records, Uuid{9, 9}, seq);

  monitor::CollectedLogs epoch2;
  epoch2.epoch = 2;
  epoch2.dropped = 1;
  epoch2.domains.push_back(
      {monitor::DomainIdentity{"p1", "n1", "x86"},
       monitor::ProbeMode::kCausalityOnly, 4});
  epoch2.domains.push_back(
      {monitor::DomainIdentity{"p2", "n2", "arm"},
       monitor::ProbeMode::kCausalityOnly, 1});
  sync_call(epoch2.records, Uuid{9, 9}, seq);

  LogDatabase db;
  db.ingest(epoch1);
  db.ingest(epoch2);

  ASSERT_EQ(db.domains().size(), 2u);  // p1 merged, not duplicated
  EXPECT_EQ(db.domains()[0].process_name, "p1");
  EXPECT_EQ(db.domains()[0].record_count, 7u);  // 3 + 4
  EXPECT_EQ(db.domains()[1].process_name, "p2");
  EXPECT_EQ(db.overflow_dropped(), 3u);
  EXPECT_EQ(db.last_epoch(), 2u);
}

// Parallel rebuild path: enough dirty chains to cross the worker-pool
// threshold, verified against the sequential from-scratch result.
TEST(IncrementalAnalysis, ParallelChainRebuildMatchesSequential) {
  LogDatabase db;
  std::vector<TraceRecord> batch;
  for (std::uint64_t n = 0; n < 64; ++n) {
    const Uuid chain{n + 10, n + 10};
    std::uint64_t seq = 0;
    sync_call(batch, chain, seq);
    sync_call(batch, chain, seq);
  }
  db.ingest_records(batch);

  Dscg dscg;
  EXPECT_EQ(dscg.update(db), 64u);
  EXPECT_EQ(dscg.chains().size(), 64u);
  EXPECT_EQ(dscg.roots().size(), 64u);
  EXPECT_EQ(dscg.call_count(), 128u);
  EXPECT_EQ(dscg.anomaly_count(), 0u);
  for (std::size_t i = 0; i < 64; ++i) {
    EXPECT_EQ(dscg.chains()[i]->chain, db.chains()[i]);
  }
}

}  // namespace
}  // namespace causeway::analysis
