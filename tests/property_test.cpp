// Property sweeps: randomized workloads and log streams must uphold the
// reconstruction invariants for every seed.
#include <gtest/gtest.h>

#include "analysis/cpu.h"
#include "analysis/dscg.h"
#include "analysis/latency.h"
#include "analysis/trace_io.h"
#include "monitor/tss.h"
#include "workload/logsynth.h"
#include "workload/synthetic.h"

namespace causeway {
namespace {

class LogSynthProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(LogSynthProperty, CleanLogsReconstructPerfectly) {
  workload::LogSynthConfig config;
  config.seed = GetParam();
  config.total_calls = 3000;
  config.max_depth = 6;
  config.max_children = 3;
  config.oneway_fraction = 0.08;

  analysis::LogDatabase db;
  const auto stats = workload::synthesize_logs(config, db);

  auto dscg = analysis::Dscg::build(db);
  // Invariant 1: no anomalies on clean logs.
  EXPECT_EQ(dscg.anomaly_count(), 0u);

  // Invariant 2: node count = calls + oneway double-counting.
  std::size_t oneway_stub_nodes = 0;
  std::size_t nodes = 0;
  dscg.visit([&](const analysis::CallNode& node, int) {
    ++nodes;
    if (node.kind == monitor::CallKind::kOneway &&
        node.record(monitor::EventKind::kStubStart)) {
      ++oneway_stub_nodes;
    }
  });
  EXPECT_EQ(dscg.call_count(), stats.calls + oneway_stub_nodes);

  // Invariant 3: visit covers exactly the whole graph (every chain either a
  // root or linked under a spawner).
  EXPECT_EQ(nodes, dscg.call_count());

  // Invariant 4: every non-oneway node has all four probe records.
  dscg.visit([&](const analysis::CallNode& node, int) {
    if (node.kind == monitor::CallKind::kOneway) return;
    for (int e = 0; e < 4; ++e) {
      EXPECT_TRUE(node.rec[e].has_value());
    }
  });

  // Invariant 5: latency annotation covers every node (latency-mode logs).
  auto report = analysis::annotate_latency(dscg);
  EXPECT_EQ(report.skipped, 0u);
  EXPECT_EQ(report.annotated, dscg.call_count());
}

TEST_P(LogSynthProperty, DamagedLogsNeverCrashAndAreFlagged) {
  workload::LogSynthConfig config;
  config.seed = GetParam() * 1000 + 7;
  config.total_calls = 1200;
  config.drop_fraction = 0.05;
  config.duplicate_fraction = 0.03;

  analysis::LogDatabase db;
  const auto stats = workload::synthesize_logs(config, db);
  EXPECT_GT(stats.dropped + stats.duplicated, 0u);

  auto dscg = analysis::Dscg::build(db);
  EXPECT_GT(dscg.anomaly_count(), 0u);
  // Damage never inflates the call count beyond duplicated starts.
  EXPECT_LE(dscg.call_count(), stats.calls + stats.duplicated + stats.chains);
  analysis::annotate_latency(dscg);  // must not throw
}

INSTANTIATE_TEST_SUITE_P(Seeds, LogSynthProperty,
                         ::testing::Range<std::uint64_t>(1, 13));

class CpuLogSynthProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CpuLogSynthProperty, CpuStreamsAnnotateNonNegativeAndAdditive) {
  workload::LogSynthConfig config;
  config.seed = GetParam() + 500;
  config.mode = monitor::ProbeMode::kCpu;
  config.total_calls = 1500;

  analysis::LogDatabase db;
  workload::synthesize_logs(config, db);
  auto dscg = analysis::Dscg::build(db);
  ASSERT_EQ(dscg.anomaly_count(), 0u);
  analysis::annotate_cpu(dscg);

  // Invariants: SC >= 0 everywhere; DC_F equals the sum over immediate
  // children of (SC + DC) plus any spawned-chain charges.
  dscg.visit([&](const analysis::CallNode& node, int) {
    EXPECT_GE(node.self_cpu.total(), 0) << "seed " << GetParam();
    Nanos child_sum = 0;
    for (const auto& child : node.children) {
      child_sum += child->self_cpu.total() + child->descendant_cpu.total();
    }
    for (const analysis::ChainTree* spawned : node.spawned) {
      for (const auto& top : spawned->root->children) {
        child_sum += top->self_cpu.total() + top->descendant_cpu.total();
      }
    }
    EXPECT_EQ(node.descendant_cpu.total(), child_sum)
        << "seed " << GetParam();
  });
}

INSTANTIATE_TEST_SUITE_P(Seeds, CpuLogSynthProperty,
                         ::testing::Range<std::uint64_t>(1, 7));

class TraceIoProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TraceIoProperty, CodecPreservesEveryField) {
  workload::LogSynthConfig config;
  config.seed = GetParam() * 31;
  config.total_calls = 400;
  config.oneway_fraction = 0.2;
  analysis::LogDatabase source;
  workload::synthesize_logs(config, source);

  monitor::CollectedLogs logs;
  logs.records = source.records();
  const auto bytes = analysis::encode_trace(logs);
  analysis::LogDatabase decoded;
  ASSERT_EQ(analysis::decode_trace(bytes, decoded), source.size());

  ASSERT_EQ(decoded.size(), source.size());
  for (std::size_t i = 0; i < source.size(); ++i) {
    const auto& a = source.records()[i];
    const auto& b = decoded.records()[i];
    EXPECT_EQ(a.chain, b.chain);
    EXPECT_EQ(a.seq, b.seq);
    EXPECT_EQ(a.event, b.event);
    EXPECT_EQ(a.kind, b.kind);
    EXPECT_EQ(a.outcome, b.outcome);
    EXPECT_EQ(a.spawned_chain, b.spawned_chain);
    EXPECT_EQ(a.interface_name, b.interface_name);
    EXPECT_EQ(a.function_name, b.function_name);
    EXPECT_EQ(a.object_key, b.object_key);
    EXPECT_EQ(a.process_name, b.process_name);
    EXPECT_EQ(a.thread_ordinal, b.thread_ordinal);
    EXPECT_EQ(a.mode, b.mode);
    EXPECT_EQ(a.value_start, b.value_start);
    EXPECT_EQ(a.value_end, b.value_end);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TraceIoProperty,
                         ::testing::Range<std::uint64_t>(1, 6));

class SyntheticProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SyntheticProperty, LiveRunsReconstructCleanly) {
  monitor::tss_clear();
  orb::Fabric fabric;
  workload::SyntheticConfig config;
  config.seed = GetParam();
  config.domains = 2 + GetParam() % 3;
  config.components = 6 + (GetParam() * 3) % 10;
  config.interfaces = 3 + GetParam() % 4;
  config.methods_per_interface = 2 + GetParam() % 3;
  config.levels = 2 + GetParam() % 3;
  config.max_children = 1 + GetParam() % 3;
  config.oneway_fraction = 0.05 * static_cast<double>(GetParam() % 4);
  config.cpu_per_call = kNanosPerMicro;
  config.policy = static_cast<orb::PolicyKind>(GetParam() % 3);
  workload::SyntheticSystem system(fabric, config);

  system.run_transactions(3);
  system.wait_quiescent();

  analysis::LogDatabase db;
  db.ingest(system.collect());
  auto dscg = analysis::Dscg::build(db);
  EXPECT_EQ(dscg.anomaly_count(), 0u) << "seed " << GetParam();

  std::size_t oneway_stub_nodes = 0;
  dscg.visit([&](const analysis::CallNode& node, int) {
    if (node.kind == monitor::CallKind::kOneway &&
        node.record(monitor::EventKind::kStubStart)) {
      ++oneway_stub_nodes;
    }
  });
  EXPECT_EQ(dscg.call_count(),
            3 * system.calls_per_transaction() + oneway_stub_nodes)
      << "seed " << GetParam();
  monitor::tss_clear();
}

INSTANTIATE_TEST_SUITE_P(Seeds, SyntheticProperty,
                         ::testing::Range<std::uint64_t>(1, 9));

}  // namespace
}  // namespace causeway
