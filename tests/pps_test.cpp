// The Printing Pipeline Simulator end to end: topologies, probe modes,
// hostile clocks, typed exceptions, and the reconstructed job shape.
#include "pps/pps_system.h"

#include <gtest/gtest.h>

#include "analysis/ccsg.h"
#include "analysis/cpu.h"
#include "analysis/dscg.h"
#include "analysis/latency.h"
#include "monitor/tss.h"

namespace causeway::pps {
namespace {

class PpsTest : public ::testing::Test {
 protected:
  void SetUp() override { monitor::tss_clear(); }
  void TearDown() override { monitor::tss_clear(); }
};

analysis::Dscg analyze(PpsSystem& system, analysis::LogDatabase& db) {
  system.wait_quiescent();
  db.ingest(system.collect());
  return analysis::Dscg::build(db);
}

TEST_F(PpsTest, MonolithicJobShape) {
  orb::Fabric fabric;
  PpsConfig config;
  config.topology = PpsConfig::Topology::kMonolithic;
  config.cpu_scale = 0.1;
  PpsSystem system(fabric, config);

  EXPECT_EQ(system.domain_count(), 1u);
  EXPECT_EQ(system.submit_job(/*pages=*/2, /*dpi=*/300, /*color=*/true), 1);

  analysis::LogDatabase db;
  auto dscg = analyze(system, db);
  EXPECT_EQ(dscg.anomaly_count(), 0u);

  // submit at the top with the documented pipeline below it.
  ASSERT_EQ(dscg.roots().size(), 1u);
  const auto& tops = dscg.roots()[0]->root->children;
  ASSERT_EQ(tops.size(), 1u);
  const analysis::CallNode& submit = *tops[0];
  EXPECT_EQ(submit.function_name, "submit");
  EXPECT_EQ(submit.interface_name, "PPS::JobQueue");

  std::map<std::string_view, int> child_counts;
  for (const auto& c : submit.children) {
    child_counts[c->function_name]++;
  }
  EXPECT_EQ(child_counts["parse"], 1);
  EXPECT_EQ(child_counts["layout"], 1);
  EXPECT_EQ(child_counts["rasterize"], 2);   // one per page
  EXPECT_EQ(child_counts["compress"], 2);
  EXPECT_EQ(child_counts["mark"], 2);
  EXPECT_EQ(child_counts["spool"], 2);
  EXPECT_EQ(child_counts["notify"], 2);      // received + done

  // layout fans out to fonts and the resource manager.
  for (const auto& c : submit.children) {
    if (c->function_name == "layout") {
      std::set<std::string_view> grandchildren;
      for (const auto& g : c->children) grandchildren.insert(g->function_name);
      EXPECT_TRUE(grandchildren.contains("resolve"));
      EXPECT_TRUE(grandchildren.contains("reserve"));
      EXPECT_TRUE(grandchildren.contains("release_units"));
    }
    if (c->function_name == "rasterize") {
      ASSERT_EQ(c->children.size(), 1u);
      EXPECT_EQ(c->children[0]->function_name, "convert");
    }
  }

  // Oneway notifications spawned child chains hanging off the submit tree.
  std::size_t spawned = 0;
  dscg.visit([&](const analysis::CallNode& node, int) {
    spawned += node.spawned.size();
  });
  EXPECT_EQ(spawned, 2u);

  // Monolithic + collocation: every synchronous call is collocated.
  dscg.visit([&](const analysis::CallNode& node, int) {
    if (node.kind != monitor::CallKind::kOneway) {
      EXPECT_EQ(node.kind, monitor::CallKind::kCollocated);
    }
  });
}

TEST_F(PpsTest, FourProcessLatencyAnnotates) {
  orb::Fabric fabric;
  PpsConfig config;
  config.topology = PpsConfig::Topology::kFourProcess;
  config.cpu_scale = 0.1;
  PpsSystem system(fabric, config);
  EXPECT_EQ(system.domain_count(), 4u);
  system.submit_job(1, 150, false);

  analysis::LogDatabase db;
  auto dscg = analyze(system, db);
  EXPECT_EQ(dscg.anomaly_count(), 0u);

  auto report = analysis::annotate_latency(dscg);
  EXPECT_GT(report.annotated, 8u);
  EXPECT_EQ(report.skipped, 0u);

  // Remote calls crossed processes; latency must be positive everywhere and
  // the parent's latency must dominate any single child's.
  dscg.visit([&](const analysis::CallNode& node, int) {
    ASSERT_TRUE(node.latency.has_value());
    EXPECT_GE(*node.latency, 0);
  });
  const analysis::CallNode& submit = *dscg.roots()[0]->root->children[0];
  for (const auto& child : submit.children) {
    if (child->kind == monitor::CallKind::kOneway) continue;
    EXPECT_GT(*submit.latency, *child->latency);
  }
}

TEST_F(PpsTest, HostileClocksDoNotBreakAnalysis) {
  // Hours of skew and hundreds of ppm of drift across the four domains:
  // since analysis only differences same-domain samples, results stay sane.
  orb::Fabric fabric;
  PpsConfig config;
  config.topology = PpsConfig::Topology::kFourProcess;
  config.hostile_clocks = true;
  config.cpu_scale = 0.1;
  PpsSystem system(fabric, config);
  system.submit_job(1, 150, true);

  analysis::LogDatabase db;
  auto dscg = analyze(system, db);
  EXPECT_EQ(dscg.anomaly_count(), 0u);
  auto report = analysis::annotate_latency(dscg);
  EXPECT_EQ(report.skipped, 0u);
  dscg.visit([&](const analysis::CallNode& node, int) {
    ASSERT_TRUE(node.latency.has_value());
    EXPECT_GE(*node.latency, 0);
    EXPECT_LT(*node.latency, 60 * kNanosPerSecond);  // no hour-sized garbage
  });
}

TEST_F(PpsTest, CpuModeAndCcsg) {
  orb::Fabric fabric;
  PpsConfig config;
  config.topology = PpsConfig::Topology::kFourProcess;
  config.monitor.mode = monitor::ProbeMode::kCpu;
  config.cpu_scale = 0.5;
  PpsSystem system(fabric, config);
  system.submit_job(2, 300, true);
  system.submit_job(2, 300, true);

  analysis::LogDatabase db;
  auto dscg = analyze(system, db);
  EXPECT_EQ(dscg.anomaly_count(), 0u);

  auto report = analysis::annotate_cpu(dscg);
  EXPECT_GT(report.annotated, 10u);

  const analysis::CallNode& submit = *dscg.roots()[0]->root->children[0];
  EXPECT_GT(submit.self_cpu.total(), 0);
  EXPECT_GT(submit.descendant_cpu.total(), submit.self_cpu.total());

  analysis::Ccsg ccsg = analysis::Ccsg::build(dscg);
  EXPECT_GE(ccsg.roots().size(), 1u);
  const std::string xml = ccsg.to_xml();
  EXPECT_NE(xml.find("PPS::JobQueue"), std::string::npos);
  EXPECT_NE(xml.find("InvocationTimes=\"2\""), std::string::npos);
  EXPECT_NE(xml.find("DescendentCPUConsumption"), std::string::npos);
}

TEST_F(PpsTest, RejectedJobThrowsTypedExceptionAndKeepsChain) {
  orb::Fabric fabric;
  PpsConfig config;
  config.topology = PpsConfig::Topology::kMonolithic;
  config.cpu_scale = 0.1;
  PpsSystem system(fabric, config);

  try {
    system.submit_job(/*pages=*/0, 300, false);
    FAIL() << "expected PPS::JobRejected";
  } catch (const PPS::JobRejected& rejected) {
    EXPECT_EQ(rejected.reason, "job has no pages");
  }

  analysis::LogDatabase db;
  auto dscg = analyze(system, db);
  EXPECT_EQ(dscg.anomaly_count(), 0u);  // exception path logged all probes
}

TEST_F(PpsTest, OversizedJobRejectedViaIdlConst) {
  orb::Fabric fabric;
  PpsConfig config;
  config.topology = PpsConfig::Topology::kMonolithic;
  config.cpu_scale = 0.05;
  PpsSystem system(fabric, config);
  EXPECT_EQ(PPS::kMaxPagesPerJob, 512);
  try {
    system.submit_job(PPS::kMaxPagesPerJob + 1, 300, false);
    FAIL() << "expected PPS::JobRejected";
  } catch (const PPS::JobRejected& rejected) {
    EXPECT_NE(rejected.reason.find("kMaxPagesPerJob"), std::string::npos);
  }
}

TEST_F(PpsTest, PerComponentTopologyWorks) {
  orb::Fabric fabric;
  PpsConfig config;
  config.topology = PpsConfig::Topology::kPerComponent;
  config.cpu_scale = 0.05;
  PpsSystem system(fabric, config);
  EXPECT_EQ(system.domain_count(), 11u);
  system.submit_job(1, 100, false);

  analysis::LogDatabase db;
  auto dscg = analyze(system, db);
  EXPECT_EQ(dscg.anomaly_count(), 0u);
  // Calls spread across many processes.
  std::set<std::string_view> processes;
  for (const auto& r : db.records()) processes.insert(r.process_name);
  EXPECT_GE(processes.size(), 5u);
}

TEST_F(PpsTest, HybridComTopologyKeepsOneChainPerJob) {
  // The paper's CORBA/COM hybrid: ColorConverter and Compressor live in COM
  // apartments behind FTL-aware bridges; causality must still span the whole
  // pipeline as a single chain per job (plus oneway spawns).
  orb::Fabric fabric;
  PpsConfig config;
  config.topology = PpsConfig::Topology::kHybridCom;
  config.cpu_scale = 0.1;
  PpsSystem system(fabric, config);
  system.submit_job(2, 200, true);

  analysis::LogDatabase db;
  auto dscg = analyze(system, db);
  EXPECT_EQ(dscg.anomaly_count(), 0u);

  // Convert/compress bodies executed in the COM process.
  std::size_t com_hosted = 0;
  dscg.visit([&](const analysis::CallNode& node, int) {
    if (node.server_process() == "pps-com") {
      ++com_hosted;
      EXPECT_TRUE(node.function_name == "convert" ||
                  node.function_name == "compress");
    }
  });
  EXPECT_EQ(com_hosted, 4u);  // 2 pages x (convert + compress)

  // Still one main chain (the two oneway notifications spawn their own).
  std::size_t non_spawned_roots = 0;
  for (const auto& tree : dscg.roots()) {
    if (!tree->oneway_child) ++non_spawned_roots;
  }
  EXPECT_EQ(non_spawned_roots, 1u);

  // Latency annotates across the infrastructure boundary.
  auto report = analysis::annotate_latency(dscg);
  EXPECT_EQ(report.skipped, 0u);
}

TEST_F(PpsTest, ManualProbesCaptureGroundTruth) {
  orb::Fabric fabric;
  PpsConfig config;
  config.topology = PpsConfig::Topology::kMonolithic;
  config.cpu_scale = 0.2;
  ManualProbes manual;
  PpsSystem system(fabric, config, &manual);
  system.submit_job(2, 200, false);

  EXPECT_EQ(manual.samples("PPS::JobQueue::submit").size(), 1u);
  EXPECT_EQ(manual.samples("PPS::Rasterizer::rasterize").size(), 2u);
  EXPECT_GT(manual.mean_wall("PPS::JobQueue::submit"), 0.0);
  EXPECT_GT(manual.mean_cpu("PPS::JobQueue::submit"), 0.0);
  // The whole submit costs at least as much as any inner stage.
  EXPECT_GT(manual.mean_wall("PPS::JobQueue::submit"),
            manual.mean_wall("PPS::Rasterizer::rasterize"));
}

}  // namespace
}  // namespace causeway::pps
