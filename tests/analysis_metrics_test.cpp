// Checks the paper's latency and CPU formulas (Sec. 3.2) against
// hand-computed answers, plus the CCSG aggregation.
#include <gtest/gtest.h>

#include "analysis/ccsg.h"
#include "analysis/cpu.h"
#include "analysis/latency.h"
#include "analysis/stats.h"
#include "analysis_test_util.h"

namespace causeway::analysis {
namespace {

using monitor::CallKind;
using monitor::EventKind;
using monitor::ProbeMode;
using testutil::Scribe;

Dscg build_dscg(Scribe& scribe) {
  auto db = std::make_unique<LogDatabase>();
  db->ingest_records(scribe.records());
  // Intentionally leak-free: Dscg copies nothing from db except interned
  // views; keep db alive via static storage per test simplicity.
  static std::vector<std::unique_ptr<LogDatabase>> keep;
  keep.push_back(std::move(db));
  return Dscg::build(*keep.back());
}

TEST(Latency, LeafSyncCall) {
  Scribe s;
  // P1=(100,110) P2=(200,212) P3=(300,315) P4=(400,420)
  Nanos t[8] = {100, 110, 200, 212, 300, 315, 400, 420};
  s.leaf_sync("I", "F", t);
  Dscg dscg = build_dscg(s);
  auto report = annotate_latency(dscg);
  EXPECT_EQ(report.annotated, 1u);
  EXPECT_EQ(report.skipped, 0u);

  const CallNode& f = *dscg.roots()[0]->root->children[0];
  // L(F) = P4.start - P1.end - O_F; leaf has no descendants, O_F = 0.
  ASSERT_TRUE(f.latency.has_value());
  EXPECT_EQ(*f.latency, 400 - 110);
  EXPECT_EQ(f.latency_overhead, 0);
  EXPECT_EQ(*f.raw_latency, 290);
}

TEST(Latency, NestedCallSubtractsDescendantProbeCosts) {
  Scribe s;
  s.emit(EventKind::kStubStart, CallKind::kSync, "I", "F", 0, 10);
  s.emit(EventKind::kSkelStart, CallKind::kSync, "I", "F", 100, 110, "procB", 2);
  // child G: probe self-costs 5 + 7 + 9 + 11 = 32
  s.emit(EventKind::kStubStart, CallKind::kSync, "I", "G", 200, 205, "procB", 2);
  s.emit(EventKind::kSkelStart, CallKind::kSync, "I", "G", 300, 307, "procC", 3);
  s.emit(EventKind::kSkelEnd, CallKind::kSync, "I", "G", 400, 409, "procC", 3);
  s.emit(EventKind::kStubEnd, CallKind::kSync, "I", "G", 500, 511, "procB", 2);
  s.emit(EventKind::kSkelEnd, CallKind::kSync, "I", "F", 600, 610, "procB", 2);
  s.emit(EventKind::kStubEnd, CallKind::kSync, "I", "F", 700, 710);

  Dscg dscg = build_dscg(s);
  annotate_latency(dscg);
  const CallNode& f = *dscg.roots()[0]->root->children[0];
  const CallNode& g = *f.children[0];

  // G is a leaf: L = 500 - 205.
  EXPECT_EQ(*g.latency, 295);
  // F: raw = 700 - 10 = 690; O_F = G's probes (R={1,2,3,4}) = 5+7+9+11 = 32.
  EXPECT_EQ(f.latency_overhead, 32);
  EXPECT_EQ(*f.latency, 690 - 32);
}

TEST(Latency, CollocatedUsesSkeletonWindow) {
  Scribe s;
  Nanos t[8] = {100, 104, 110, 115, 300, 306, 310, 318};
  using monitor::EventKind;
  s.emit(EventKind::kStubStart, CallKind::kCollocated, "I", "F", t[0], t[1]);
  s.emit(EventKind::kSkelStart, CallKind::kCollocated, "I", "F", t[2], t[3]);
  s.emit(EventKind::kSkelEnd, CallKind::kCollocated, "I", "F", t[4], t[5]);
  s.emit(EventKind::kStubEnd, CallKind::kCollocated, "I", "F", t[6], t[7]);

  Dscg dscg = build_dscg(s);
  annotate_latency(dscg);
  const CallNode& f = *dscg.roots()[0]->root->children[0];
  // L = P3.start - P2.end = 300 - 115.
  EXPECT_EQ(*f.latency, 185);
}

TEST(Latency, OnewayBothSides) {
  // Stub side.
  Scribe stub_side;
  auto& start = stub_side.emit(EventKind::kStubStart, CallKind::kOneway, "I",
                               "notify", 100, 105);
  const Uuid child = Uuid::generate();
  start.spawned_chain = child;
  stub_side.emit(EventKind::kStubEnd, CallKind::kOneway, "I", "notify", 130,
                 136);

  // Skeleton side (the spawned chain).
  std::vector<monitor::TraceRecord> child_records;
  {
    monitor::TraceRecord r;
    r.chain = child;
    r.seq = 1;
    r.event = EventKind::kSkelStart;
    r.kind = CallKind::kOneway;
    r.interface_name = "I";
    r.function_name = "notify";
    r.process_name = "procB";
    r.node_name = "n";
    r.processor_type = "x86";
    r.mode = ProbeMode::kLatency;
    r.value_start = 500;
    r.value_end = 504;
    child_records.push_back(r);
    r.seq = 2;
    r.event = EventKind::kSkelEnd;
    r.value_start = 900;
    r.value_end = 903;
    child_records.push_back(r);
  }

  static std::vector<std::unique_ptr<LogDatabase>> keep;
  keep.push_back(std::make_unique<LogDatabase>());
  LogDatabase& db = *keep.back();
  db.ingest_records(stub_side.records());
  db.ingest_records(child_records);
  Dscg dscg = Dscg::build(db);
  auto report = annotate_latency(dscg);
  EXPECT_EQ(report.annotated, 2u);

  const CallNode& spawner = *dscg.roots()[0]->root->children[0];
  EXPECT_EQ(*spawner.latency, 130 - 105);  // stub-side dispatch latency
  const CallNode& callee = *spawner.spawned[0]->root->children[0];
  EXPECT_EQ(*callee.latency, 900 - 504);   // skeleton-side execution latency
}

TEST(Latency, WrongModeSkips) {
  Scribe s(ProbeMode::kCpu);
  Nanos t[8] = {0, 1, 2, 3, 4, 5, 6, 7};
  s.leaf_sync("I", "F", t);
  Dscg dscg = build_dscg(s);
  auto report = annotate_latency(dscg);
  EXPECT_EQ(report.annotated, 0u);
  EXPECT_EQ(report.skipped, 1u);
}

TEST(Cpu, SelfCpuSubtractsChildWindows) {
  Scribe s(ProbeMode::kCpu);
  // Values are cumulative per-thread CPU readings.
  // F's server thread (thread 2, procB).
  s.emit(EventKind::kStubStart, CallKind::kSync, "I", "F", 0, 2);
  s.emit(EventKind::kSkelStart, CallKind::kSync, "I", "F", 1000, 1010, "procB", 2, "pa-risc");
  // child G called from F's thread: stub windows burn caller CPU 1050->1080.
  s.emit(EventKind::kStubStart, CallKind::kSync, "I", "G", 1050, 1055, "procB", 2, "pa-risc");
  s.emit(EventKind::kSkelStart, CallKind::kSync, "I", "G", 500, 505, "procC", 3, "x86");
  s.emit(EventKind::kSkelEnd, CallKind::kSync, "I", "G", 700, 707, "procC", 3, "x86");
  s.emit(EventKind::kStubEnd, CallKind::kSync, "I", "G", 1074, 1080, "procB", 2, "pa-risc");
  s.emit(EventKind::kSkelEnd, CallKind::kSync, "I", "F", 1500, 1512, "procB", 2, "pa-risc");
  s.emit(EventKind::kStubEnd, CallKind::kSync, "I", "F", 10, 12);

  Dscg dscg = build_dscg(s);
  auto report = annotate_cpu(dscg);
  EXPECT_EQ(report.annotated, 2u);

  const CallNode& f = *dscg.roots()[0]->root->children[0];
  const CallNode& g = *f.children[0];
  // SC_G = P3.start - P2.end = 700 - 505 (no children).
  EXPECT_EQ(g.self_cpu.of("x86"), 195);
  EXPECT_TRUE(g.descendant_cpu.by_type.empty());
  // SC_F = (1500 - 1010) - (P_{G,4,end} - P_{G,1,start}) = 490 - (1080-1050).
  EXPECT_EQ(f.self_cpu.of("pa-risc"), 460);
  // DC_F = SC_G + DC_G as a per-processor-type vector.
  EXPECT_EQ(f.descendant_cpu.of("x86"), 195);
  EXPECT_EQ(f.descendant_cpu.of("pa-risc"), 0);
  EXPECT_EQ(f.descendant_cpu.total(), 195);
}

TEST(Cpu, NegativeSelfClampedByDefault) {
  Scribe s(ProbeMode::kCpu);
  s.emit(EventKind::kStubStart, CallKind::kSync, "I", "F", 0, 1);
  s.emit(EventKind::kSkelStart, CallKind::kSync, "I", "F", 100, 105, "procB", 2);
  // Child window larger than the whole body window (measurement noise).
  s.emit(EventKind::kStubStart, CallKind::kSync, "I", "G", 90, 95, "procB", 2);
  s.emit(EventKind::kSkelStart, CallKind::kSync, "I", "G", 10, 11, "procC", 3);
  s.emit(EventKind::kSkelEnd, CallKind::kSync, "I", "G", 20, 21, "procC", 3);
  s.emit(EventKind::kStubEnd, CallKind::kSync, "I", "G", 290, 295, "procB", 2);
  s.emit(EventKind::kSkelEnd, CallKind::kSync, "I", "F", 120, 125, "procB", 2);
  s.emit(EventKind::kStubEnd, CallKind::kSync, "I", "F", 2, 3);

  {
    Dscg dscg = build_dscg(s);
    annotate_cpu(dscg);
    const CallNode& f = *dscg.roots()[0]->root->children[0];
    EXPECT_EQ(f.self_cpu.total(), 0);  // clamped
  }
  {
    Dscg dscg = build_dscg(s);
    CpuOptions options;
    options.clamp_negative_self = false;
    annotate_cpu(dscg, options);
    const CallNode& f = *dscg.roots()[0]->root->children[0];
    EXPECT_LT(f.self_cpu.total(), 0);  // raw
  }
}

TEST(Cpu, SpawnedChainChargedToSpawner) {
  Scribe parent(ProbeMode::kCpu);
  const Uuid child = Uuid::generate();
  // Enclosing sync call F spawns oneway N.
  parent.emit(EventKind::kStubStart, CallKind::kSync, "I", "F", 0, 1);
  parent.emit(EventKind::kSkelStart, CallKind::kSync, "I", "F", 100, 102, "procB", 2);
  auto& spawn = parent.emit(EventKind::kStubStart, CallKind::kOneway, "I", "N",
                            110, 112, "procB", 2);
  spawn.spawned_chain = child;
  parent.emit(EventKind::kStubEnd, CallKind::kOneway, "I", "N", 118, 120, "procB", 2);
  parent.emit(EventKind::kSkelEnd, CallKind::kSync, "I", "F", 400, 402, "procB", 2);
  parent.emit(EventKind::kStubEnd, CallKind::kSync, "I", "F", 8, 9);

  std::vector<monitor::TraceRecord> child_records;
  {
    monitor::TraceRecord r;
    r.chain = child;
    r.seq = 1;
    r.event = EventKind::kSkelStart;
    r.kind = CallKind::kOneway;
    r.interface_name = "I";
    r.function_name = "N";
    r.process_name = "procD";
    r.node_name = "n";
    r.processor_type = "vxworks-ppc";
    r.mode = ProbeMode::kCpu;
    r.value_start = 1000;
    r.value_end = 1002;
    child_records.push_back(r);
    r.seq = 2;
    r.event = EventKind::kSkelEnd;
    r.value_start = 1502;
    r.value_end = 1503;
    child_records.push_back(r);
  }

  static std::vector<std::unique_ptr<LogDatabase>> keep;
  keep.push_back(std::make_unique<LogDatabase>());
  LogDatabase& db = *keep.back();
  db.ingest_records(parent.records());
  db.ingest_records(child_records);

  {
    Dscg dscg = Dscg::build(db);
    annotate_cpu(dscg);
    const CallNode& f = *dscg.roots()[0]->root->children[0];
    // Spawned N body: 1502 - 1002 = 500 on vxworks-ppc, charged into DC_F.
    EXPECT_EQ(f.descendant_cpu.of("vxworks-ppc"), 500);
    // SC_F = (400 - 102) - oneway stub window (120 - 110) = 288, attributed
    // to the processor type of F's serving domain.
    EXPECT_EQ(f.self_cpu.of("x86"), 288);
  }
  {
    Dscg dscg = Dscg::build(db);
    CpuOptions options;
    options.charge_spawned_chains = false;
    annotate_cpu(dscg, options);
    const CallNode& f = *dscg.roots()[0]->root->children[0];
    EXPECT_EQ(f.descendant_cpu.of("vxworks-ppc"), 0);
  }
}

TEST(Ccsg, MergesRepeatInvocationsByIdentity) {
  // Two transactions of F -> G on separate chains; CCSG merges both.
  static std::vector<std::unique_ptr<LogDatabase>> keep;
  keep.push_back(std::make_unique<LogDatabase>());
  LogDatabase& db = *keep.back();
  for (int i = 0; i < 2; ++i) {
    Scribe s(ProbeMode::kCpu);
    s.emit(EventKind::kStubStart, CallKind::kSync, "I", "F", 0, 1);
    s.emit(EventKind::kSkelStart, CallKind::kSync, "I", "F", 0, 0, "procB", 2);
    s.emit(EventKind::kStubStart, CallKind::kSync, "I", "G", 10, 11, "procB", 2);
    s.emit(EventKind::kSkelStart, CallKind::kSync, "I", "G", 0, 100, "procC", 3);
    s.emit(EventKind::kSkelEnd, CallKind::kSync, "I", "G", 400, 401, "procC", 3);
    s.emit(EventKind::kStubEnd, CallKind::kSync, "I", "G", 29, 30, "procB", 2);
    s.emit(EventKind::kSkelEnd, CallKind::kSync, "I", "F", 1000, 1001, "procB", 2);
    s.emit(EventKind::kStubEnd, CallKind::kSync, "I", "F", 5, 6);
    db.ingest_records(s.records());
  }

  Dscg dscg = Dscg::build(db);
  annotate_cpu(dscg);
  Ccsg ccsg = Ccsg::build(dscg);

  ASSERT_EQ(ccsg.roots().size(), 1u);  // both F invocations merged
  const CcsgNode& f = *ccsg.roots()[0];
  EXPECT_EQ(f.invocation_times, 2u);
  EXPECT_EQ(f.instance_ids().size(), 2u);
  ASSERT_EQ(f.children.size(), 1u);
  const CcsgNode& g = *f.children.begin()->second;
  EXPECT_EQ(g.invocation_times, 2u);
  EXPECT_EQ(ccsg.node_count(), 2u);

  // Per-invocation: SC_F = (1000-0) - (30-10) = 980; two invocations.
  EXPECT_EQ(f.self_cpu.total(), 2 * 980);
  // G: SC = 400-100 = 300 each.
  EXPECT_EQ(g.self_cpu.total(), 2 * 300);
  EXPECT_EQ(f.descendant_cpu.total(), 2 * 300);
}

TEST(Ccsg, XmlCarriesPaperFields) {
  static std::vector<std::unique_ptr<LogDatabase>> keep;
  keep.push_back(std::make_unique<LogDatabase>());
  LogDatabase& db = *keep.back();
  Scribe s(ProbeMode::kCpu);
  s.emit(EventKind::kStubStart, CallKind::kSync, "I", "F", 0, 0, "procA", 1,
         "x86", 17);
  s.emit(EventKind::kSkelStart, CallKind::kSync, "I", "F", 0, 0, "procB", 2,
         "pa-risc", 17);
  s.emit(EventKind::kSkelEnd, CallKind::kSync, "I", "F",
         3 * kNanosPerSecond + 250 * kNanosPerMicro, 0, "procB", 2, "pa-risc",
         17);
  s.emit(EventKind::kStubEnd, CallKind::kSync, "I", "F", 0, 0, "procA", 1,
         "x86", 17);
  db.ingest_records(s.records());

  Dscg dscg = Dscg::build(db);
  annotate_cpu(dscg);
  const std::string xml = Ccsg::build(dscg).to_xml();
  EXPECT_NE(xml.find("<CCSG>"), std::string::npos);
  EXPECT_NE(xml.find("ObjectID=\"17\""), std::string::npos);
  EXPECT_NE(xml.find("InvocationTimes=\"1\""), std::string::npos);
  EXPECT_NE(xml.find("<IncludedFunctionInstances>"), std::string::npos);
  // [second, microsecond] rendering: 3 s + 250 us.
  EXPECT_NE(xml.find("seconds=\"3\" microseconds=\"250\""), std::string::npos);
  EXPECT_NE(xml.find("SelfCPUConsumption"), std::string::npos);
  EXPECT_NE(xml.find("DescendentCPUConsumption"), std::string::npos);
}

TEST(Stats, Summary) {
  auto s = summarize({5, 1, 3, 2, 4});
  EXPECT_EQ(s.count, 5u);
  EXPECT_EQ(s.min, 1);
  EXPECT_EQ(s.max, 5);
  EXPECT_DOUBLE_EQ(s.mean, 3);
  EXPECT_DOUBLE_EQ(s.p50, 3);
  auto empty = summarize({});
  EXPECT_EQ(empty.count, 0u);
}

}  // namespace
}  // namespace causeway::analysis
