// Drives the idlc-GENERATED stubs and skeletons end to end over the ORB:
// every parameter direction, structs, sequences, typed exceptions, oneway --
// in both the instrumented (Demo) and plain (DemoPlain) flavors.
#include <gtest/gtest.h>

#include <cmath>

#include "analysis/dscg.h"
#include "common/work.h"
#include "demo.causeway.h"
#include "demo_plain.causeway.h"
#include "monitor/tss.h"
#include "orb/errors.h"

namespace {

using namespace causeway;

class KitchenImpl final : public Demo::Kitchen {
 public:
  std::int64_t mix(std::int32_t a, std::int32_t& b, std::int32_t& c) override {
    const std::int64_t result = static_cast<std::int64_t>(a) + b;
    b = b * 2;   // inout
    c = a - 1;   // out
    return result;
  }

  bool flags(bool b, std::uint8_t o, std::int16_t s, std::uint16_t us,
             std::uint32_t ul, std::uint64_t ull, float f,
             double d) override {
    return b && o == 255 && s == -7 && us == 65535 && ul == 4000000000u &&
           ull == (1ull << 60) && std::abs(f - 1.5f) < 1e-6f &&
           std::abs(d - 2.25) < 1e-12;
  }

  std::string greet(const std::string& name) override {
    return "hello " + name;
  }

  std::vector<std::string> tokenize(const std::string& text) override {
    std::vector<std::string> out;
    std::string cur;
    for (char c : text) {
      if (c == ' ') {
        if (!cur.empty()) out.push_back(std::move(cur));
        cur.clear();
      } else {
        cur += c;
      }
    }
    if (!cur.empty()) out.push_back(std::move(cur));
    return out;
  }

  std::vector<std::uint8_t> blob(const std::vector<std::uint8_t>& data,
                                 std::int32_t& size) override {
    size = static_cast<std::int32_t>(data.size());
    std::vector<std::uint8_t> reversed(data.rbegin(), data.rend());
    return reversed;
  }

  Demo::Pair swap(const Demo::Pair& p) override {
    return Demo::Pair{p.second, p.first};
  }

  Demo::Nested nest(const Demo::Nested& n) override {
    Demo::Nested out = n;
    out.label += "/seen";
    out.more.push_back(n.pair);
    return out;
  }

  void fail(std::int32_t code) override {
    Demo::Boom boom;
    boom.detail = "code path " + std::to_string(code);
    boom.code = code;
    throw boom;
  }

  void fire(const std::string& event) override {
    (void)event;
    fired.fetch_add(1);
  }

  void nothing() override {}

  Demo::Color next_color(Demo::Color c) override {
    switch (c) {
      case Demo::Color::kRed: return Demo::Color::kGreen;
      case Demo::Color::kGreen: return Demo::Color::kBlue;
      case Demo::Color::kBlue: return Demo::Color::kRed;
    }
    return Demo::Color::kRed;
  }

  Demo::Palette shades(Demo::Color c, Demo::Timestamp at) override {
    Demo::Palette p;
    for (Demo::Timestamp i = 0; i < at % 4; ++i) p.push_back(c);
    return p;
  }

  std::atomic<int> fired{0};
};

class GeneratedTest : public ::testing::Test {
 protected:
  void SetUp() override {
    monitor::tss_clear();
    orb::DomainOptions server_opts;
    server_opts.process_name = "server";
    orb::DomainOptions client_opts;
    client_opts.process_name = "client";
    server_ = std::make_unique<orb::ProcessDomain>(fabric_, server_opts);
    client_ = std::make_unique<orb::ProcessDomain>(fabric_, client_opts);
    impl_ = std::make_shared<KitchenImpl>();
    ref_ = Demo::activate_Kitchen(*server_, impl_);
    proxy_ = std::make_unique<Demo::KitchenProxy>(*client_, ref_);
  }
  void TearDown() override { monitor::tss_clear(); }

  orb::Fabric fabric_;
  std::unique_ptr<orb::ProcessDomain> server_;
  std::unique_ptr<orb::ProcessDomain> client_;
  std::shared_ptr<KitchenImpl> impl_;
  orb::ObjectRef ref_;
  std::unique_ptr<Demo::KitchenProxy> proxy_;
};

TEST_F(GeneratedTest, InOutAndReturn) {
  std::int32_t b = 10, c = 0;
  EXPECT_EQ(proxy_->mix(5, b, c), 15);
  EXPECT_EQ(b, 20);  // inout came back doubled
  EXPECT_EQ(c, 4);   // out produced
}

TEST_F(GeneratedTest, AllPrimitiveKinds) {
  EXPECT_TRUE(proxy_->flags(true, 255, -7, 65535, 4000000000u, 1ull << 60,
                            1.5f, 2.25));
  EXPECT_FALSE(proxy_->flags(false, 255, -7, 65535, 4000000000u, 1ull << 60,
                             1.5f, 2.25));
}

TEST_F(GeneratedTest, StringsAndSequences) {
  EXPECT_EQ(proxy_->greet("world"), "hello world");
  EXPECT_EQ(proxy_->tokenize("a bb  ccc"),
            (std::vector<std::string>{"a", "bb", "ccc"}));
  std::int32_t size = 0;
  EXPECT_EQ(proxy_->blob({1, 2, 3}, size),
            (std::vector<std::uint8_t>{3, 2, 1}));
  EXPECT_EQ(size, 3);
}

TEST_F(GeneratedTest, StructsAndNesting) {
  Demo::Pair p{1, 2};
  const Demo::Pair swapped = proxy_->swap(p);
  EXPECT_EQ(swapped.first, 2);
  EXPECT_EQ(swapped.second, 1);

  Demo::Nested n;
  n.pair = {7, 8};
  n.more = {{1, 1}};
  n.label = "orig";
  const Demo::Nested out = proxy_->nest(n);
  EXPECT_EQ(out.label, "orig/seen");
  ASSERT_EQ(out.more.size(), 2u);
  EXPECT_EQ(out.more[1].first, 7);
  EXPECT_EQ(out.pair.first, 7);
}

TEST_F(GeneratedTest, TypedExceptionReconstructedAtClient) {
  try {
    proxy_->fail(1234);
    FAIL() << "expected Demo::Boom";
  } catch (const Demo::Boom& boom) {
    EXPECT_EQ(boom.code, 1234);
    EXPECT_EQ(boom.detail, "code path 1234");
  }
}

TEST_F(GeneratedTest, OnewayDelivered) {
  proxy_->fire("evt");
  for (int i = 0; i < 500 && impl_->fired.load() == 0; ++i) {
    idle_for(kNanosPerMilli);
  }
  EXPECT_EQ(impl_->fired.load(), 1);
}

TEST_F(GeneratedTest, VoidNoArgCall) { proxy_->nothing(); }

TEST_F(GeneratedTest, EnumsAndTypedefs) {
  EXPECT_EQ(proxy_->next_color(Demo::Color::kRed), Demo::Color::kGreen);
  EXPECT_EQ(proxy_->next_color(Demo::Color::kBlue), Demo::Color::kRed);
  const Demo::Palette p = proxy_->shades(Demo::Color::kGreen, 7);
  ASSERT_EQ(p.size(), 3u);
  EXPECT_EQ(p[0], Demo::Color::kGreen);
}

TEST_F(GeneratedTest, InstrumentedStubsProduceCoherentChain) {
  std::int32_t b = 1, c = 0;
  proxy_->mix(1, b, c);
  proxy_->greet("x");

  analysis::LogDatabase db;
  monitor::Collector collector;
  collector.attach(&client_->monitor_runtime());
  collector.attach(&server_->monitor_runtime());
  db.ingest(collector.collect());

  ASSERT_EQ(db.size(), 8u);  // 2 calls x 4 probes
  ASSERT_EQ(db.chains().size(), 1u);  // siblings share the chain

  auto dscg = analysis::Dscg::build(db);
  EXPECT_EQ(dscg.call_count(), 2u);
  EXPECT_EQ(dscg.anomaly_count(), 0u);
  const auto& tops = dscg.roots()[0]->root->children;
  ASSERT_EQ(tops.size(), 2u);
  EXPECT_EQ(tops[0]->function_name, "mix");
  EXPECT_EQ(tops[1]->function_name, "greet");
  EXPECT_EQ(tops[0]->interface_name, "Demo::Kitchen");
}

TEST_F(GeneratedTest, ExceptionPathKeepsChainContinuous) {
  EXPECT_THROW(proxy_->fail(1), Demo::Boom);
  analysis::LogDatabase db;
  monitor::Collector collector;
  collector.attach(&client_->monitor_runtime());
  collector.attach(&server_->monitor_runtime());
  db.ingest(collector.collect());
  auto dscg = analysis::Dscg::build(db);
  EXPECT_EQ(dscg.call_count(), 1u);
  EXPECT_EQ(dscg.anomaly_count(), 0u);  // all four events present
}

// --- the plain flavor ---

class PlainKitchenImpl final : public DemoPlain::Kitchen {
 public:
  std::int64_t mix(std::int32_t a, std::int32_t& b, std::int32_t& c) override {
    c = a + b;
    b = 0;
    return c;
  }
  std::string greet(const std::string& name) override { return "hi " + name; }
  DemoPlain::Pair swap(const DemoPlain::Pair& p) override {
    return {p.second, p.first};
  }
  void fire(const std::string&) override { fired.fetch_add(1); }
  std::atomic<int> fired{0};
};

TEST(GeneratedPlainTest, WorksAndStaysSilent) {
  monitor::tss_clear();
  orb::Fabric fabric;
  orb::DomainOptions so;
  so.process_name = "pserver";
  orb::DomainOptions co;
  co.process_name = "pclient";
  orb::ProcessDomain server(fabric, so);
  orb::ProcessDomain client(fabric, co);

  auto impl = std::make_shared<PlainKitchenImpl>();
  auto ref = DemoPlain::activate_Kitchen(server, impl);
  DemoPlain::KitchenProxy proxy(client, ref);

  std::int32_t b = 4, c = 0;
  EXPECT_EQ(proxy.mix(3, b, c), 7);
  EXPECT_EQ(proxy.greet("there"), "hi there");
  proxy.fire("e");
  for (int i = 0; i < 500 && impl->fired.load() == 0; ++i) {
    idle_for(kNanosPerMilli);
  }
  EXPECT_EQ(impl->fired.load(), 1);

  // Plain generation: zero monitoring records, zero TSS impact.
  EXPECT_EQ(server.monitor_runtime().store().size(), 0u);
  EXPECT_EQ(client.monitor_runtime().store().size(), 0u);
  EXPECT_FALSE(monitor::tss_get().valid());
}

TEST(GeneratedMixedTest, InstrumentedClientPlainServerInteroperate) {
  // The hidden trailer must be invisible to a plain skeleton.
  monitor::tss_clear();
  orb::Fabric fabric;
  orb::DomainOptions so;
  so.process_name = "mserver";
  orb::DomainOptions co;
  co.process_name = "mclient";
  orb::ProcessDomain server(fabric, so);
  orb::ProcessDomain client(fabric, co);

  // DemoPlain servant reached through a *hand-made* instrumented call: build
  // an instrumented ClientCall against the plain skeleton's wire format.
  auto impl = std::make_shared<PlainKitchenImpl>();
  auto ref = DemoPlain::activate_Kitchen(server, impl);

  orb::ClientCall call(client, ref,
                       {"DemoPlain::Kitchen", "greet", 1, false},
                       /*instrumented=*/true);
  using causeway::wire_write;
  wire_write(call.request(), std::string("mixed"));
  WireCursor reply = call.invoke();
  std::string result;
  causeway::wire_read(reply, result);
  EXPECT_EQ(result, "hi mixed");
  EXPECT_EQ(client.monitor_runtime().store().size(), 2u);  // stub pair only
  monitor::tss_clear();
}

}  // namespace
