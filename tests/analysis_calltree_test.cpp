// Reconstruction state machine vs. the event chaining patterns of paper
// Table 1 (sibling, parent/child, recursion, callback, oneway) and the
// "abnormal" recovery path.
#include "analysis/call_tree.h"

#include <gtest/gtest.h>

#include "analysis/database.h"
#include "analysis/dscg.h"
#include "analysis_test_util.h"

namespace causeway::analysis {
namespace {

using monitor::CallKind;
using monitor::EventKind;
using testutil::Scribe;

ChainTree build(Scribe& scribe) {
  LogDatabase db;
  db.ingest_records(scribe.records());
  return build_chain_tree(scribe.chain(), db.chain_events(scribe.chain()));
}

TEST(CallTree, EmptyChain) {
  Scribe scribe;
  ChainTree tree = build(scribe);
  EXPECT_EQ(tree.call_count(), 0u);
  EXPECT_TRUE(tree.anomalies.empty());
}

TEST(CallTree, SiblingPattern) {
  // Table 1: F then G at top level -- same chain, flat structure.
  Scribe s;
  Nanos t1[8] = {0, 1, 2, 3, 4, 5, 6, 7};
  s.leaf_sync("I", "F", t1);
  Nanos t2[8] = {10, 11, 12, 13, 14, 15, 16, 17};
  s.leaf_sync("I", "G", t2);

  ChainTree tree = build(s);
  EXPECT_TRUE(tree.anomalies.empty());
  ASSERT_EQ(tree.root->children.size(), 2u);
  EXPECT_EQ(tree.root->children[0]->function_name, "F");
  EXPECT_EQ(tree.root->children[1]->function_name, "G");
  EXPECT_TRUE(tree.root->children[0]->children.empty());
  EXPECT_EQ(tree.call_count(), 2u);
}

TEST(CallTree, ParentChildNesting) {
  // Table 1: F calls G calls H.
  Scribe s;
  s.emit(EventKind::kStubStart, CallKind::kSync, "I", "F", 0, 1);
  s.emit(EventKind::kSkelStart, CallKind::kSync, "I", "F", 2, 3, "procB", 2);
  s.emit(EventKind::kStubStart, CallKind::kSync, "I", "G", 4, 5, "procB", 2);
  s.emit(EventKind::kSkelStart, CallKind::kSync, "I", "G", 6, 7, "procC", 3);
  s.emit(EventKind::kStubStart, CallKind::kSync, "I", "H", 8, 9, "procC", 3);
  s.emit(EventKind::kSkelStart, CallKind::kSync, "I", "H", 10, 11, "procD", 4);
  s.emit(EventKind::kSkelEnd, CallKind::kSync, "I", "H", 12, 13, "procD", 4);
  s.emit(EventKind::kStubEnd, CallKind::kSync, "I", "H", 14, 15, "procC", 3);
  s.emit(EventKind::kSkelEnd, CallKind::kSync, "I", "G", 16, 17, "procC", 3);
  s.emit(EventKind::kStubEnd, CallKind::kSync, "I", "G", 18, 19, "procB", 2);
  s.emit(EventKind::kSkelEnd, CallKind::kSync, "I", "F", 20, 21, "procB", 2);
  s.emit(EventKind::kStubEnd, CallKind::kSync, "I", "F", 22, 23);

  ChainTree tree = build(s);
  EXPECT_TRUE(tree.anomalies.empty());
  ASSERT_EQ(tree.root->children.size(), 1u);
  const CallNode& f = *tree.root->children[0];
  EXPECT_EQ(f.function_name, "F");
  ASSERT_EQ(f.children.size(), 1u);
  const CallNode& g = *f.children[0];
  EXPECT_EQ(g.function_name, "G");
  ASSERT_EQ(g.children.size(), 1u);
  EXPECT_EQ(g.children[0]->function_name, "H");
  EXPECT_EQ(tree.call_count(), 3u);
  // Cross-process locality is preserved per side.
  EXPECT_EQ(f.server_process(), "procB");
  EXPECT_EQ(g.server_process(), "procC");
}

TEST(CallTree, RecursionProducesNestedFrames) {
  // Recursion "produces nesting calls" (paper Sec. 2): F calls F.
  Scribe s;
  s.emit(EventKind::kStubStart, CallKind::kSync, "I", "F", 0, 1);
  s.emit(EventKind::kSkelStart, CallKind::kSync, "I", "F", 2, 3, "procB", 2);
  s.emit(EventKind::kStubStart, CallKind::kSync, "I", "F", 4, 5, "procB", 2);
  s.emit(EventKind::kSkelStart, CallKind::kSync, "I", "F", 6, 7, "procB", 3);
  s.emit(EventKind::kSkelEnd, CallKind::kSync, "I", "F", 8, 9, "procB", 3);
  s.emit(EventKind::kStubEnd, CallKind::kSync, "I", "F", 10, 11, "procB", 2);
  s.emit(EventKind::kSkelEnd, CallKind::kSync, "I", "F", 12, 13, "procB", 2);
  s.emit(EventKind::kStubEnd, CallKind::kSync, "I", "F", 14, 15);

  ChainTree tree = build(s);
  EXPECT_TRUE(tree.anomalies.empty());
  ASSERT_EQ(tree.root->children.size(), 1u);
  ASSERT_EQ(tree.root->children[0]->children.size(), 1u);
  EXPECT_EQ(tree.root->children[0]->children[0]->function_name, "F");
}

TEST(CallTree, CallbackPattern) {
  // A calls B; B's implementation calls back into A's other method.
  Scribe s;
  s.emit(EventKind::kStubStart, CallKind::kSync, "I", "request", 0, 1);
  s.emit(EventKind::kSkelStart, CallKind::kSync, "I", "request", 2, 3, "procB", 2);
  s.emit(EventKind::kStubStart, CallKind::kSync, "I", "callback", 4, 5, "procB", 2);
  s.emit(EventKind::kSkelStart, CallKind::kSync, "I", "callback", 6, 7, "procA", 1);
  s.emit(EventKind::kSkelEnd, CallKind::kSync, "I", "callback", 8, 9, "procA", 1);
  s.emit(EventKind::kStubEnd, CallKind::kSync, "I", "callback", 10, 11, "procB", 2);
  s.emit(EventKind::kSkelEnd, CallKind::kSync, "I", "request", 12, 13, "procB", 2);
  s.emit(EventKind::kStubEnd, CallKind::kSync, "I", "request", 14, 15);

  ChainTree tree = build(s);
  EXPECT_TRUE(tree.anomalies.empty());
  const CallNode& req = *tree.root->children[0];
  ASSERT_EQ(req.children.size(), 1u);
  EXPECT_EQ(req.children[0]->function_name, "callback");
  EXPECT_EQ(req.children[0]->server_process(), "procA");
}

TEST(CallTree, OnewayStubSideAndSpawn) {
  Scribe s;
  const Uuid child = Uuid::generate();
  auto& start = s.emit(EventKind::kStubStart, CallKind::kOneway, "I", "notify",
                       0, 1);
  start.spawned_chain = child;
  s.emit(EventKind::kStubEnd, CallKind::kOneway, "I", "notify", 2, 3);

  ChainTree tree = build(s);
  EXPECT_TRUE(tree.anomalies.empty());
  ASSERT_EQ(tree.root->children.size(), 1u);
  const CallNode& n = *tree.root->children[0];
  EXPECT_EQ(n.kind, CallKind::kOneway);
  EXPECT_EQ(n.spawned_chain, child);
  EXPECT_FALSE(n.record(EventKind::kSkelStart).has_value());
}

TEST(CallTree, OnewaySkelSideChainWithNestedWork) {
  // Spawned chain: begins at the skeleton, contains a nested sync call.
  Scribe s;
  s.emit(EventKind::kSkelStart, CallKind::kOneway, "I", "notify", 0, 1,
         "procB", 5);
  Nanos t[8] = {2, 3, 4, 5, 6, 7, 8, 9};
  s.leaf_sync("I", "store", t, "procB", "procC");
  s.emit(EventKind::kSkelEnd, CallKind::kOneway, "I", "notify", 10, 11,
         "procB", 5);

  ChainTree tree = build(s);
  EXPECT_TRUE(tree.anomalies.empty());
  EXPECT_TRUE(tree.oneway_child);
  ASSERT_EQ(tree.root->children.size(), 1u);
  const CallNode& notify = *tree.root->children[0];
  EXPECT_EQ(notify.function_name, "notify");
  ASSERT_EQ(notify.children.size(), 1u);
  EXPECT_EQ(notify.children[0]->function_name, "store");
}

TEST(CallTree, PartialPeerAccepted) {
  // Instrumented caller, plain callee: only stub events exist.
  Scribe s;
  s.emit(EventKind::kStubStart, CallKind::kSync, "I", "F", 0, 1);
  s.emit(EventKind::kStubEnd, CallKind::kSync, "I", "F", 2, 3);
  ChainTree tree = build(s);
  EXPECT_TRUE(tree.anomalies.empty());
  EXPECT_EQ(tree.call_count(), 1u);
  EXPECT_FALSE(tree.root->children[0]->record(EventKind::kSkelStart));
}

TEST(CallTree, SequenceGapFlagged) {
  Scribe s;
  Nanos t[8] = {0, 1, 2, 3, 4, 5, 6, 7};
  s.leaf_sync("I", "F", t);
  // Lose the middle records.
  auto& records = s.records();
  records.erase(records.begin() + 1, records.begin() + 3);

  LogDatabase db;
  db.ingest_records(records);
  ChainTree tree =
      build_chain_tree(s.chain(), db.chain_events(s.chain()));
  EXPECT_FALSE(tree.anomalies.empty());
  EXPECT_EQ(tree.call_count(), 1u);  // the call itself still reconstructed
}

TEST(CallTree, StrayEventsRecoveredFrom) {
  Scribe s;
  // skel_end with nothing open.
  s.emit(EventKind::kSkelEnd, CallKind::kSync, "I", "F", 0, 1);
  // then a clean call; the parser must recover and parse it.
  Nanos t[8] = {2, 3, 4, 5, 6, 7, 8, 9};
  s.leaf_sync("I", "G", t);

  ChainTree tree = build(s);
  EXPECT_GE(tree.anomalies.size(), 1u);
  ASSERT_EQ(tree.root->children.size(), 1u);
  EXPECT_EQ(tree.root->children[0]->function_name, "G");
}

TEST(CallTree, MismatchedNameFlagged) {
  Scribe s;
  s.emit(EventKind::kStubStart, CallKind::kSync, "I", "F", 0, 1);
  s.emit(EventKind::kSkelStart, CallKind::kSync, "I", "WRONG", 2, 3);
  s.emit(EventKind::kSkelEnd, CallKind::kSync, "I", "F", 4, 5);
  s.emit(EventKind::kStubEnd, CallKind::kSync, "I", "F", 6, 7);
  ChainTree tree = build(s);
  EXPECT_GE(tree.anomalies.size(), 1u);
}

TEST(CallTree, TruncatedTailFlagged) {
  Scribe s;
  s.emit(EventKind::kStubStart, CallKind::kSync, "I", "F", 0, 1);
  s.emit(EventKind::kSkelStart, CallKind::kSync, "I", "F", 2, 3);
  // crash: no more records
  ChainTree tree = build(s);
  EXPECT_FALSE(tree.anomalies.empty());
  EXPECT_EQ(tree.call_count(), 1u);
}

TEST(Dscg, GroupsChainsAndLinksSpawns) {
  Scribe parent;
  const Uuid child_id = [] {
    return Uuid::generate();
  }();
  auto& start = parent.emit(EventKind::kStubStart, CallKind::kOneway, "I",
                            "notify", 0, 1);
  start.spawned_chain = child_id;
  parent.emit(EventKind::kStubEnd, CallKind::kOneway, "I", "notify", 2, 3);

  // Child chain records (separate chain id).
  std::vector<monitor::TraceRecord> child_records;
  {
    monitor::TraceRecord r;
    r.chain = child_id;
    r.seq = 1;
    r.event = EventKind::kSkelStart;
    r.kind = CallKind::kOneway;
    r.interface_name = "I";
    r.function_name = "notify";
    r.process_name = "procB";
    r.node_name = "node";
    r.processor_type = "x86";
    r.mode = monitor::ProbeMode::kLatency;
    child_records.push_back(r);
    r.seq = 2;
    r.event = EventKind::kSkelEnd;
    child_records.push_back(r);
  }

  LogDatabase db;
  db.ingest_records(parent.records());
  db.ingest_records(child_records);

  Dscg dscg = Dscg::build(db);
  EXPECT_EQ(dscg.chains().size(), 2u);
  ASSERT_EQ(dscg.roots().size(), 1u);  // child hangs under the spawner
  const CallNode& spawner = *dscg.roots()[0]->root->children[0];
  ASSERT_EQ(spawner.spawned.size(), 1u);
  EXPECT_EQ(spawner.spawned[0]->chain, child_id);
  EXPECT_EQ(dscg.call_count(), 2u);

  // visit() walks into spawned chains.
  std::size_t visited = 0;
  dscg.visit([&](const CallNode&, int) { ++visited; });
  EXPECT_EQ(visited, 2u);
}

TEST(Dscg, OrphanSpawnStaysTopLevel) {
  // A spawned chain whose parent's records were lost becomes a root.
  std::vector<monitor::TraceRecord> records;
  monitor::TraceRecord r;
  r.chain = Uuid::generate();
  r.seq = 1;
  r.event = EventKind::kSkelStart;
  r.kind = CallKind::kOneway;
  r.interface_name = "I";
  r.function_name = "lost";
  r.process_name = "p";
  r.node_name = "n";
  r.processor_type = "x";
  records.push_back(r);
  r.seq = 2;
  r.event = EventKind::kSkelEnd;
  records.push_back(r);

  LogDatabase db;
  db.ingest_records(records);
  Dscg dscg = Dscg::build(db);
  ASSERT_EQ(dscg.roots().size(), 1u);
  EXPECT_TRUE(dscg.roots()[0]->oneway_child);
}

TEST(Database, QueriesAndInterning) {
  Scribe a, b;
  Nanos t[8] = {0, 1, 2, 3, 4, 5, 6, 7};
  a.leaf_sync("I", "F", t);
  b.leaf_sync("I", "G", t);

  LogDatabase db;
  // Shuffle the ingestion order; chain_events must sort by seq.
  std::vector<monitor::TraceRecord> mixed;
  for (std::size_t i = 0; i < 4; ++i) {
    mixed.push_back(b.records()[3 - i]);
    mixed.push_back(a.records()[3 - i]);
  }
  db.ingest_records(mixed);

  EXPECT_EQ(db.size(), 8u);
  EXPECT_EQ(db.chains().size(), 2u);
  auto events = db.chain_events(a.chain());
  ASSERT_EQ(events.size(), 4u);
  for (std::size_t i = 0; i + 1 < events.size(); ++i) {
    EXPECT_LT(events[i]->seq, events[i + 1]->seq);
  }
  EXPECT_TRUE(db.chain_events(Uuid::generate()).empty());
  EXPECT_EQ(db.primary_mode(), monitor::ProbeMode::kLatency);
  EXPECT_EQ(db.processor_types().size(), 1u);

  // Interned strings must not alias the (now mutated) source records.
  mixed.clear();
  EXPECT_EQ(db.records()[0].interface_name, "I");
}

}  // namespace
}  // namespace causeway::analysis
