// Store-layer acceptance: rotation, catalog round-trips, crash repair, and
// the corrupt-store matrix (torn live file, lying catalog, vanished files).
// Query-side pruning over these catalogs is covered in query_test.cpp; the
// fork+exec end-to-end run (collectd --store, kill -9 mid-rotation) lives
// in store_e2e_test.cpp.
#include "store/store.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "analysis/trace_io.h"
#include "store/catalog.h"

namespace causeway::store {
namespace {

namespace fs = std::filesystem;

// A fresh scratch directory per test, removed on destruction.
struct ScratchDir {
  fs::path path;
  explicit ScratchDir(const std::string& name)
      : path(fs::temp_directory_path() /
             ("causeway_store_" + name + "_" + std::to_string(::getpid()))) {
    fs::remove_all(path);
  }
  ~ScratchDir() { fs::remove_all(path); }
  std::string str() const { return path.string(); }
};

Uuid uuid(std::uint64_t hi, std::uint64_t lo) {
  Uuid u;
  u.hi = hi;
  u.lo = lo;
  return u;
}

// One four-record sync call on `chain`, timestamps in [base, base+400].
monitor::CollectedLogs make_logs(std::uint64_t epoch, const Uuid& chain,
                                 std::int64_t base) {
  monitor::CollectedLogs logs;
  logs.epoch = epoch;
  logs.domains.push_back({monitor::DomainIdentity{"procA", "node0", "x86"},
                          monitor::ProbeMode::kLatency, 2});
  logs.domains.push_back({monitor::DomainIdentity{"procB", "node0", "x86"},
                          monitor::ProbeMode::kLatency, 2});
  auto rec = [&](std::uint64_t seq, monitor::EventKind event,
                 std::string_view process) {
    monitor::TraceRecord r;
    r.chain = chain;
    r.seq = seq;
    r.event = event;
    r.kind = monitor::CallKind::kSync;
    r.outcome = monitor::CallOutcome::kOk;
    r.interface_name = "Store::Iface";
    r.function_name = "fn";
    r.object_key = 9;
    r.process_name = process;
    r.node_name = "node0";
    r.processor_type = "x86";
    r.thread_ordinal = 1;
    r.mode = monitor::ProbeMode::kLatency;
    r.value_start = base + static_cast<std::int64_t>(seq) * 100;
    r.value_end = base + static_cast<std::int64_t>(seq) * 100 + 10;
    return r;
  };
  logs.records.push_back(rec(1, monitor::EventKind::kStubStart, "procA"));
  logs.records.push_back(rec(2, monitor::EventKind::kSkelStart, "procB"));
  logs.records.push_back(rec(3, monitor::EventKind::kSkelEnd, "procB"));
  logs.records.push_back(rec(4, monitor::EventKind::kStubEnd, "procA"));
  return logs;
}

TEST(ChainDigest, InsertedChainsAreContained) {
  ChainDigest digest;
  EXPECT_TRUE(digest.empty());
  std::vector<Uuid> present;
  for (std::uint64_t i = 1; i <= 200; ++i) {
    present.push_back(uuid(i * 0x9e3779b97f4a7c15ull, i * 0xc2b2ae3d27d4eb4full));
    digest.insert(present.back());
  }
  EXPECT_FALSE(digest.empty());
  for (const Uuid& u : present) EXPECT_TRUE(digest.may_contain(u));

  // Absent chains are overwhelmingly rejected (~2% false positives at this
  // load; 1000 distinct probes make a full wipeout implausible).
  std::size_t hits = 0;
  for (std::uint64_t i = 1; i <= 1000; ++i) {
    if (digest.may_contain(
            uuid(0x1234567800000000ull + i * 7919, 0xabcdef0000000000ull + i))) {
      ++hits;
    }
  }
  EXPECT_LT(hits, 200u);
}

TEST(Catalog, EncodeDecodeRoundTrip) {
  Catalog catalog;
  for (int i = 1; i <= 3; ++i) {
    CatalogEntry e;
    e.file = "store-00000" + std::to_string(i) + ".cwt";
    e.bytes = 1000u * static_cast<unsigned>(i);
    e.segments = static_cast<std::uint64_t>(i);
    e.records = 40u * static_cast<unsigned>(i);
    e.min_epoch = static_cast<std::uint64_t>(i);
    e.max_epoch = static_cast<std::uint64_t>(i) + 5;
    e.min_ts = i * 100;
    e.max_ts = i * 100 + 999;
    e.chains.insert(uuid(7, static_cast<std::uint64_t>(i)));
    catalog.entries.push_back(e);
  }
  const auto bytes = Catalog::decode(catalog.encode()).encode();
  EXPECT_EQ(bytes, catalog.encode());

  const Catalog decoded = Catalog::decode(catalog.encode());
  ASSERT_EQ(decoded.entries.size(), 3u);
  EXPECT_EQ(decoded.entries[1].file, "store-000002.cwt");
  EXPECT_EQ(decoded.entries[1].records, 80u);
  EXPECT_EQ(decoded.entries[2].min_ts, 300);
  EXPECT_TRUE(decoded.entries[0].may_contain_chain(uuid(7, 1)));
  EXPECT_EQ(decoded.total_records(), 240u);
}

TEST(Catalog, SaveLoadAndCorruptFile) {
  ScratchDir dir("catalog");
  fs::create_directories(dir.path);
  EXPECT_FALSE(load_catalog(dir.str()).has_value());

  Catalog catalog;
  CatalogEntry e;
  e.file = "store-000001.cwt";
  e.bytes = 123;
  e.records = 4;
  catalog.entries.push_back(e);
  save_catalog(dir.str(), catalog);
  const auto loaded = load_catalog(dir.str());
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->entries.size(), 1u);
  EXPECT_EQ(loaded->entries[0].bytes, 123u);

  std::ofstream(dir.path / kCatalogFileName, std::ios::trunc) << "garbage";
  EXPECT_THROW(load_catalog(dir.str()), analysis::TraceIoError);
}

TEST(Catalog, TimeWindowPruning) {
  CatalogEntry e;
  e.records = 1;
  e.min_ts = 100;
  e.max_ts = 200;
  EXPECT_TRUE(e.overlaps_time(150, 160));
  EXPECT_TRUE(e.overlaps_time(0, 100));
  EXPECT_TRUE(e.overlaps_time(200, 500));
  EXPECT_FALSE(e.overlaps_time(201, 500));
  EXPECT_FALSE(e.overlaps_time(0, 99));
}

TEST(StoreWriter, RotatesBySegmentCountAndSealsOnClose) {
  ScratchDir dir("rotate");
  {
    StoreOptions options;
    options.rotate_segments = 2;
    options.checkpoint_every = 1;
    StoreWriter writer(dir.str(), options);
    for (std::uint64_t e = 1; e <= 5; ++e) {
      writer.append(make_logs(e, uuid(1, e), static_cast<std::int64_t>(e) * 1000));
    }
    EXPECT_EQ(writer.files_sealed(), 2u);  // segments 1-2 and 3-4
    EXPECT_EQ(writer.segments(), 5u);
    EXPECT_EQ(writer.records(), 20u);
    writer.close();
    EXPECT_EQ(writer.files_sealed(), 3u);  // the odd fifth segment
  }
  EXPECT_TRUE(fs::exists(dir.path / "store-000001.cwt"));
  EXPECT_TRUE(fs::exists(dir.path / "store-000003.cwt"));
  EXPECT_FALSE(fs::exists(dir.path / "current.cwt"));

  const StoreView view = open_store(dir.str());
  ASSERT_EQ(view.files.size(), 3u);
  EXPECT_TRUE(view.files[0].indexed);
  EXPECT_EQ(view.files[0].entry.records, 8u);
  EXPECT_EQ(view.files[2].entry.records, 4u);
  EXPECT_EQ(view.files[0].entry.min_epoch, 1u);
  EXPECT_EQ(view.files[0].entry.max_epoch, 2u);
  EXPECT_EQ(view.files[0].entry.min_ts, 1100);
  EXPECT_TRUE(view.files[1].entry.may_contain_chain(uuid(1, 3)));

  // Every sealed file is an ordinary closed trace.
  analysis::LogDatabase db;
  EXPECT_EQ(analysis::read_trace_file((dir.path / "store-000001.cwt").string(),
                                      db),
            8u);
}

TEST(StoreWriter, RotatesByBytes) {
  ScratchDir dir("rotatebytes");
  StoreOptions options;
  options.rotate_bytes = 1;  // every segment trips the size threshold
  StoreWriter writer(dir.str(), options);
  for (std::uint64_t e = 1; e <= 3; ++e) {
    writer.append(make_logs(e, uuid(2, e), 0));
  }
  writer.close();
  EXPECT_EQ(writer.files_sealed(), 3u);
}

TEST(StoreWriter, EmptyStoreClosesWithoutFiles) {
  ScratchDir dir("empty");
  {
    StoreWriter writer(dir.str());
    writer.close();
  }
  EXPECT_FALSE(fs::exists(dir.path / "current.cwt"));
  const StoreView view = open_store(dir.str());
  EXPECT_TRUE(view.files.empty());
}

TEST(StoreWriter, V5StoreReadsBackLikeV4) {
  ScratchDir dir4("fmtv4");
  ScratchDir dir5("fmtv5");
  for (const auto& [path, format] :
       {std::pair{dir4.str(), analysis::kTraceFormatV4},
        std::pair{dir5.str(), analysis::kTraceFormatV5}}) {
    StoreOptions options;
    options.rotate_segments = 1;
    options.trace_format = format;
    StoreWriter writer(path, options);
    for (std::uint64_t e = 1; e <= 3; ++e) {
      writer.append(make_logs(e, uuid(3, e), static_cast<std::int64_t>(e)));
    }
    writer.close();
    EXPECT_EQ(writer.files_sealed(), 3u);
  }
  analysis::LogDatabase db4, db5;
  for (int i = 1; i <= 3; ++i) {
    const std::string name = "store-00000" + std::to_string(i) + ".cwt";
    analysis::read_trace_file((dir4.path / name).string(), db4);
    analysis::read_trace_file((dir5.path / name).string(), db5);
  }
  ASSERT_EQ(db4.size(), 12u);
  ASSERT_EQ(db5.size(), db4.size());
  for (std::size_t i = 0; i < db4.size(); ++i) {
    EXPECT_EQ(db5.records()[i].seq, db4.records()[i].seq);
    EXPECT_EQ(db5.records()[i].value_start, db4.records()[i].value_start);
  }
}

TEST(OpenStore, ThrowsOnMissingAndResizedFiles) {
  ScratchDir dir("lying");
  {
    StoreOptions options;
    options.rotate_segments = 1;
    StoreWriter writer(dir.str(), options);
    writer.append(make_logs(1, uuid(4, 1), 0));
    writer.append(make_logs(2, uuid(4, 2), 0));
    writer.close();
  }
  // Stale range: the file shrank behind the catalog's back.
  const auto first = dir.path / "store-000001.cwt";
  const auto original_size = fs::file_size(first);
  fs::resize_file(first, original_size - 1);
  try {
    open_store(dir.str());
    FAIL() << "size mismatch must throw";
  } catch (const analysis::TraceIoError& e) {
    EXPECT_NE(std::string(e.what()).find("--reindex"), std::string::npos)
        << e.what();
  }
  fs::resize_file(first, original_size);  // restore padding w/ zeros is fine
  // ... but a vanished file is its own error.
  fs::remove(dir.path / "store-000002.cwt");
  EXPECT_THROW(open_store(dir.str()), analysis::TraceIoError);
}

TEST(ReindexStore, RepairsTornLiveFileAndMissingCatalog) {
  ScratchDir dir("repair");
  {
    StoreOptions options;
    options.rotate_segments = 1;
    options.checkpoint_every = 1;
    StoreWriter writer(dir.str(), options);
    writer.append(make_logs(1, uuid(5, 1), 0));
    writer.append(make_logs(2, uuid(5, 2), 0));
    writer.close();
  }
  // Crash artifact: a torn current.cwt (one whole segment + half of the
  // next) and no catalog at all.
  {
    const auto seg1 = analysis::encode_trace(make_logs(3, uuid(5, 3), 0));
    const auto seg2 = analysis::encode_trace(make_logs(4, uuid(5, 4), 0));
    std::ofstream out(dir.path / "current.cwt",
                      std::ios::binary | std::ios::trunc);
    out.write(reinterpret_cast<const char*>(seg1.data()),
              static_cast<std::streamsize>(seg1.size()));
    out.write(reinterpret_cast<const char*>(seg2.data()),
              static_cast<std::streamsize>(seg2.size() / 2));
  }
  fs::remove(dir.path / kCatalogFileName);

  const StoreReindexResult result = reindex_store(dir.str());
  EXPECT_EQ(result.files_indexed, 3u);
  EXPECT_TRUE(result.sealed_current);
  EXPECT_TRUE(result.catalog_rewritten);
  EXPECT_GT(result.truncated_bytes, 0u);
  EXPECT_FALSE(fs::exists(dir.path / "current.cwt"));
  EXPECT_TRUE(fs::exists(dir.path / "store-000003.cwt"));

  const StoreView view = open_store(dir.str());
  ASSERT_EQ(view.files.size(), 3u);
  EXPECT_EQ(view.files[2].entry.records, 4u);  // torn second segment dropped
  EXPECT_EQ(view.files[2].entry.min_epoch, 3u);

  // A second pass over the now-consistent store changes nothing.
  const StoreReindexResult again = reindex_store(dir.str());
  EXPECT_EQ(again.files_repaired, 0u);
  EXPECT_FALSE(again.catalog_rewritten);
  EXPECT_EQ(again.truncated_bytes, 0u);
}

TEST(ReindexStore, DropsEntriesForVanishedFiles) {
  ScratchDir dir("vanish");
  {
    StoreOptions options;
    options.rotate_segments = 1;
    StoreWriter writer(dir.str(), options);
    writer.append(make_logs(1, uuid(6, 1), 0));
    writer.append(make_logs(2, uuid(6, 2), 0));
    writer.close();
  }
  fs::remove(dir.path / "store-000001.cwt");
  const StoreReindexResult result = reindex_store(dir.str());
  EXPECT_EQ(result.dropped_entries, 1u);
  EXPECT_EQ(result.files_indexed, 1u);
  EXPECT_TRUE(result.catalog_rewritten);
  const StoreView view = open_store(dir.str());
  ASSERT_EQ(view.files.size(), 1u);
  EXPECT_EQ(view.files[0].entry.min_epoch, 2u);
}

TEST(StoreWriter, RestartRecoversCrashedDirectoryAndKeepsNumbering) {
  ScratchDir dir("restart");
  {
    StoreOptions options;
    options.rotate_segments = 1;
    StoreWriter writer(dir.str(), options);
    writer.append(make_logs(1, uuid(7, 1), 0));
    writer.append(make_logs(2, uuid(7, 2), 0));
    writer.close();
  }
  // Crash artifact between rotations: a leftover live file.
  {
    const auto seg = analysis::encode_trace(make_logs(3, uuid(7, 3), 0));
    std::ofstream out(dir.path / "current.cwt",
                      std::ios::binary | std::ios::trunc);
    out.write(reinterpret_cast<const char*>(seg.data()),
              static_cast<std::streamsize>(seg.size()));
  }
  {
    StoreOptions options;
    options.rotate_segments = 1;
    StoreWriter writer(dir.str(), options);  // recovery runs here
    EXPECT_EQ(writer.files_sealed(), 3u);    // the orphan was sealed
    writer.append(make_logs(4, uuid(7, 4), 0));
    writer.close();
  }
  const StoreView view = open_store(dir.str());
  ASSERT_EQ(view.files.size(), 4u);
  EXPECT_EQ(view.files[3].path.substr(view.files[3].path.size() - 16),
            "store-000004.cwt");
  EXPECT_EQ(view.files[2].entry.min_epoch, 3u);
  EXPECT_EQ(view.files[3].entry.min_epoch, 4u);
}

TEST(StoreWriter, RejectsNonColumnarFormats) {
  ScratchDir dir("badfmt");
  StoreOptions options;
  options.trace_format = analysis::kTraceFormatV3;
  EXPECT_THROW(StoreWriter(dir.str(), options), analysis::TraceIoError);
}

TEST(IsStoreDirectory, DistinguishesDirsFromFiles) {
  ScratchDir dir("isdir");
  fs::create_directories(dir.path);
  EXPECT_TRUE(is_store_directory(dir.str()));
  const auto file = dir.path / "plain.cwt";
  std::ofstream(file) << "x";
  EXPECT_FALSE(is_store_directory(file.string()));
  EXPECT_FALSE(is_store_directory((dir.path / "absent").string()));
}

}  // namespace
}  // namespace causeway::store
