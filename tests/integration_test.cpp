// Whole-pipeline integration: run a workload on the ORB, collect the
// scattered logs, rebuild the DSCG, annotate, export -- and verify the
// system-level invariants the paper's design promises.
#include <gtest/gtest.h>

#include "analysis/ccsg.h"
#include "analysis/cpu.h"
#include "analysis/diff.h"
#include "analysis/export.h"
#include "analysis/latency.h"
#include "analysis/stats.h"
#include "analysis/timeline.h"
#include "monitor/tss.h"
#include "pps/pps_system.h"
#include "workload/synthetic.h"

namespace causeway {
namespace {

class IntegrationTest : public ::testing::Test {
 protected:
  void SetUp() override { monitor::tss_clear(); }
  void TearDown() override { monitor::tss_clear(); }
};

TEST_F(IntegrationTest, SyntheticEndToEndLatencyPipeline) {
  orb::Fabric fabric;
  workload::SyntheticConfig config;
  config.seed = 21;
  config.domains = 4;
  config.components = 12;
  config.interfaces = 6;
  config.methods_per_interface = 3;
  config.levels = 4;
  config.max_children = 2;
  config.oneway_fraction = 0.1;
  config.cpu_per_call = 5 * kNanosPerMicro;
  config.processor_kinds = 2;
  workload::SyntheticSystem system(fabric, config);

  constexpr std::size_t kTransactions = 8;
  system.run_transactions(kTransactions);
  system.wait_quiescent();

  analysis::LogDatabase db;
  db.ingest(system.collect());
  ASSERT_GT(db.size(), 0u);
  EXPECT_EQ(db.primary_mode(), monitor::ProbeMode::kLatency);

  auto dscg = analysis::Dscg::build(db);
  EXPECT_EQ(dscg.anomaly_count(), 0u);
  EXPECT_GE(dscg.roots().size(), 1u);

  auto report = analysis::annotate_latency(dscg);
  EXPECT_EQ(report.skipped, 0u);

  // Invariant: a parent's uncorrected latency covers each sync child's.
  dscg.visit([&](const analysis::CallNode& node, int) {
    if (!node.raw_latency) return;
    for (const auto& child : node.children) {
      if (child->kind == monitor::CallKind::kOneway || !child->raw_latency) {
        continue;
      }
      EXPECT_GE(*node.raw_latency, *child->raw_latency);
    }
  });

  // Exports all render.
  EXPECT_FALSE(analysis::to_text(dscg).empty());
  EXPECT_FALSE(analysis::to_dot(dscg).empty());
  EXPECT_FALSE(analysis::to_json(dscg).empty());
}

TEST_F(IntegrationTest, CpuAttributionApproximatesInjectedWork) {
  // Every synthetic method burns a known amount of CPU; the analyzer's SC
  // must land near it for leaf calls (single-core host => generous bounds).
  orb::Fabric fabric;
  workload::SyntheticConfig config;
  config.seed = 33;
  config.domains = 2;
  config.components = 6;
  config.interfaces = 3;
  config.methods_per_interface = 2;
  config.levels = 3;
  config.max_children = 2;
  config.oneway_fraction = 0.0;
  config.cpu_per_call = 400 * kNanosPerMicro;
  config.monitor.mode = monitor::ProbeMode::kCpu;
  workload::SyntheticSystem system(fabric, config);

  system.run_transactions(3);
  system.wait_quiescent();

  analysis::LogDatabase db;
  db.ingest(system.collect());
  auto dscg = analysis::Dscg::build(db);
  EXPECT_EQ(dscg.anomaly_count(), 0u);
  analysis::annotate_cpu(dscg);

  std::vector<double> self_values;
  dscg.visit([&](const analysis::CallNode& node, int) {
    self_values.push_back(static_cast<double>(node.self_cpu.total()));
  });
  ASSERT_FALSE(self_values.empty());
  const auto summary = analysis::summarize(std::move(self_values));
  // Median self CPU within 2x of the injected 400us per call.
  EXPECT_GT(summary.p50, 200.0 * kNanosPerMicro);
  EXPECT_LT(summary.p50, 900.0 * kNanosPerMicro);
}

TEST_F(IntegrationTest, ClockSkewInvariance) {
  // Same PPS workload with and without hostile clocks: the latency results
  // must be in the same ballpark (analysis never crosses clock domains).
  auto run = [&](bool hostile) {
    monitor::tss_clear();
    orb::Fabric fabric;
    pps::PpsConfig config;
    config.topology = pps::PpsConfig::Topology::kFourProcess;
    config.hostile_clocks = hostile;
    config.cpu_scale = 0.2;
    pps::PpsSystem system(fabric, config);
    system.submit_job(2, 200, false);
    system.wait_quiescent();
    analysis::LogDatabase db;
    db.ingest(system.collect());
    auto dscg = analysis::Dscg::build(db);
    EXPECT_EQ(dscg.anomaly_count(), 0u);
    analysis::annotate_latency(dscg);
    const analysis::CallNode& submit = *dscg.roots()[0]->root->children[0];
    return static_cast<double>(*submit.latency);
  };

  const double base = run(false);
  const double skewed = run(true);
  ASSERT_GT(base, 0.0);
  ASSERT_GT(skewed, 0.0);
  // Drift of 150ppm can shift readings by a hair; hours of *skew* must not
  // show at all.  Allow generous scheduling noise.
  EXPECT_LT(skewed / base, 5.0);
  EXPECT_GT(skewed / base, 0.2);
}

TEST_F(IntegrationTest, ReconfigureProbeModeBetweenRuns) {
  // The paper runs its PPS experiments twice -- a latency pass and a CPU
  // pass -- on the same deployed system.  Reconfigure between quiescent
  // runs without tearing anything down.
  orb::Fabric fabric;
  pps::PpsConfig config;
  config.topology = pps::PpsConfig::Topology::kFourProcess;
  config.cpu_scale = 0.1;
  pps::PpsSystem system(fabric, config);

  // Pass 1: latency.
  system.submit_job(1, 150, false);
  system.wait_quiescent();
  {
    analysis::LogDatabase db;
    db.ingest(system.collect());
    EXPECT_EQ(db.primary_mode(), monitor::ProbeMode::kLatency);
    auto dscg = analysis::Dscg::build(db);
    EXPECT_GT(analysis::annotate_latency(dscg).annotated, 0u);
  }

  // Pass 2: CPU, same deployed system.
  system.set_probe_mode(monitor::ProbeMode::kCpu);
  system.submit_job(1, 150, false);
  system.wait_quiescent();
  {
    analysis::LogDatabase db;
    db.ingest(system.collect());
    EXPECT_EQ(db.primary_mode(), monitor::ProbeMode::kCpu);
    auto dscg = analysis::Dscg::build(db);
    EXPECT_EQ(dscg.anomaly_count(), 0u);
    EXPECT_GT(analysis::annotate_cpu(dscg).annotated, 0u);
    // No latency-mode residue leaked into this pass.
    for (const auto& r : db.records()) {
      EXPECT_EQ(r.mode, monitor::ProbeMode::kCpu);
    }
  }

  // Pass 3: back to latency -- reconfiguration is not one-way.
  system.set_probe_mode(monitor::ProbeMode::kLatency);
  system.submit_job(1, 150, false);
  system.wait_quiescent();
  {
    analysis::LogDatabase db;
    db.ingest(system.collect());
    EXPECT_EQ(db.primary_mode(), monitor::ProbeMode::kLatency);
  }
}

TEST_F(IntegrationTest, TimelineOverLiveHybridRun) {
  orb::Fabric fabric;
  pps::PpsConfig config;
  config.topology = pps::PpsConfig::Topology::kHybridCom;
  config.cpu_scale = 0.1;
  pps::PpsSystem system(fabric, config);
  system.submit_job(2, 200, true);
  system.wait_quiescent();

  analysis::LogDatabase db;
  db.ingest(system.collect());
  auto dscg = analysis::Dscg::build(db);
  const auto entries = analysis::build_timeline(dscg);
  ASSERT_FALSE(entries.empty());

  // Lanes exist on both infrastructures, ordered and non-overlapping within
  // each single-threaded lane (STA/pool thread serves one call at a time,
  // modulo nesting -- nested windows are contained, so starts still sort).
  bool saw_com = false, saw_orb = false;
  for (std::size_t i = 0; i < entries.size(); ++i) {
    if (entries[i].process == "pps-com") saw_com = true;
    if (entries[i].process == "pps0") saw_orb = true;
    EXPECT_LE(entries[i].start, entries[i].end);
    if (i > 0 && entries[i - 1].process == entries[i].process &&
        entries[i - 1].thread == entries[i].thread) {
      EXPECT_LE(entries[i - 1].start, entries[i].start);
    }
  }
  EXPECT_TRUE(saw_com);
  EXPECT_TRUE(saw_orb);

  const std::string csv = analysis::timeline_to_csv(entries);
  EXPECT_NE(csv.find("pps-com"), std::string::npos);
}

TEST_F(IntegrationTest, CpuModeDiffBetweenWorkloadVersions) {
  // Baseline vs "regressed" run of the same synthetic system (more CPU per
  // call): the diff must flag functions in self-CPU terms.
  auto capture = [&](Nanos cpu_per_call) {
    monitor::tss_clear();
    orb::Fabric fabric;
    workload::SyntheticConfig config;
    config.seed = 6;
    config.domains = 2;
    config.components = 4;
    config.interfaces = 2;
    config.methods_per_interface = 2;
    config.levels = 2;
    config.max_children = 2;
    config.oneway_fraction = 0.0;
    config.cpu_per_call = cpu_per_call;
    config.monitor.mode = monitor::ProbeMode::kCpu;
    workload::SyntheticSystem system(fabric, config);
    system.run_transactions(4);
    system.wait_quiescent();
    analysis::LogDatabase db;
    db.ingest(system.collect());
    return db;
  };

  analysis::LogDatabase base_db = capture(100 * kNanosPerMicro);
  analysis::LogDatabase cur_db = capture(400 * kNanosPerMicro);
  auto base = analysis::Dscg::build(base_db);
  auto cur = analysis::Dscg::build(cur_db);
  analysis::DiffOptions options;
  options.threshold_pct = 50.0;
  const auto diff = analysis::diff_runs(base, base_db, cur, cur_db, options);
  EXPECT_EQ(diff.metric, "self-cpu");
  EXPECT_FALSE(diff.clean());
  EXPECT_FALSE(diff.regressions.empty());
  EXPECT_TRUE(diff.added.empty());
  EXPECT_TRUE(diff.removed.empty());
}

TEST_F(IntegrationTest, ModesAreMutuallyExclusivePerRun) {
  // Paper: latency and CPU probes are never active simultaneously.
  orb::Fabric fabric;
  workload::SyntheticConfig config;
  config.seed = 4;
  config.domains = 2;
  config.components = 4;
  config.interfaces = 2;
  config.methods_per_interface = 2;
  config.levels = 2;
  config.monitor.mode = monitor::ProbeMode::kCausalityOnly;
  workload::SyntheticSystem system(fabric, config);
  system.run_transactions(2);
  system.wait_quiescent();

  analysis::LogDatabase db;
  db.ingest(system.collect());
  for (const auto& r : db.records()) {
    EXPECT_EQ(r.mode, monitor::ProbeMode::kCausalityOnly);
    EXPECT_EQ(r.value_start, 0);
  }
  // Causality still fully reconstructs.
  auto dscg = analysis::Dscg::build(db);
  EXPECT_EQ(dscg.anomaly_count(), 0u);
  // ...but latency/CPU annotation correctly reports nothing.
  auto latency_report = analysis::annotate_latency(dscg);
  EXPECT_EQ(latency_report.annotated, 0u);
}

}  // namespace
}  // namespace causeway
