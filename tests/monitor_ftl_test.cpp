#include "monitor/ftl.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace causeway::monitor {
namespace {

Ftl sample_ftl() {
  return Ftl{Uuid{0x1111222233334444ull, 0x5555666677778888ull}, 42};
}

TEST(Ftl, DefaultIsInvalid) {
  Ftl f;
  EXPECT_FALSE(f.valid());
}

TEST(Ftl, TrailerRoundTrip) {
  WireBuffer payload;
  payload.write_string("user data");
  const std::size_t user_size = payload.size();

  append_ftl_trailer(payload, sample_ftl());
  EXPECT_EQ(payload.size(), user_size + kFtlTrailerSize);

  WireCursor cursor(payload);
  auto peeled = peel_ftl_trailer(cursor);
  ASSERT_TRUE(peeled.has_value());
  EXPECT_EQ(*peeled, sample_ftl());
  // The user payload window is exactly what was there before.
  EXPECT_EQ(cursor.remaining(), user_size);
  EXPECT_EQ(cursor.read_string(), "user data");
}

TEST(Ftl, TrailerOnEmptyPayload) {
  WireBuffer payload;
  append_ftl_trailer(payload, sample_ftl());
  WireCursor cursor(payload);
  auto peeled = peel_ftl_trailer(cursor);
  ASSERT_TRUE(peeled.has_value());
  EXPECT_EQ(*peeled, sample_ftl());
  EXPECT_EQ(cursor.remaining(), 0u);
}

TEST(Ftl, NoTrailerReturnsNullopt) {
  WireBuffer payload;
  payload.write_string("plain peer payload");
  WireCursor cursor(payload);
  EXPECT_FALSE(peel_ftl_trailer(cursor).has_value());
  // Window untouched.
  EXPECT_EQ(cursor.read_string(), "plain peer payload");
}

TEST(Ftl, ShortPayloadReturnsNullopt) {
  WireBuffer payload;
  payload.write_u32(7);
  WireCursor cursor(payload);
  EXPECT_FALSE(peel_ftl_trailer(cursor).has_value());
}

TEST(Ftl, CorruptMagicReturnsNullopt) {
  WireBuffer payload;
  append_ftl_trailer(payload, sample_ftl());
  std::vector<std::uint8_t> bytes = payload.bytes();
  bytes.back() ^= 0xff;  // flip a magic byte
  WireCursor cursor(bytes.data(), bytes.size());
  EXPECT_FALSE(peel_ftl_trailer(cursor).has_value());
}

TEST(Ftl, PeelTwicePeelsNestedTrailersOnly) {
  // Peeling is idempotent in the sense that a second peel only succeeds if a
  // second (nested) trailer is actually present.
  WireBuffer payload;
  payload.write_u64(1);
  append_ftl_trailer(payload, Ftl{Uuid{1, 2}, 3});
  WireCursor cursor(payload);
  ASSERT_TRUE(peel_ftl_trailer(cursor).has_value());
  EXPECT_FALSE(peel_ftl_trailer(cursor).has_value());

  WireBuffer doubled;
  append_ftl_trailer(doubled, Ftl{Uuid{1, 2}, 3});
  append_ftl_trailer(doubled, Ftl{Uuid{4, 5}, 6});
  WireCursor c2(doubled);
  auto outer = peel_ftl_trailer(c2);
  ASSERT_TRUE(outer.has_value());
  EXPECT_EQ(outer->seq, 6u);
  auto inner = peel_ftl_trailer(c2);
  ASSERT_TRUE(inner.has_value());
  EXPECT_EQ(inner->seq, 3u);
}

TEST(Ftl, ConstantSizeRegardlessOfChainDepth) {
  // The FTL never grows -- the paper's key contrast with Trace Objects.
  Ftl f = sample_ftl();
  std::size_t last = 0;
  for (int depth = 0; depth < 1000; ++depth) {
    f.seq += 4;  // four events per hop
    WireBuffer payload;
    append_ftl_trailer(payload, f);
    if (depth > 0) EXPECT_EQ(payload.size(), last);
    last = payload.size();
  }
  EXPECT_EQ(last, kFtlTrailerSize);
}

TEST(Ftl, RandomPayloadsNeverMisdetect) {
  // A payload that doesn't end in the magic must never yield a trailer.
  Xoshiro256 rng(17);
  for (int i = 0; i < 500; ++i) {
    WireBuffer payload;
    const std::size_t n = rng.uniform(100);
    for (std::size_t k = 0; k < n; ++k) {
      payload.write_u8(static_cast<std::uint8_t>(rng.uniform(256)));
    }
    std::vector<std::uint8_t> bytes = payload.bytes();
    if (bytes.size() >= 4) {
      // Force the tail to differ from the magic.
      bytes[bytes.size() - 1] = 0;
    }
    WireCursor cursor(bytes.data(), bytes.size());
    EXPECT_FALSE(peel_ftl_trailer(cursor).has_value());
  }
}

}  // namespace
}  // namespace causeway::monitor
