#include "orb/domain.h"

#include <gtest/gtest.h>

#include "monitor/tss.h"
#include "orb/errors.h"
#include "orb_test_util.h"

namespace causeway::orb {
namespace {

using testutil::EchoServant;

class DomainTest : public ::testing::Test {
 protected:
  void SetUp() override { monitor::tss_clear(); }
  void TearDown() override { monitor::tss_clear(); }
  Fabric fabric_;
};

TEST_F(DomainTest, ActivateFindDeactivate) {
  ProcessDomain domain(fabric_, testutil::options("server"));
  auto servant = std::make_shared<EchoServant>();
  const ObjectRef ref = domain.activate(servant);
  EXPECT_EQ(ref.process, "server");
  EXPECT_EQ(ref.interface_name, "Test::Echo");
  EXPECT_NE(ref.key, 0u);
  EXPECT_EQ(domain.find(ref.key), servant);
  domain.deactivate(ref.key);
  EXPECT_EQ(domain.find(ref.key), nullptr);
}

TEST_F(DomainTest, DistinctKeysPerActivation) {
  ProcessDomain domain(fabric_, testutil::options("server"));
  const auto r1 = domain.activate(std::make_shared<EchoServant>());
  const auto r2 = domain.activate(std::make_shared<EchoServant>());
  EXPECT_NE(r1.key, r2.key);
}

TEST_F(DomainTest, RemoteSyncCall) {
  ProcessDomain server(fabric_, testutil::options("server"));
  ProcessDomain client(fabric_, testutil::options("client"));
  const ObjectRef ref = server.activate(std::make_shared<EchoServant>());

  ClientCall call(client, ref, testutil::echo_spec(), true);
  call.request().write_string("hi");
  WireCursor reply = call.invoke();
  EXPECT_EQ(reply.read_string(), "hi!");
}

TEST_F(DomainTest, CollocatedCallRunsInCallerThread) {
  ProcessDomain domain(fabric_, testutil::options("solo"));
  const ObjectRef ref = domain.activate(std::make_shared<EchoServant>());

  ClientCall call(domain, ref, testutil::add_spec(), true);
  EXPECT_EQ(call.kind(), monitor::CallKind::kCollocated);
  call.request().write_i32(20);
  call.request().write_i32(22);
  WireCursor reply = call.invoke();
  EXPECT_EQ(reply.read_i32(), 42);

  // All four events in this one thread on this one chain.
  auto records = domain.monitor_runtime().store().snapshot();
  ASSERT_EQ(records.size(), 4u);
  const auto thread = records[0].thread_ordinal;
  for (const auto& r : records) {
    EXPECT_EQ(r.thread_ordinal, thread);
    EXPECT_EQ(r.kind, monitor::CallKind::kCollocated);
  }
}

TEST_F(DomainTest, CollocationOffRoutesThroughLoopback) {
  auto opts = testutil::options("solo");
  opts.collocation_optimization = false;
  ProcessDomain domain(fabric_, opts);
  const ObjectRef ref = domain.activate(std::make_shared<EchoServant>());

  ClientCall call(domain, ref, testutil::echo_spec(), true);
  EXPECT_EQ(call.kind(), monitor::CallKind::kSync);
  call.request().write_string("loop");
  WireCursor reply = call.invoke();
  EXPECT_EQ(reply.read_string(), "loop!");

  // Skeleton events ran on a dispatcher thread, not the caller thread.
  auto records = domain.monitor_runtime().store().snapshot();
  ASSERT_EQ(records.size(), 4u);
  std::uint64_t stub_thread = 0, skel_thread = 0;
  for (const auto& r : records) {
    if (r.event == monitor::EventKind::kStubStart) stub_thread = r.thread_ordinal;
    if (r.event == monitor::EventKind::kSkelStart) skel_thread = r.thread_ordinal;
  }
  EXPECT_NE(stub_thread, skel_thread);
}

TEST_F(DomainTest, OnewayCallDeliversAsynchronously) {
  ProcessDomain server(fabric_, testutil::options("server"));
  ProcessDomain client(fabric_, testutil::options("client"));
  auto servant = std::make_shared<EchoServant>();
  const ObjectRef ref = server.activate(servant);

  ClientCall call(client, ref, testutil::ping_spec(), true);
  call.request().write_string("fire");
  call.invoke_oneway();

  // Wait until served.
  for (int i = 0; i < 500 && servant->ping_count() == 0; ++i) {
    idle_for(kNanosPerMilli);
  }
  EXPECT_EQ(servant->ping_count(), 1);
}

TEST_F(DomainTest, AppErrorSurfacesThroughClientCall) {
  ProcessDomain server(fabric_, testutil::options("server"));
  ProcessDomain client(fabric_, testutil::options("client"));
  const ObjectRef ref = server.activate(std::make_shared<EchoServant>());

  ClientCall call(client, ref, testutil::boom_spec(), true);
  WireCursor reply = call.invoke();
  (void)reply;
  EXPECT_TRUE(call.has_app_error());
  EXPECT_EQ(call.app_error_name(), "Test::Boom");
  EXPECT_EQ(call.app_error_text(), "requested failure");

  // Probes fired on the error path too: 4 events.
  EXPECT_EQ(client.monitor_runtime().store().size(), 2u);
  EXPECT_EQ(server.monitor_runtime().store().size(), 2u);
}

TEST_F(DomainTest, UnknownObjectThrows) {
  ProcessDomain server(fabric_, testutil::options("server"));
  ProcessDomain client(fabric_, testutil::options("client"));
  ObjectRef bogus{"server", 999, "Test::Echo"};
  ClientCall call(client, bogus, testutil::echo_spec(), true);
  call.request().write_string("x");
  EXPECT_THROW(call.invoke(), ObjectNotFound);
}

TEST_F(DomainTest, UnknownDomainThrowsTransportError) {
  ProcessDomain client(fabric_, testutil::options("client"));
  ObjectRef bogus{"ghost", 1, "Test::Echo"};
  ClientCall call(client, bogus, testutil::echo_spec(), true);
  call.request().write_string("x");
  EXPECT_THROW(call.invoke(), TransportError);
}

TEST_F(DomainTest, SlowServantTimesOut) {
  auto server_opts = testutil::options("server");
  ProcessDomain server(fabric_, server_opts);
  auto client_opts = testutil::options("client");
  client_opts.call_timeout = 30 * kNanosPerMilli;
  ProcessDomain client(fabric_, client_opts);
  const ObjectRef ref = server.activate(std::make_shared<EchoServant>());

  ClientCall call(client, ref, testutil::slow_spec(), true);
  call.request().write_i64(300 * kNanosPerMilli);
  EXPECT_THROW(call.invoke(), TimeoutError);
}

TEST_F(DomainTest, LinkLatencyDelaysDelivery) {
  fabric_.set_link_latency("client", "server", 50 * kNanosPerMilli);
  ProcessDomain server(fabric_, testutil::options("server"));
  ProcessDomain client(fabric_, testutil::options("client"));
  const ObjectRef ref = server.activate(std::make_shared<EchoServant>());

  const Nanos t0 = steady_now_ns();
  ClientCall call(client, ref, testutil::echo_spec(), true);
  call.request().write_string("x");
  call.invoke();
  EXPECT_GE(steady_now_ns() - t0, 50 * kNanosPerMilli);
}

TEST_F(DomainTest, FabricCountsBytes) {
  ProcessDomain server(fabric_, testutil::options("server"));
  ProcessDomain client(fabric_, testutil::options("client"));
  const ObjectRef ref = server.activate(std::make_shared<EchoServant>());
  const auto before = fabric_.bytes_sent();
  ClientCall call(client, ref, testutil::echo_spec(), true);
  call.request().write_string("x");
  call.invoke();
  EXPECT_GT(fabric_.bytes_sent(), before);
}

TEST_F(DomainTest, UninstrumentedCallProducesNoRecordsButWorks) {
  ProcessDomain server(fabric_, testutil::options("server"));
  ProcessDomain client(fabric_, testutil::options("client"));
  const ObjectRef ref =
      server.activate(std::make_shared<EchoServant>(/*instrumented=*/false));

  ClientCall call(client, ref, testutil::echo_spec(), /*instrumented=*/false);
  call.request().write_string("quiet");
  WireCursor reply = call.invoke();
  EXPECT_EQ(reply.read_string(), "quiet!");
  EXPECT_EQ(client.monitor_runtime().store().size(), 0u);
  EXPECT_EQ(server.monitor_runtime().store().size(), 0u);
}

TEST_F(DomainTest, MixedInstrumentationDegradesGracefully) {
  // Instrumented client, plain servant: stub records exist, chain continues.
  ProcessDomain server(fabric_, testutil::options("server"));
  ProcessDomain client(fabric_, testutil::options("client"));
  const ObjectRef ref =
      server.activate(std::make_shared<EchoServant>(/*instrumented=*/false));

  ClientCall call(client, ref, testutil::echo_spec(), true);
  call.request().write_string("mix");
  WireCursor reply = call.invoke();
  EXPECT_EQ(reply.read_string(), "mix!");
  EXPECT_EQ(client.monitor_runtime().store().size(), 2u);
  EXPECT_EQ(server.monitor_runtime().store().size(), 0u);

  // Plain client, instrumented servant: skeleton starts a fresh chain.
  monitor::tss_clear();
  const ObjectRef ref2 = server.activate(std::make_shared<EchoServant>(true));
  ClientCall call2(client, ref2, testutil::echo_spec(), false);
  call2.request().write_string("mix2");
  call2.invoke();
  EXPECT_EQ(server.monitor_runtime().store().size(), 2u);
}

TEST_F(DomainTest, ShutdownIsIdempotentAndFailsNewCalls) {
  ProcessDomain server(fabric_, testutil::options("server"));
  ProcessDomain client(fabric_, testutil::options("client"));
  const ObjectRef ref = server.activate(std::make_shared<EchoServant>());
  server.shutdown();
  server.shutdown();

  ClientCall call(client, ref, testutil::echo_spec(), true);
  call.request().write_string("x");
  EXPECT_THROW(call.invoke(), TransportError);
}

TEST_F(DomainTest, SequentialCallsFromOneThreadShareChain) {
  ProcessDomain server(fabric_, testutil::options("server"));
  ProcessDomain client(fabric_, testutil::options("client"));
  const ObjectRef ref = server.activate(std::make_shared<EchoServant>());

  for (int i = 0; i < 3; ++i) {
    ClientCall call(client, ref, testutil::echo_spec(), true);
    call.request().write_string("s");
    call.invoke();
  }
  auto records = client.monitor_runtime().store().snapshot();
  ASSERT_EQ(records.size(), 6u);
  for (const auto& r : records) EXPECT_EQ(r.chain, records[0].chain);
  // Contiguous global numbering across the three sibling calls: stub events
  // are 1,4,5,8,9,12 client-side.
  EXPECT_EQ(records[0].seq, 1u);
  EXPECT_EQ(records[1].seq, 4u);
  EXPECT_EQ(records[2].seq, 5u);
  EXPECT_EQ(records[5].seq, 12u);
}

}  // namespace
}  // namespace causeway::orb
