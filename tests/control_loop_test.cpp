// The closed control loop, bottom to top:
//
//   * epoch-apply discipline -- control staged on a runtime is invisible to
//     probes until the collector's next drain boundary;
//   * probe-tier suppression -- chain sampling and interface mutes drop
//     records at the probe with exact sampled-out accounting;
//   * ControlPolicy hysteresis -- throttle on a hot window, re-arm only
//     after the quiet streak AND the minimum hold (driven by a synthetic
//     clock, so every transition is deterministic);
//   * the full loopback -- a real publisher over a real socket is throttled
//     by the daemon's policy after an anomaly burst, observably samples
//     down at its next epoch, re-arms when the storm passes, and the
//     suppressed-record accounting reconciles to zero drift end to end;
//   * the idle control plane -- with the policy attached but never
//     triggered, the rendered report is byte-identical to a run with no
//     control plane at all.
#include <gtest/gtest.h>
#include <unistd.h>

#include <chrono>
#include <cstdint>
#include <functional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "analysis/pipeline.h"
#include "common/ids.h"
#include "monitor/collector.h"
#include "monitor/probes.h"
#include "monitor/tss.h"
#include "transport/ingest_sink.h"
#include "transport/policy.h"
#include "transport/protocol.h"
#include "transport/publisher.h"
#include "transport/subscriber.h"
#include "workload/synthetic.h"

namespace causeway {
namespace {

using transport::CollectorDaemon;
using transport::ControlDirective;
using transport::ControlPolicy;
using transport::EpochPublisher;
using transport::IngestSink;
using transport::PeerInfo;
using transport::PolicyConfig;
using transport::PublisherConfig;

class ControlLoopTest : public ::testing::Test {
 protected:
  void SetUp() override { monitor::tss_clear(); }
  void TearDown() override { monitor::tss_clear(); }

  std::string sock_path(const char* name) {
    return ::testing::TempDir() + "cw_control_" + name + "_" +
           std::to_string(::getpid()) + ".sock";
  }

  static std::uint64_t steady_ms() {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
  }

  static bool wait_for(const std::function<bool()>& pred,
                       std::uint64_t timeout_ms = 15000) {
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::milliseconds(timeout_ms);
    while (std::chrono::steady_clock::now() < deadline) {
      if (pred()) return true;
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    return pred();
  }
};

monitor::MonitorRuntime make_runtime(
    const char* process,
    monitor::ProbeMode mode = monitor::ProbeMode::kCausalityOnly) {
  monitor::MonitorConfig config;
  config.enabled = true;
  config.mode = mode;
  return monitor::MonitorRuntime(
      monitor::DomainIdentity{process, "node0", "x86"}, config,
      ClockDomain{});
}

constexpr monitor::CallIdentity kCall{"Test::Iface", "f", 9};

// One complete sync call (4 probe activations) between two runtimes on a
// fresh chain.  Returns the number of records the probes *attempted* --
// suppression happens downstream of this count.
std::uint64_t sync_call(monitor::MonitorRuntime& client,
                        monitor::MonitorRuntime& server,
                        monitor::CallOutcome outcome) {
  monitor::tss_clear();  // a fresh root chain per call
  monitor::StubProbes stub(&client, kCall, monitor::CallKind::kSync);
  const monitor::Ftl wire = stub.on_stub_start();
  monitor::SkelProbes skel(&server, kCall, monitor::CallKind::kSync);
  skel.on_skel_start(wire);
  const monitor::Ftl reply = skel.on_skel_end(outcome);
  stub.on_stub_end(reply, outcome);
  return 4;
}

// --- epoch-apply discipline -------------------------------------------------

TEST_F(ControlLoopTest, StagedControlInvisibleUntilDrainBoundary) {
  auto rt = make_runtime("procA", monitor::ProbeMode::kLatency);
  monitor::Collector collector;
  collector.attach(&rt);

  monitor::ControlUpdate update;
  update.mode = monitor::ProbeMode::kCausalityOnly;
  update.sample_rate_index = monitor::sample_rate_index_for(10);
  collector.stage_control(update);

  // Staged, not applied: probes still see the construction-time config.
  EXPECT_EQ(rt.mode(), monitor::ProbeMode::kLatency);
  EXPECT_EQ(rt.sample_rate_index(), 0);
  EXPECT_EQ(rt.config_version(), 0u);

  (void)collector.drain();  // the boundary

  EXPECT_EQ(rt.mode(), monitor::ProbeMode::kCausalityOnly);
  EXPECT_EQ(rt.sample_rate_index(), monitor::sample_rate_index_for(10));
  EXPECT_EQ(rt.config_version(), 1u);

  // An empty pending slot is a no-op, not a version bump.
  (void)collector.drain();
  EXPECT_EQ(rt.config_version(), 1u);
}

// --- probe-tier suppression + accounting ------------------------------------

TEST_F(ControlLoopTest, SamplingAndMutesSuppressWithExactAccounting) {
  set_uuid_seed(1234);
  auto client = make_runtime("procA");
  auto server = make_runtime("procB");
  monitor::Collector collector;
  collector.attach(&client);
  collector.attach(&server);

  std::uint64_t emitted = 0;

  // 1:1 -- everything kept, nothing suppressed.
  for (int i = 0; i < 10; ++i) {
    emitted += sync_call(client, server, monitor::CallOutcome::kOk);
  }
  monitor::CollectedLogs logs = collector.drain();
  EXPECT_EQ(logs.records.size(), emitted);
  EXPECT_EQ(logs.sampled_out, 0u);
  for (const auto& r : logs.records) {
    EXPECT_EQ(r.sample_rate_index, 0);
    EXPECT_EQ(r.sample_weight(), 1u);
  }

  // 1-in-2: the chain-origin decision suppresses whole chains on both
  // runtimes, and every kept record carries the weight.
  monitor::ControlUpdate sample_half;
  sample_half.sample_rate_index = monitor::sample_rate_index_for(2);
  collector.stage_control(sample_half);
  (void)collector.drain();  // apply

  std::uint64_t phase_emitted = 0;
  for (int i = 0; i < 30; ++i) {
    phase_emitted += sync_call(client, server, monitor::CallOutcome::kOk);
  }
  logs = collector.drain();
  EXPECT_EQ(logs.records.size() + logs.sampled_out, phase_emitted);
  EXPECT_GT(logs.sampled_out, 0u);   // some chains fell out...
  EXPECT_GT(logs.records.size(), 0u);  // ...and some stayed (w.h.p.)
  EXPECT_EQ(logs.records.size() % 4, 0u);  // whole chains, never torn
  for (const auto& r : logs.records) {
    EXPECT_EQ(r.sample_rate_index, monitor::sample_rate_index_for(2));
    EXPECT_EQ(r.sample_weight(), 2u);
  }

  // Muting the interface suppresses everything (and counts it).
  monitor::ControlUpdate mute;
  mute.sample_rate_index = 0;
  mute.muted_interfaces = std::vector<std::string>{"Test::Iface"};
  collector.stage_control(mute);
  (void)collector.drain();
  phase_emitted = 0;
  for (int i = 0; i < 5; ++i) {
    phase_emitted += sync_call(client, server, monitor::CallOutcome::kOk);
  }
  logs = collector.drain();
  EXPECT_EQ(logs.records.size(), 0u);
  EXPECT_EQ(logs.sampled_out, phase_emitted);

  // Unmute: back to full fidelity, no residue.
  monitor::ControlUpdate unmute;
  unmute.muted_interfaces = std::vector<std::string>{};
  collector.stage_control(unmute);
  (void)collector.drain();
  phase_emitted = 0;
  for (int i = 0; i < 5; ++i) {
    phase_emitted += sync_call(client, server, monitor::CallOutcome::kOk);
  }
  logs = collector.drain();
  EXPECT_EQ(logs.records.size(), phase_emitted);
  EXPECT_EQ(logs.sampled_out, 0u);
}

// --- policy hysteresis (synthetic clock) ------------------------------------

TEST_F(ControlLoopTest, PolicyThrottlesOnBurstAndRearmsWithHysteresis) {
  std::vector<std::pair<std::uint64_t, ControlDirective>> sent;
  PolicyConfig config;
  config.window_ms = 100;
  config.anomaly_burst = 3;
  config.rearm_quiet_windows = 2;
  config.min_hold_ms = 250;
  config.throttled_rate_index = monitor::sample_rate_index_for(10);
  ControlPolicy policy(config,
                       [&](std::uint64_t peer, const ControlDirective& d) {
                         sent.emplace_back(peer, d);
                         return static_cast<std::uint64_t>(sent.size());
                       });

  PeerInfo peer;
  peer.peer_id = 7;
  policy.on_peer_connect(peer, 1000);

  // Two anomalies in the window: under the burst threshold, still armed.
  policy.begin_attribution(7, 1010);
  policy.on_event({});
  policy.on_event({});
  policy.end_attribution();
  policy.tick(1100);
  EXPECT_FALSE(policy.is_throttled(7));
  EXPECT_TRUE(sent.empty());

  // Three in one window: hot -> throttle directive.
  policy.begin_attribution(7, 1110);
  policy.on_event({});
  policy.on_event({});
  policy.on_event({});
  policy.end_attribution();
  policy.tick(1200);
  EXPECT_TRUE(policy.is_throttled(7));
  ASSERT_EQ(sent.size(), 1u);
  EXPECT_EQ(sent[0].first, 7u);
  ASSERT_TRUE(sent[0].second.sample_rate_index.has_value());
  EXPECT_EQ(*sent[0].second.sample_rate_index,
            monitor::sample_rate_index_for(10));
  EXPECT_EQ(policy.stats().throttles, 1u);
  EXPECT_EQ(policy.stats().peers_throttled, 1u);

  // Quiet streak satisfied at 1400 (2 windows) but the minimum hold
  // (250ms from the 1200 throttle) is not: no flap.
  policy.tick(1400);
  EXPECT_TRUE(policy.is_throttled(7));
  EXPECT_EQ(sent.size(), 1u);

  // One more quiet window clears both dampers: re-arm to full fidelity.
  policy.tick(1500);
  EXPECT_FALSE(policy.is_throttled(7));
  ASSERT_EQ(sent.size(), 2u);
  ASSERT_TRUE(sent[1].second.sample_rate_index.has_value());
  EXPECT_EQ(*sent[1].second.sample_rate_index, 0);
  EXPECT_EQ(policy.stats().rearms, 1u);
  EXPECT_EQ(policy.stats().peers_throttled, 0u);

  // Publish drops are their own trigger.
  policy.on_drop_notice(peer, {5, 1}, 1510);
  policy.tick(1600);
  EXPECT_TRUE(policy.is_throttled(7));
  EXPECT_EQ(sent.size(), 3u);

  // Heat during the throttled state resets the quiet streak.  A tick
  // evaluates every elapsed window, so the streak restarts after the hot
  // [1600,1700) window: one quiet window by 1800, two by 1900.
  policy.begin_attribution(7, 1610);
  policy.on_event({});
  policy.on_event({});
  policy.on_event({});
  policy.end_attribution();
  policy.tick(1800);  // hot window + one quiet: streak 1 of 2
  EXPECT_TRUE(policy.is_throttled(7));
  policy.tick(1900);  // second quiet window; hold long satisfied
  EXPECT_FALSE(policy.is_throttled(7));
}

// --- the full loopback -------------------------------------------------------

// An anomaly burst throttles a live publisher; its next epoch observably
// samples down; the storm passes and the policy re-arms it; and at the end
// every probe activation is either in the database or in the sampled-out
// ledger -- zero record-accounting drift across the whole plane.
TEST_F(ControlLoopTest, LoopbackThrottleRearmsAndReconciles) {
  set_uuid_seed(2024);
  const std::string path = sock_path("adaptive");

  analysis::AnalysisPipeline pipeline;
  CollectorDaemon* daemon_ptr = nullptr;
  PolicyConfig pcfg;
  pcfg.window_ms = 25;
  pcfg.anomaly_burst = 2;
  pcfg.min_hold_ms = 50;
  pcfg.rearm_quiet_windows = 2;
  pcfg.throttled_rate_index = monitor::sample_rate_index_for(2);
  ControlPolicy policy(pcfg,
                       [&](std::uint64_t peer, const ControlDirective& d) {
                         return daemon_ptr->send_control(peer, d);
                       });
  pipeline.add_sink(&policy);

  IngestSink::Options options;
  options.pipeline = &pipeline;
  options.policy = &policy;
  IngestSink sink(std::move(options));
  CollectorDaemon daemon({{path}}, sink);
  daemon_ptr = &daemon;
  daemon.start();

  auto client = make_runtime("procA");
  auto server = make_runtime("procB");
  monitor::Collector collector;
  collector.attach(&client);
  collector.attach(&server);
  PublisherConfig config;
  config.address = path;
  config.process_name = "adaptive";
  config.interval_ms = 5;
  EpochPublisher publisher(collector, config);
  publisher.start();

  std::uint64_t emitted = 0;

  // Phase 1: the anomaly burst.  Failing sync calls become kCallFailure
  // events in the pipeline, attributed to this peer; a hot window later
  // the policy throttles it.
  for (int i = 0; i < 8; ++i) {
    emitted += sync_call(client, server, monitor::CallOutcome::kAppError);
  }
  ASSERT_TRUE(wait_for([&] {
    policy.tick(steady_ms());
    return policy.stats().throttles >= 1;
  }));
  // The directive rode the data socket down and a drain boundary applied
  // it (seq 1 is the connection hello, so the throttle is >= 2).
  ASSERT_TRUE(
      wait_for([&] { return publisher.stats().last_applied_seq >= 2; }));
  EXPECT_EQ(client.sample_rate_index(), monitor::sample_rate_index_for(2));

  // Phase 2: traffic under throttle.  Roughly half the chains are
  // suppressed at the probe; the suppressed count rides CWST statuses
  // back up to the daemon.
  for (int i = 0; i < 40; ++i) {
    emitted += sync_call(client, server, monitor::CallOutcome::kOk);
  }
  ASSERT_TRUE(
      wait_for([&] { return publisher.stats().sampled_out_records > 0; }));
  ASSERT_TRUE(
      wait_for([&] { return sink.totals().sampled_out_records > 0; }));

  // Phase 3: the storm has passed; quiet windows plus the hold re-arm the
  // publisher back to full fidelity.
  ASSERT_TRUE(wait_for([&] {
    policy.tick(steady_ms());
    return policy.stats().rearms >= 1;
  }));
  EXPECT_EQ(policy.stats().peers_throttled, 0u);
  ASSERT_TRUE(
      wait_for([&] { return publisher.stats().last_applied_seq >= 3; }));
  EXPECT_EQ(client.sample_rate_index(), 0);

  // Phase 4: full fidelity again -- nothing new is suppressed.
  const EpochPublisher::Stats mid = publisher.stats();
  for (int i = 0; i < 5; ++i) {
    emitted += sync_call(client, server, monitor::CallOutcome::kOk);
  }
  ASSERT_TRUE(wait_for([&] {
    return publisher.stats().records_sent >= mid.records_sent + 20;
  }));
  EXPECT_EQ(publisher.stats().sampled_out_records, mid.sampled_out_records);

  // Reconciliation: every probe activation is accounted for exactly once.
  EXPECT_TRUE(publisher.finish());
  const EpochPublisher::Stats stats = publisher.stats();
  EXPECT_EQ(stats.dropped_records, 0u);
  EXPECT_EQ(stats.records_sent + stats.sampled_out_records, emitted);
  ASSERT_TRUE(wait_for([&] {
    return sink.totals().records >= stats.records_sent &&
           sink.totals().sampled_out_records >= stats.sampled_out_records;
  }));
  daemon.stop();

  const analysis::LogDatabase& db = pipeline.database();
  EXPECT_EQ(db.size(), stats.records_sent);
  EXPECT_EQ(db.sampled_out(), stats.sampled_out_records);
  EXPECT_EQ(db.size() + db.sampled_out(), emitted);  // zero drift
  EXPECT_TRUE(db.sampling_active());
  EXPECT_GT(db.weighted_records(), db.size());  // weights renormalize up

  const std::string report = pipeline.report();
  EXPECT_NE(report.find("--- sampling renormalization ---"),
            std::string::npos);
  EXPECT_GE(daemon.stats().control_sent, 3u);  // hello + throttle + re-arm
  EXPECT_GE(daemon.stats().statuses_received, 1u);
}

// With the policy attached but never triggered (an absurd burst threshold)
// the control plane stays idle -- hello and acks flow, nothing is sampled
// -- and the rendered report is byte-identical to a run with no control
// plane at all.  This is the "1:1 sampling costs nothing" pin.
TEST_F(ControlLoopTest, IdleControlPlaneKeepsReportByteIdentical) {
  const std::string path = sock_path("idle");

  workload::SyntheticConfig wl;
  wl.seed = 77;
  wl.domains = 3;
  wl.components = 9;
  wl.interfaces = 5;
  wl.methods_per_interface = 3;
  wl.levels = 3;
  wl.max_children = 2;
  wl.monitor.mode = monitor::ProbeMode::kCausalityOnly;

  // Reference: the same workload collected with no control plane.
  std::string reference;
  {
    orb::Fabric fabric;
    workload::SyntheticSystem system(fabric, wl);
    system.run_transactions(5);
    system.wait_quiescent();
    analysis::AnalysisPipeline ref_pipeline;
    ref_pipeline.ingest(system.collect());
    reference = ref_pipeline.report();
  }
  ASSERT_FALSE(reference.empty());
  monitor::tss_clear();

  analysis::AnalysisPipeline pipeline;
  CollectorDaemon* daemon_ptr = nullptr;
  PolicyConfig pcfg;
  pcfg.anomaly_burst = 1000000;  // unreachable: the loop never closes
  pcfg.throttle_on_publish_drops = false;
  ControlPolicy policy(pcfg,
                       [&](std::uint64_t peer, const ControlDirective& d) {
                         return daemon_ptr->send_control(peer, d);
                       });
  pipeline.add_sink(&policy);
  IngestSink::Options options;
  options.pipeline = &pipeline;
  options.policy = &policy;
  IngestSink sink(std::move(options));
  CollectorDaemon daemon({{path}}, sink);
  daemon_ptr = &daemon;
  daemon.start();
  {
    orb::Fabric fabric;
    workload::SyntheticSystem system(fabric, wl);
    monitor::Collector collector;
    system.attach_collector(collector);
    PublisherConfig config;
    config.address = path;
    config.process_name = "idle-loop";
    config.interval_ms = 5;
    EpochPublisher publisher(collector, config);
    publisher.start();
    system.run_transactions(5);
    system.wait_quiescent();
    EXPECT_TRUE(publisher.finish());
    const EpochPublisher::Stats stats = publisher.stats();
    EXPECT_GE(stats.directives_received, 1u);  // the hello arrived
    EXPECT_EQ(stats.sampled_out_records, 0u);  // and changed nothing
    ASSERT_TRUE(wait_for(
        [&] { return sink.totals().records >= stats.records_sent; }));
    // The hello's acknowledgement proves the channel was live both ways.
    ASSERT_TRUE(
        wait_for([&] { return daemon.stats().statuses_received >= 1; }));
  }
  daemon.stop();
  EXPECT_GE(daemon.stats().control_sent, 1u);
  EXPECT_EQ(policy.stats().throttles, 0u);
  EXPECT_FALSE(pipeline.database().sampling_active());
  EXPECT_EQ(pipeline.report(), reference);  // byte-identical, enforced
}

}  // namespace
}  // namespace causeway
