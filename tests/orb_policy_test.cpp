// Server threading policies: all three uphold O1/O2, so concurrent clients
// never get their causal chains intertwined (paper Sec. 2.2).
#include "orb/policies.h"

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <thread>

#include "monitor/tss.h"
#include "orb_test_util.h"

namespace causeway::orb {
namespace {

using testutil::EchoServant;

class PolicyTest : public ::testing::TestWithParam<PolicyKind> {
 protected:
  void SetUp() override { monitor::tss_clear(); }
  void TearDown() override { monitor::tss_clear(); }
  Fabric fabric_;
};

TEST_P(PolicyTest, ServesManySequentialCalls) {
  ProcessDomain server(fabric_, testutil::options("server", GetParam()));
  ProcessDomain client(fabric_, testutil::options("client"));
  const ObjectRef ref = server.activate(std::make_shared<EchoServant>());

  for (int i = 0; i < 50; ++i) {
    ClientCall call(client, ref, testutil::add_spec(), true);
    call.request().write_i32(i);
    call.request().write_i32(1000);
    WireCursor reply = call.invoke();
    EXPECT_EQ(reply.read_i32(), i + 1000);
  }
}

TEST_P(PolicyTest, ConcurrentClientsGetDistinctUntangledChains) {
  ProcessDomain server(fabric_, testutil::options("server", GetParam()));
  constexpr int kClients = 4;
  constexpr int kCallsEach = 10;

  std::vector<std::unique_ptr<ProcessDomain>> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.push_back(std::make_unique<ProcessDomain>(
        fabric_, testutil::options("client" + std::to_string(c))));
  }
  const ObjectRef ref = server.activate(std::make_shared<EchoServant>());

  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      monitor::tss_clear();
      for (int i = 0; i < kCallsEach; ++i) {
        ClientCall call(*clients[static_cast<std::size_t>(c)], ref,
                        testutil::add_spec(), true);
        call.request().write_i32(c);
        call.request().write_i32(i);
        WireCursor reply = call.invoke();
        if (reply.read_i32() != c + i) failures.fetch_add(1);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);

  // Each client thread formed exactly one chain; the server-side records
  // must carry exactly kClients distinct chains, each with the full event
  // complement (O2: pool/connection threads never leak a stale FTL).
  auto server_records = server.monitor_runtime().store().snapshot();
  EXPECT_EQ(server_records.size(),
            static_cast<std::size_t>(kClients * kCallsEach * 2));
  std::map<Uuid, int> events_per_chain;
  for (const auto& r : server_records) events_per_chain[r.chain]++;
  EXPECT_EQ(events_per_chain.size(), static_cast<std::size_t>(kClients));
  for (const auto& [chain, n] : events_per_chain) {
    EXPECT_EQ(n, kCallsEach * 2);
  }
}

TEST_P(PolicyTest, OnewayFloodIsFullyServed) {
  ProcessDomain server(fabric_, testutil::options("server", GetParam()));
  ProcessDomain client(fabric_, testutil::options("client"));
  auto servant = std::make_shared<EchoServant>();
  const ObjectRef ref = server.activate(servant);

  constexpr int kPings = 64;
  for (int i = 0; i < kPings; ++i) {
    ClientCall call(client, ref, testutil::ping_spec(), true);
    call.request().write_string("p");
    call.invoke_oneway();
  }
  for (int i = 0; i < 1000 && servant->ping_count() < kPings; ++i) {
    idle_for(kNanosPerMilli);
  }
  EXPECT_EQ(servant->ping_count(), kPings);
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, PolicyTest,
                         ::testing::Values(PolicyKind::kThreadPerRequest,
                                           PolicyKind::kThreadPerConnection,
                                           PolicyKind::kThreadPool),
                         [](const auto& info) {
                           return std::string(to_string(info.param)) == "thread-per-request"
                                      ? "PerRequest"
                                  : info.param == PolicyKind::kThreadPerConnection
                                      ? "PerConnection"
                                      : "Pool";
                         });

TEST(PolicyUnit, ThreadPerConnectionReusesWorkerPerConnection) {
  std::atomic<int> served{0};
  std::set<std::uint64_t> threads;
  std::mutex mu;
  ThreadPerConnectionPolicy policy([&](RequestMessage msg) {
    (void)msg;
    std::lock_guard lock(mu);
    threads.insert(monitor::this_thread_ordinal());
    served.fetch_add(1);
  });
  RequestMessage a;
  a.connection = "connA";
  RequestMessage b;
  b.connection = "connB";
  for (int i = 0; i < 10; ++i) {
    policy.submit(a);
    policy.submit(b);
  }
  policy.shutdown();
  EXPECT_EQ(served.load(), 20);
  EXPECT_EQ(threads.size(), 2u);  // one dedicated thread per connection
  EXPECT_EQ(policy.connection_count(), 0u);  // reclaimed at shutdown
}

TEST(PolicyUnit, ThreadPoolBoundsWorkerSet) {
  std::set<std::uint64_t> threads;
  std::mutex mu;
  ThreadPoolPolicy policy(
      [&](RequestMessage) {
        std::lock_guard lock(mu);
        threads.insert(monitor::this_thread_ordinal());
      },
      3);
  for (int i = 0; i < 100; ++i) policy.submit(RequestMessage{});
  policy.shutdown();
  EXPECT_LE(threads.size(), 3u);
  EXPECT_GE(threads.size(), 1u);
}

TEST(PolicyUnit, ShutdownWaitsForInFlightWork) {
  std::atomic<int> done{0};
  ThreadPerRequestPolicy policy([&](RequestMessage) {
    idle_for(20 * kNanosPerMilli);
    done.fetch_add(1);
  });
  for (int i = 0; i < 4; ++i) policy.submit(RequestMessage{});
  policy.shutdown();
  EXPECT_EQ(done.load(), 4);
}

}  // namespace
}  // namespace causeway::orb
