// Builds hand-crafted trace-record streams with exact probe values, so the
// analysis tests can check the paper's formulas against known answers.
#pragma once

#include <string_view>
#include <vector>

#include "monitor/record.h"

namespace causeway::analysis::testutil {

class Scribe {
 public:
  explicit Scribe(monitor::ProbeMode mode = monitor::ProbeMode::kLatency)
      : chain_(Uuid::generate()), mode_(mode) {}

  const Uuid& chain() const { return chain_; }
  std::vector<monitor::TraceRecord>& records() { return records_; }

  monitor::TraceRecord& emit(monitor::EventKind event, monitor::CallKind kind,
                             std::string_view iface, std::string_view fn,
                             Nanos v0, Nanos v1,
                             std::string_view process = "procA",
                             std::uint64_t thread = 1,
                             std::string_view processor = "x86",
                             std::uint64_t object_key = 1) {
    monitor::TraceRecord r;
    r.chain = chain_;
    r.seq = ++seq_;
    r.event = event;
    r.kind = kind;
    r.interface_name = iface;
    r.function_name = fn;
    r.object_key = object_key;
    r.process_name = process;
    r.node_name = "node";
    r.processor_type = processor;
    r.thread_ordinal = thread;
    r.mode = mode_;
    r.value_start = v0;
    r.value_end = v1;
    records_.push_back(r);
    return records_.back();
  }

  // Emits the four events of a leaf synchronous call with the given probe
  // windows: p1 = (t[0],t[1]), p2 = (t[2],t[3]), p3 = (t[4],t[5]),
  // p4 = (t[6],t[7]).
  void leaf_sync(std::string_view iface, std::string_view fn,
                 const Nanos (&t)[8],
                 std::string_view client_process = "procA",
                 std::string_view server_process = "procB",
                 std::string_view server_processor = "x86") {
    using monitor::CallKind;
    using monitor::EventKind;
    emit(EventKind::kStubStart, CallKind::kSync, iface, fn, t[0], t[1],
         client_process, 1, "x86");
    emit(EventKind::kSkelStart, CallKind::kSync, iface, fn, t[2], t[3],
         server_process, 2, server_processor);
    emit(EventKind::kSkelEnd, CallKind::kSync, iface, fn, t[4], t[5],
         server_process, 2, server_processor);
    emit(EventKind::kStubEnd, CallKind::kSync, iface, fn, t[6], t[7],
         client_process, 1, "x86");
  }

 private:
  Uuid chain_;
  monitor::ProbeMode mode_;
  std::uint64_t seq_{0};
  std::vector<monitor::TraceRecord> records_;
};

}  // namespace causeway::analysis::testutil
