// Drives idlc --runtime=com GENERATED proxies and skeletons over the
// apartment runtime: STA/MTA dispatch, typed exceptions, oneway posts, and
// full causality capture across apartments.
#include <gtest/gtest.h>

#include "analysis/dscg.h"
#include "common/work.h"
#include "monitor/tss.h"
#include "stock_com.causeway.h"

namespace {

using namespace causeway;

class TickerImpl final : public Stock::Ticker {
 public:
  Stock::Quote quote(const std::string& symbol) override {
    auto it = prices_.find(symbol);
    if (it == prices_.end()) {
      Stock::UnknownSymbol unknown;
      unknown.symbol = symbol;
      throw unknown;
    }
    Stock::Quote q;
    q.symbol = symbol;
    q.price_cents = it->second;
    q.volume = 100;
    return q;
  }

  Stock::QuoteBook book(Stock::Venue venue, std::int32_t depth) override {
    Stock::QuoteBook out;
    for (std::int32_t i = 0; i < depth; ++i) {
      Stock::Quote q;
      q.symbol = venue == Stock::Venue::kNyse ? "NY" : "NQ";
      q.price_cents = 1000 + i;
      q.volume = i;
      out.push_back(std::move(q));
    }
    return out;
  }

  void heartbeat(std::int64_t at) override {
    (void)at;
    beats.fetch_add(1);
  }

  void set_price(const std::string& symbol,
                 std::int64_t price_cents) override {
    prices_[symbol] = price_cents;
  }

  std::atomic<int> beats{0};

 private:
  std::map<std::string, std::int64_t> prices_;
};

class ComGeneratedTest : public ::testing::Test {
 protected:
  void SetUp() override {
    monitor::tss_clear();
    monitor_ = std::make_unique<monitor::MonitorRuntime>(
        monitor::DomainIdentity{"stock-host", "com-node", "nt-x86"},
        monitor::MonitorConfig{true, monitor::ProbeMode::kLatency},
        ClockDomain{});
    runtime_ = std::make_unique<com::ComRuntime>(monitor_.get());
    impl_ = std::make_shared<TickerImpl>();
    sta_ = runtime_->create_sta();
    ticker_id_ = Stock::register_Ticker(*runtime_, sta_, impl_);
    proxy_ = std::make_unique<Stock::TickerComProxy>(*runtime_, ticker_id_);
  }
  void TearDown() override {
    runtime_->shutdown();
    monitor::tss_clear();
  }

  std::unique_ptr<monitor::MonitorRuntime> monitor_;
  std::unique_ptr<com::ComRuntime> runtime_;
  std::shared_ptr<TickerImpl> impl_;
  com::ApartmentId sta_{};
  com::ComObjectId ticker_id_{};
  std::unique_ptr<Stock::TickerComProxy> proxy_;
};

TEST_F(ComGeneratedTest, RoundTripThroughSta) {
  proxy_->set_price("HPQ", 2345);
  const Stock::Quote q = proxy_->quote("HPQ");
  EXPECT_EQ(q.symbol, "HPQ");
  EXPECT_EQ(q.price_cents, 2345);
  EXPECT_EQ(q.volume, 100);
}

TEST_F(ComGeneratedTest, EnumsTypedefsAndSequences) {
  const Stock::QuoteBook book = proxy_->book(Stock::Venue::kNyse, 3);
  ASSERT_EQ(book.size(), 3u);
  EXPECT_EQ(book[0].symbol, "NY");
  EXPECT_EQ(book[2].price_cents, 1002);
}

TEST_F(ComGeneratedTest, TypedExceptionAcrossApartments) {
  try {
    proxy_->quote("NOPE");
    FAIL() << "expected Stock::UnknownSymbol";
  } catch (const Stock::UnknownSymbol& unknown) {
    EXPECT_EQ(unknown.symbol, "NOPE");
  }
}

TEST_F(ComGeneratedTest, OnewayPostDelivered) {
  proxy_->heartbeat(12345);
  for (int i = 0; i < 500 && impl_->beats.load() == 0; ++i) {
    idle_for(kNanosPerMilli);
  }
  EXPECT_EQ(impl_->beats.load(), 1);
}

TEST_F(ComGeneratedTest, CausalityCapturedAcrossApartments) {
  proxy_->set_price("HPQ", 1);
  proxy_->quote("HPQ");

  analysis::LogDatabase db;
  monitor::Collector collector;
  collector.attach(monitor_.get());
  db.ingest(collector.collect());
  ASSERT_EQ(db.size(), 8u);  // 2 sync calls x 4 probes
  EXPECT_EQ(db.chains().size(), 1u);

  auto dscg = analysis::Dscg::build(db);
  EXPECT_EQ(dscg.anomaly_count(), 0u);
  const auto& tops = dscg.roots()[0]->root->children;
  ASSERT_EQ(tops.size(), 2u);
  EXPECT_EQ(tops[0]->function_name, "set_price");
  EXPECT_EQ(tops[1]->function_name, "quote");
  EXPECT_EQ(tops[0]->interface_name, "Stock::Ticker");
}

TEST_F(ComGeneratedTest, MtaDispatchWorksToo) {
  const auto mta = runtime_->create_mta(2);
  auto impl = std::make_shared<TickerImpl>();
  const auto id = Stock::register_Ticker(*runtime_, mta, impl);
  Stock::TickerComProxy proxy(*runtime_, id);
  proxy.set_price("A", 7);
  EXPECT_EQ(proxy.quote("A").price_cents, 7);
}

TEST_F(ComGeneratedTest, FailedCallRecordsOutcome) {
  EXPECT_THROW(proxy_->quote("NOPE"), Stock::UnknownSymbol);
  analysis::LogDatabase db;
  monitor::Collector collector;
  collector.attach(monitor_.get());
  db.ingest(collector.collect());
  auto dscg = analysis::Dscg::build(db);
  ASSERT_EQ(dscg.call_count(), 1u);
  EXPECT_TRUE(dscg.roots()[0]->root->children[0]->failed());
  EXPECT_EQ(dscg.roots()[0]->root->children[0]->outcome(),
            monitor::CallOutcome::kAppError);
}

}  // namespace
