// Unit-level corners of the stub/skeleton support classes.
#include "orb/stubs.h"

#include <gtest/gtest.h>

#include "monitor/ftl.h"
#include "monitor/tss.h"
#include "orb_test_util.h"

namespace causeway::orb {
namespace {

class StubsTest : public ::testing::Test {
 protected:
  void SetUp() override { monitor::tss_clear(); }
  void TearDown() override { monitor::tss_clear(); }
  Fabric fabric_;
};

TEST_F(StubsTest, SkeletonGuardBodyEndIsIdempotent) {
  ProcessDomain domain(fabric_, testutil::options("d"));
  DispatchContext ctx;
  ctx.kind = monitor::CallKind::kSync;
  ctx.domain = &domain;
  ctx.object_key = 3;

  WireBuffer request;
  monitor::append_ftl_trailer(request, {Uuid::generate(), 1});
  WireCursor in(request);

  SkeletonGuard guard(ctx, {"I", "f", 3}, in, true);
  guard.body_end();
  guard.body_end();  // no double event
  WireBuffer out;
  guard.seal(out);

  // Exactly two records: skel_start + skel_end.
  EXPECT_EQ(domain.monitor_runtime().store().size(), 2u);
  // And exactly one trailer on the reply.
  WireCursor reply(out);
  EXPECT_TRUE(monitor::peel_ftl_trailer(reply).has_value());
  EXPECT_FALSE(monitor::peel_ftl_trailer(reply).has_value());
}

TEST_F(StubsTest, SealWithoutBodyEndStillFiresProbe3) {
  ProcessDomain domain(fabric_, testutil::options("d"));
  DispatchContext ctx;
  ctx.kind = monitor::CallKind::kSync;
  ctx.domain = &domain;

  WireBuffer request;
  monitor::append_ftl_trailer(request, {Uuid::generate(), 1});
  WireCursor in(request);
  SkeletonGuard guard(ctx, {"I", "f", 1}, in, true);
  WireBuffer out;
  guard.seal(out);  // body_end was forgotten; seal covers it
  EXPECT_EQ(domain.monitor_runtime().store().size(), 2u);
}

TEST_F(StubsTest, PlainGuardLeavesTrailerForUserCodeToIgnore) {
  ProcessDomain domain(fabric_, testutil::options("d"));
  DispatchContext ctx;
  ctx.domain = &domain;

  WireBuffer request;
  request.write_i32(7);
  monitor::append_ftl_trailer(request, {Uuid::generate(), 1});
  WireCursor in(request);

  // A plain skeleton still peels (so unmarshaling sees clean params) but
  // fires no probes and appends no reply trailer.
  SkeletonGuard guard(ctx, {"I", "f", 1}, in, /*instrumented=*/false);
  EXPECT_EQ(in.read_i32(), 7);
  EXPECT_EQ(in.remaining(), 0u);
  WireBuffer out;
  guard.seal(out);
  EXPECT_TRUE(out.empty());
  EXPECT_EQ(domain.monitor_runtime().store().size(), 0u);
}

TEST_F(StubsTest, ClientCallOutcomeRecordedOnFailurePaths) {
  ProcessDomain server(fabric_, testutil::options("server"));
  ProcessDomain client(fabric_, testutil::options("client"));
  const ObjectRef ref =
      server.activate(std::make_shared<testutil::EchoServant>());

  ClientCall call(client, ref, testutil::boom_spec(), true);
  call.invoke();
  ASSERT_TRUE(call.has_app_error());

  // Client stub_end and server skel_end both carry the app-error outcome.
  for (const auto& r : client.monitor_runtime().store().snapshot()) {
    if (r.event == monitor::EventKind::kStubEnd) {
      EXPECT_EQ(r.outcome, monitor::CallOutcome::kAppError);
    }
  }
  for (const auto& r : server.monitor_runtime().store().snapshot()) {
    if (r.event == monitor::EventKind::kSkelEnd) {
      EXPECT_EQ(r.outcome, monitor::CallOutcome::kAppError);
    }
  }
}

TEST_F(StubsTest, KindDecisionMatrix) {
  auto opts = testutil::options("solo");
  ProcessDomain domain(fabric_, opts);
  ProcessDomain other(fabric_, testutil::options("other"));
  const ObjectRef local_ref =
      domain.activate(std::make_shared<testutil::EchoServant>());
  const ObjectRef remote_ref =
      other.activate(std::make_shared<testutil::EchoServant>());

  EXPECT_EQ(ClientCall(domain, local_ref, testutil::echo_spec(), true).kind(),
            monitor::CallKind::kCollocated);
  EXPECT_EQ(ClientCall(domain, remote_ref, testutil::echo_spec(), true).kind(),
            monitor::CallKind::kSync);
  // Oneway is never collocated-optimized, even same-domain.
  EXPECT_EQ(ClientCall(domain, local_ref, testutil::ping_spec(), true).kind(),
            monitor::CallKind::kOneway);
}

TEST_F(StubsTest, RequestBufferAccumulatesBeforeInvoke) {
  ProcessDomain server(fabric_, testutil::options("server"));
  ProcessDomain client(fabric_, testutil::options("client"));
  const ObjectRef ref =
      server.activate(std::make_shared<testutil::EchoServant>());

  ClientCall call(client, ref, testutil::add_spec(), true);
  call.request().write_i32(2);
  call.request().write_i32(40);
  EXPECT_EQ(call.invoke().read_i32(), 42);
}

}  // namespace
}  // namespace causeway::orb
