// CORBA/COM bridging: causality propagates seamlessly through an FTL-aware
// bridge and breaks through a naive one (paper Sec. 2.3).
#include "bridge/bridge.h"

#include <gtest/gtest.h>

#include "analysis/dscg.h"
#include "com/stubs.h"
#include "monitor/collector.h"
#include "monitor/tss.h"
#include "orb_test_util.h"

namespace causeway::bridge {
namespace {

using orb::testutil::EchoServant;

// COM component whose body calls back into CORBA through a proxy ref --
// the full hybrid path: CORBA client -> bridge -> COM -> bridge -> CORBA.
class ComMiddle final : public com::ComServant {
 public:
  ComMiddle(orb::ProcessDomain& domain, orb::ObjectRef backend)
      : domain_(domain), backend_(std::move(backend)) {}

  std::string_view interface_name() const override { return "Hybrid::Middle"; }

  com::ComDispatchResult com_dispatch(com::ComDispatchContext& ctx,
                                      com::MethodId method, WireCursor& in,
                                      WireBuffer& out) override {
    com::ComSkelGuard guard(
        ctx, monitor::CallIdentity{"Hybrid::Middle", "relay", ctx.object_id},
        in, true);
    (void)method;
    const std::string text = in.read_string();

    // COM -> CORBA leg through the OrbBackedComServant-style direct call:
    // use the ORB stub support from the COM-hosting domain.
    orb::ClientCall call(domain_, backend_, orb::testutil::echo_spec(), true);
    call.request().write_string(text);
    WireCursor reply = call.invoke();
    const std::string echoed = reply.read_string();

    guard.body_end();
    out.write_string("relay(" + echoed + ")");
    guard.seal(out);
    return {};
  }

 private:
  orb::ProcessDomain& domain_;
  orb::ObjectRef backend_;
};

struct HybridWorld {
  orb::Fabric fabric;
  std::unique_ptr<orb::ProcessDomain> client_domain;
  std::unique_ptr<orb::ProcessDomain> bridge_domain;
  std::unique_ptr<orb::ProcessDomain> backend_domain;
  monitor::MonitorRuntime com_monitor{
      monitor::DomainIdentity{"com-proc", "com-node", "x86"},
      monitor::MonitorConfig{true, monitor::ProbeMode::kLatency},
      ClockDomain{}};
  std::unique_ptr<com::ComRuntime> com_runtime;

  orb::ObjectRef bridged_ref;  // CORBA-visible ref forwarding into COM

  explicit HybridWorld(FtlPolicy policy) {
    monitor::tss_clear();
    client_domain = std::make_unique<orb::ProcessDomain>(
        fabric, orb::testutil::options("client"));
    bridge_domain = std::make_unique<orb::ProcessDomain>(
        fabric, orb::testutil::options("gateway"));
    backend_domain = std::make_unique<orb::ProcessDomain>(
        fabric, orb::testutil::options("backend"));
    com_runtime = std::make_unique<com::ComRuntime>(&com_monitor);

    // CORBA backend servant.
    auto backend_ref =
        backend_domain->activate(std::make_shared<EchoServant>());

    // COM middle object (in an STA) that calls the CORBA backend.
    const auto sta = com_runtime->create_sta();
    const auto middle = com_runtime->register_object(
        sta, com::ComPtr<com::ComServant>(
                 new ComMiddle(*bridge_domain, backend_ref)));

    // CORBA-facing bridge servant forwarding into the COM object.
    bridged_ref = bridge_domain->activate(std::make_shared<ComBackedServant>(
        "Hybrid::Middle", *com_runtime, middle, policy));
  }

  ~HybridWorld() {
    com_runtime->shutdown();
    monitor::tss_clear();
  }

  std::string call_relay(const std::string& text) {
    orb::ClientCall call(*client_domain, bridged_ref,
                         {"Hybrid::Middle", "relay", 0, false}, true);
    call.request().write_string(text);
    WireCursor reply = call.invoke();
    return reply.read_string();
  }

  analysis::Dscg analyze(analysis::LogDatabase& db) {
    monitor::Collector collector;
    collector.attach(&client_domain->monitor_runtime());
    collector.attach(&bridge_domain->monitor_runtime());
    collector.attach(&backend_domain->monitor_runtime());
    collector.attach(&com_monitor);
    db.ingest(collector.collect());
    return analysis::Dscg::build(db);
  }
};

TEST(Bridge, FtlAwareBridgePreservesOneChain) {
  HybridWorld world(FtlPolicy::kForward);
  EXPECT_EQ(world.call_relay("ping"), "relay(ping!)");

  analysis::LogDatabase db;
  auto dscg = world.analyze(db);

  // One causal chain spans CORBA -> COM -> CORBA: client relay call at the
  // top, the COM middle frame below it, the backend echo below that.
  ASSERT_EQ(db.chains().size(), 1u);
  EXPECT_EQ(dscg.anomaly_count(), 0u);
  ASSERT_EQ(dscg.roots().size(), 1u);
  const auto& tops = dscg.roots()[0]->root->children;
  ASSERT_EQ(tops.size(), 1u);
  EXPECT_EQ(tops[0]->function_name, "relay");
  ASSERT_EQ(tops[0]->children.size(), 1u);
  EXPECT_EQ(tops[0]->children[0]->function_name, "echo");
  // The echo executed in the backend process; the relay body in COM.
  EXPECT_EQ(tops[0]->children[0]->server_process(), "backend");
}

TEST(Bridge, NaiveBridgeBreaksTheChain) {
  HybridWorld world(FtlPolicy::kStrip);
  EXPECT_EQ(world.call_relay("ping"), "relay(ping!)");  // calls still work

  analysis::LogDatabase db;
  auto dscg = world.analyze(db);

  // The FTL was stripped at the bridge: the COM side starts a fresh chain,
  // so the client's view ends at the bridge and the correlation is lost.
  EXPECT_GT(db.chains().size(), 1u);
  bool client_chain_has_backend_child = false;
  for (const auto& tree : dscg.chains()) {
    for (const auto& top : tree->root->children) {
      if (top->function_name == "relay" &&
          top->record(monitor::EventKind::kStubStart) &&
          top->record(monitor::EventKind::kStubStart)->process_name ==
              "client") {
        client_chain_has_backend_child = !top->children.empty();
      }
    }
  }
  EXPECT_FALSE(client_chain_has_backend_child);
}

TEST(Bridge, ComToCorbaDirection) {
  // A COM client object calling a CORBA servant through OrbBackedComServant.
  monitor::tss_clear();
  orb::Fabric fabric;
  orb::ProcessDomain backend(fabric, orb::testutil::options("backend"));
  monitor::MonitorRuntime com_monitor(
      monitor::DomainIdentity{"com-proc", "n", "x86"},
      monitor::MonitorConfig{true, monitor::ProbeMode::kLatency},
      ClockDomain{});
  com::ComRuntime com_rt(&com_monitor);

  auto backend_ref = backend.activate(std::make_shared<EchoServant>());
  const auto sta = com_rt.create_sta();
  const auto bridged = com_rt.register_object(
      sta, com::ComPtr<com::ComServant>(new OrbBackedComServant(
               "Test::Echo", backend, backend_ref, FtlPolicy::kForward)));

  com::ComCall call(com_rt, bridged, {"Test::Echo", "echo", 0, false}, true);
  call.request().write_string("com-side");
  WireCursor reply = call.invoke();
  EXPECT_EQ(reply.read_string(), "com-side!");

  // The chain started at the COM stub continues into the ORB servant.
  analysis::LogDatabase db;
  monitor::Collector collector;
  collector.attach(&com_monitor);
  collector.attach(&backend.monitor_runtime());
  db.ingest(collector.collect());
  EXPECT_EQ(db.chains().size(), 1u);
  auto dscg = analysis::Dscg::build(db);
  EXPECT_EQ(dscg.anomaly_count(), 0u);
  com_rt.shutdown();
  monitor::tss_clear();
}

TEST(Bridge, ErrorStatusMapsAcross) {
  monitor::tss_clear();
  orb::Fabric fabric;
  orb::ProcessDomain client(fabric, orb::testutil::options("client"));
  orb::ProcessDomain gateway(fabric, orb::testutil::options("gateway"));
  monitor::MonitorRuntime com_monitor(
      monitor::DomainIdentity{"com-proc", "n", "x86"},
      monitor::MonitorConfig{true, monitor::ProbeMode::kLatency},
      ClockDomain{});
  com::ComRuntime com_rt(&com_monitor);

  // Bridge to a COM object id that does not exist.
  auto ref = gateway.activate(std::make_shared<ComBackedServant>(
      "Hybrid::Middle", com_rt, /*target=*/424242, FtlPolicy::kForward));
  orb::ClientCall call(client, ref, {"Hybrid::Middle", "relay", 0, false},
                       true);
  call.request().write_string("x");
  EXPECT_THROW(call.invoke(), orb::ObjectNotFound);
  com_rt.shutdown();
  monitor::tss_clear();
}

}  // namespace
}  // namespace causeway::bridge
