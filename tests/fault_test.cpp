// Failure injection: lost messages, timeouts, and the monitoring pipeline's
// behaviour under partial data -- the system must degrade, never lie or
// hang.
#include <gtest/gtest.h>

#include "analysis/dscg.h"
#include "analysis/topology.h"
#include "monitor/tss.h"
#include "orb/errors.h"
#include "orb_test_util.h"

namespace causeway::orb {
namespace {

using testutil::EchoServant;

class FaultTest : public ::testing::Test {
 protected:
  void SetUp() override { monitor::tss_clear(); }
  void TearDown() override { monitor::tss_clear(); }
  Fabric fabric_;
};

TEST_F(FaultTest, LostMessagesSurfaceAsTimeouts) {
  ProcessDomain server(fabric_, testutil::options("server"));
  auto client_opts = testutil::options("client");
  client_opts.call_timeout = 40 * kNanosPerMilli;
  ProcessDomain client(fabric_, client_opts);
  const ObjectRef ref = server.activate(std::make_shared<EchoServant>());

  fabric_.set_loss(0.35, /*seed=*/99);
  int ok = 0, timeouts = 0;
  for (int i = 0; i < 30; ++i) {
    monitor::tss_clear();
    ClientCall call(client, ref, testutil::echo_spec(), true);
    call.request().write_string("x");
    try {
      call.invoke();
      ++ok;
    } catch (const TimeoutError&) {
      ++timeouts;
    }
  }
  EXPECT_GT(timeouts, 0);
  EXPECT_GT(ok, 0);
  EXPECT_GT(fabric_.messages_dropped(), 0u);

  // Recovery: with loss off, calls work again.
  fabric_.set_loss(0.0);
  monitor::tss_clear();
  ClientCall call(client, ref, testutil::echo_spec(), true);
  call.request().write_string("back");
  WireCursor reply = call.invoke();
  EXPECT_EQ(reply.read_string(), "back!");
}

TEST_F(FaultTest, PartialChainsAreFlaggedNotFabricated) {
  ProcessDomain server(fabric_, testutil::options("server"));
  auto client_opts = testutil::options("client");
  client_opts.call_timeout = 40 * kNanosPerMilli;
  ProcessDomain client(fabric_, client_opts);
  const ObjectRef ref = server.activate(std::make_shared<EchoServant>());

  fabric_.set_loss(0.4, /*seed=*/7);
  int timeouts = 0;
  for (int i = 0; i < 20; ++i) {
    monitor::tss_clear();
    ClientCall call(client, ref, testutil::echo_spec(), true);
    call.request().write_string("y");
    try {
      call.invoke();
    } catch (const TimeoutError&) {
      ++timeouts;
    }
  }
  ASSERT_GT(timeouts, 0);
  fabric_.set_loss(0.0);

  analysis::LogDatabase db;
  monitor::Collector collector;
  collector.attach(&client.monitor_runtime());
  collector.attach(&server.monitor_runtime());
  db.ingest(collector.collect());
  auto dscg = analysis::Dscg::build(db);

  // A timed-out call leaves a stub_start with no stub_end: the chain must
  // carry anomalies, and the analyzer must not invent completed calls.
  EXPECT_GT(dscg.anomaly_count(), 0u);
  EXPECT_LE(dscg.call_count(), 20u + 1);
}

TEST_F(FaultTest, LossRateZeroIsLossless) {
  ProcessDomain server(fabric_, testutil::options("server"));
  ProcessDomain client(fabric_, testutil::options("client"));
  const ObjectRef ref = server.activate(std::make_shared<EchoServant>());
  for (int i = 0; i < 50; ++i) {
    ClientCall call(client, ref, testutil::echo_spec(), true);
    call.request().write_string("z");
    call.invoke();
  }
  EXPECT_EQ(fabric_.messages_dropped(), 0u);
}

TEST_F(FaultTest, ServerRestartInvalidatesOldRefsButServesNewOnes) {
  auto client_opts = testutil::options("client");
  client_opts.call_timeout = 60 * kNanosPerMilli;
  ProcessDomain client(fabric_, client_opts);

  ObjectRef old_ref;
  {
    ProcessDomain server(fabric_, testutil::options("server"));
    old_ref = server.activate(std::make_shared<EchoServant>());
    ClientCall call(client, old_ref, testutil::echo_spec(), true);
    call.request().write_string("before");
    EXPECT_EQ(call.invoke().read_string(), "before!");
  }  // server "crashes"

  // Old ref: unreachable while down.
  {
    ClientCall call(client, old_ref, testutil::echo_spec(), true);
    call.request().write_string("x");
    EXPECT_THROW(call.invoke(), TransportError);
  }

  // "Restart": a new process under the same name.  The stale key no longer
  // resolves (fresh adapter), but a fresh activation works.
  ProcessDomain revived(fabric_, testutil::options("server"));
  const ObjectRef new_ref = revived.activate(std::make_shared<EchoServant>());
  {
    ClientCall stale(client, old_ref, testutil::echo_spec(), true);
    stale.request().write_string("x");
    EXPECT_THROW(stale.invoke(), ObjectNotFound);
  }
  {
    ClientCall fresh(client, new_ref, testutil::echo_spec(), true);
    fresh.request().write_string("after");
    EXPECT_EQ(fresh.invoke().read_string(), "after!");
  }
}

TEST_F(FaultTest, TopologyOnCleanRun) {
  ProcessDomain server(fabric_, testutil::options("server"));
  ProcessDomain client(fabric_, testutil::options("client"));
  const ObjectRef ref = server.activate(std::make_shared<EchoServant>());
  for (int i = 0; i < 4; ++i) {
    ClientCall call(client, ref, testutil::add_spec(), true);
    call.request().write_i32(i);
    call.request().write_i32(i);
    call.invoke();
  }
  analysis::LogDatabase db;
  monitor::Collector collector;
  collector.attach(&client.monitor_runtime());
  collector.attach(&server.monitor_runtime());
  db.ingest(collector.collect());
  auto dscg = analysis::Dscg::build(db);

  const auto topo = analysis::compute_topology(dscg);
  EXPECT_EQ(topo.calls, 4u);
  EXPECT_EQ(topo.chains, 1u);
  EXPECT_EQ(topo.max_depth, 1u);
  EXPECT_EQ(topo.sync_calls, 4u);
  EXPECT_EQ(topo.cross_process, 4u);
  EXPECT_EQ(topo.cross_thread, 4u);
  EXPECT_EQ(topo.cross_processor, 0u);  // both domains default to x86
  EXPECT_EQ(topo.interfaces, 1u);
  EXPECT_EQ(topo.functions, 1u);
  EXPECT_EQ(topo.objects, 1u);
  EXPECT_EQ(topo.max_fanout, 0u);
}

}  // namespace
}  // namespace causeway::orb
