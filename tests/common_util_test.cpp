#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "common/clock.h"
#include "common/cpu.h"
#include "common/queue.h"
#include "common/rng.h"
#include "common/strings.h"
#include "common/work.h"

namespace causeway {
namespace {

TEST(Clock, SteadyIsMonotonic) {
  Nanos last = steady_now_ns();
  for (int i = 0; i < 1000; ++i) {
    const Nanos now = steady_now_ns();
    EXPECT_GE(now, last);
    last = now;
  }
}

TEST(Clock, DomainAppliesSkew) {
  const ClockDomain base;
  const ClockDomain skewed(3600 * kNanosPerSecond, 0.0);
  const Nanos a = base.now();
  const Nanos b = skewed.now();
  EXPECT_GT(b - a, 3599 * kNanosPerSecond);
}

TEST(Clock, DomainDriftScalesElapsedTime) {
  // Two readings through a heavily drifting domain grow faster than through
  // an undrifting one.
  const ClockDomain fast(0, 100000.0);  // +10%
  const Nanos w0 = steady_now_ns();
  const Nanos f0 = fast.now();
  idle_for(20 * kNanosPerMilli);
  const Nanos w1 = steady_now_ns();
  const Nanos f1 = fast.now();
  const double ratio =
      static_cast<double>(f1 - f0) / static_cast<double>(w1 - w0);
  EXPECT_GT(ratio, 1.05);
  EXPECT_LT(ratio, 1.15);
}

TEST(Cpu, ThreadCpuIsMonotonic) {
  Nanos last = thread_cpu_now_ns();
  for (int i = 0; i < 100; ++i) {
    churn(static_cast<std::uint64_t>(i), 1000);
    const Nanos now = thread_cpu_now_ns();
    EXPECT_GE(now, last);
    last = now;
  }
}

TEST(Cpu, SleepBurnsNoCpu) {
  const Nanos c0 = thread_cpu_now_ns();
  idle_for(30 * kNanosPerMilli);
  const Nanos c1 = thread_cpu_now_ns();
  EXPECT_LT(c1 - c0, 10 * kNanosPerMilli);
}

TEST(Work, BurnCpuConsumesRequestedAmount) {
  const Nanos want = 5 * kNanosPerMilli;
  const Nanos c0 = thread_cpu_now_ns();
  burn_cpu(want);
  const Nanos got = thread_cpu_now_ns() - c0;
  EXPECT_GE(got, want);
  EXPECT_LT(got, want * 3);  // loose: scheduling noise on a busy host
}

TEST(Work, BurnCpuZeroOrNegativeIsNoop) {
  const Nanos c0 = thread_cpu_now_ns();
  burn_cpu(0);
  burn_cpu(-100);
  EXPECT_LT(thread_cpu_now_ns() - c0, kNanosPerMilli);
}

TEST(Work, ChurnIsDeterministic) {
  EXPECT_EQ(churn(1, 100), churn(1, 100));
  EXPECT_NE(churn(1, 100), churn(2, 100));
  EXPECT_NE(churn(1, 100), churn(1, 101));
}

TEST(Queue, FifoOrder) {
  BlockingQueue<int> q;
  for (int i = 0; i < 100; ++i) q.push(i);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(q.pop(), i);
}

TEST(Queue, CloseDrainsThenReturnsNull) {
  BlockingQueue<int> q;
  q.push(1);
  q.push(2);
  q.close();
  EXPECT_FALSE(q.push(3));
  EXPECT_EQ(q.pop(), 1);
  EXPECT_EQ(q.pop(), 2);
  EXPECT_EQ(q.pop(), std::nullopt);
}

TEST(Queue, PopBlocksUntilPush) {
  BlockingQueue<int> q;
  std::atomic<bool> got{false};
  std::thread consumer([&] {
    EXPECT_EQ(q.pop(), 42);
    got = true;
  });
  idle_for(5 * kNanosPerMilli);
  EXPECT_FALSE(got.load());
  q.push(42);
  consumer.join();
  EXPECT_TRUE(got.load());
}

TEST(Queue, ManyProducersManyConsumers) {
  BlockingQueue<int> q;
  constexpr int kProducers = 4, kPerProducer = 500;
  std::atomic<long> sum{0};
  std::atomic<int> count{0};
  std::vector<std::thread> consumers;
  for (int i = 0; i < 3; ++i) {
    consumers.emplace_back([&] {
      while (auto v = q.pop()) {
        sum += *v;
        ++count;
      }
    });
  }
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (int i = 0; i < kPerProducer; ++i) q.push(p * kPerProducer + i);
    });
  }
  for (auto& t : producers) t.join();
  q.close();
  for (auto& t : consumers) t.join();
  const long n = kProducers * kPerProducer;
  EXPECT_EQ(count.load(), n);
  EXPECT_EQ(sum.load(), n * (n - 1) / 2);
}

TEST(Rng, Deterministic) {
  Xoshiro256 a(7), b(7), c(8);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
  bool differs = false;
  Xoshiro256 a2(7);
  for (int i = 0; i < 100; ++i) differs |= (a2.next() != c.next());
  EXPECT_TRUE(differs);
}

TEST(Rng, UniformInRange) {
  Xoshiro256 rng(3);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.uniform(17), 17u);
    const auto v = rng.range(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
    const double d = rng.real01();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, ChanceRoughlyCalibrated) {
  Xoshiro256 rng(11);
  int hits = 0;
  for (int i = 0; i < 20000; ++i) hits += rng.chance(0.25) ? 1 : 0;
  EXPECT_NEAR(hits / 20000.0, 0.25, 0.02);
}

TEST(Strings, Strf) {
  EXPECT_EQ(strf("x=%d y=%s", 5, "abc"), "x=5 y=abc");
  EXPECT_EQ(strf("%s", ""), "");
  EXPECT_EQ(strf("%08x", 0x1au), "0000001a");
}

TEST(Strings, Join) {
  EXPECT_EQ(join({}, ","), "");
  EXPECT_EQ(join({"a"}, ","), "a");
  EXPECT_EQ(join({"a", "b", "c"}, "::"), "a::b::c");
}

TEST(Strings, XmlEscape) {
  EXPECT_EQ(xml_escape("a<b>&\"c\""), "a&lt;b&gt;&amp;&quot;c&quot;");
  EXPECT_EQ(xml_escape("plain"), "plain");
}

TEST(Strings, JsonEscape) {
  EXPECT_EQ(json_escape("a\"b\\c\n"), "a\\\"b\\\\c\\n");
  EXPECT_EQ(json_escape(std::string(1, '\x01')), "\\u0001");
}

}  // namespace
}  // namespace causeway
