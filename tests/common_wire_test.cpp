#include "common/wire.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/wire_io.h"

namespace causeway {
namespace {

TEST(Wire, PrimitiveRoundTrip) {
  WireBuffer b;
  b.write_u8(0xab);
  b.write_bool(true);
  b.write_bool(false);
  b.write_u16(0x1234);
  b.write_u32(0xdeadbeef);
  b.write_u64(0x0123456789abcdefull);
  b.write_i32(-42);
  b.write_i64(-1'000'000'000'000ll);
  b.write_f64(3.25);

  WireCursor c(b);
  EXPECT_EQ(c.read_u8(), 0xab);
  EXPECT_TRUE(c.read_bool());
  EXPECT_FALSE(c.read_bool());
  EXPECT_EQ(c.read_u16(), 0x1234);
  EXPECT_EQ(c.read_u32(), 0xdeadbeefu);
  EXPECT_EQ(c.read_u64(), 0x0123456789abcdefull);
  EXPECT_EQ(c.read_i32(), -42);
  EXPECT_EQ(c.read_i64(), -1'000'000'000'000ll);
  EXPECT_DOUBLE_EQ(c.read_f64(), 3.25);
  EXPECT_EQ(c.remaining(), 0u);
}

TEST(Wire, StringAndBytes) {
  WireBuffer b;
  b.write_string("hello");
  b.write_string("");
  b.write_string(std::string(100000, 'x'));
  std::vector<std::uint8_t> blob{1, 2, 3, 0, 255};
  b.write_bytes(blob);

  WireCursor c(b);
  EXPECT_EQ(c.read_string(), "hello");
  EXPECT_EQ(c.read_string(), "");
  EXPECT_EQ(c.read_string(), std::string(100000, 'x'));
  EXPECT_EQ(c.read_bytes(), blob);
}

TEST(Wire, UnderflowThrows) {
  WireBuffer b;
  b.write_u16(7);
  WireCursor c(b);
  EXPECT_EQ(c.read_u16(), 7);
  EXPECT_THROW(c.read_u8(), WireError);
}

TEST(Wire, StringLengthBeyondBufferThrows) {
  WireBuffer b;
  b.write_u32(1000);  // claims 1000 bytes follow
  b.write_u8('x');
  WireCursor c(b);
  EXPECT_THROW(c.read_string(), WireError);
}

TEST(Wire, VarintRoundTrip) {
  const std::uint64_t values[] = {0,          1,
                                  127,        128,
                                  300,        16383,
                                  16384,      0xdeadbeefull,
                                  (1ull << 56) - 1, 1ull << 63,
                                  ~0ull};
  WireBuffer b;
  for (std::uint64_t v : values) b.write_varint(v);
  WireCursor c(b);
  for (std::uint64_t v : values) EXPECT_EQ(c.read_varint(), v);
  EXPECT_EQ(c.remaining(), 0u);
}

TEST(Wire, VarintEncodedSizes) {
  auto size_of = [](std::uint64_t v) {
    WireBuffer b;
    b.write_varint(v);
    return b.size();
  };
  EXPECT_EQ(size_of(0), 1u);
  EXPECT_EQ(size_of(127), 1u);
  EXPECT_EQ(size_of(128), 2u);
  EXPECT_EQ(size_of(16383), 2u);
  EXPECT_EQ(size_of(16384), 3u);
  EXPECT_EQ(size_of(~0ull), 10u);
}

TEST(Wire, SvarintRoundTrip) {
  const std::int64_t values[] = {0,       1,       -1,
                                 63,      -64,     64,
                                 -65,     1'000'000, -1'000'000,
                                 INT64_MAX, INT64_MIN};
  WireBuffer b;
  for (std::int64_t v : values) b.write_svarint(v);
  WireCursor c(b);
  for (std::int64_t v : values) EXPECT_EQ(c.read_svarint(), v);
  EXPECT_EQ(c.remaining(), 0u);
}

TEST(Wire, ZigzagMapsSmallMagnitudesToSmallCodes) {
  EXPECT_EQ(zigzag_encode(0), 0u);
  EXPECT_EQ(zigzag_encode(-1), 1u);
  EXPECT_EQ(zigzag_encode(1), 2u);
  EXPECT_EQ(zigzag_encode(-2), 3u);
  EXPECT_EQ(zigzag_encode(2), 4u);
  EXPECT_EQ(zigzag_decode(zigzag_encode(INT64_MIN)), INT64_MIN);
  EXPECT_EQ(zigzag_decode(zigzag_encode(INT64_MAX)), INT64_MAX);
}

TEST(Wire, TruncatedVarintThrows) {
  WireBuffer b;
  b.write_u8(0x80);  // continuation bit set, then nothing follows
  WireCursor c(b);
  EXPECT_THROW(c.read_varint(), WireError);
}

TEST(Wire, OverlongVarintThrows) {
  // Ten continuation bytes: an eleventh byte would carry bit 70.
  {
    WireBuffer b;
    for (int i = 0; i < 10; ++i) b.write_u8(0x80);
    b.write_u8(0x00);
    WireCursor c(b);
    EXPECT_THROW(c.read_varint(), WireError);
  }
  // Ten bytes whose last carries value bits beyond the 64th.
  {
    WireBuffer b;
    for (int i = 0; i < 9; ++i) b.write_u8(0x80);
    b.write_u8(0x02);
    WireCursor c(b);
    EXPECT_THROW(c.read_varint(), WireError);
  }
  // The canonical ten-byte maximum still decodes.
  {
    WireBuffer b;
    b.write_varint(~0ull);
    WireCursor c(b);
    EXPECT_EQ(c.read_varint(), ~0ull);
  }
}

TEST(Wire, ReadViewIsZeroCopyAndBounded) {
  WireBuffer b;
  b.write_u8('h');
  b.write_u8('i');
  WireCursor c(b);
  const std::string_view v = c.read_view(2);
  EXPECT_EQ(v, "hi");
  EXPECT_EQ(static_cast<const void*>(v.data()),
            static_cast<const void*>(b.bytes().data()));
  EXPECT_THROW(c.read_view(1), WireError);
}

TEST(Wire, OverwriteU64PatchesInPlace) {
  WireBuffer b;
  b.write_u32(7);
  const std::size_t at = b.size();
  b.write_u64(0);  // reserved length word
  b.write_u32(9);
  b.overwrite_u64(at, 0x0102030405060708ull);
  WireCursor c(b);
  EXPECT_EQ(c.read_u32(), 7u);
  EXPECT_EQ(c.read_u64(), 0x0102030405060708ull);
  EXPECT_EQ(c.read_u32(), 9u);
  EXPECT_THROW(b.overwrite_u64(b.size() - 4, 1), WireError);
}

TEST(Wire, TruncateLimitsWindow) {
  WireBuffer b;
  b.write_u32(1);
  b.write_u32(2);
  b.write_u32(3);
  WireCursor c(b);
  c.truncate(8);
  EXPECT_EQ(c.read_u32(), 1u);
  EXPECT_EQ(c.read_u32(), 2u);
  EXPECT_THROW(c.read_u32(), WireError);
}

TEST(Wire, TruncateBehindPositionThrows) {
  WireBuffer b;
  b.write_u64(1);
  WireCursor c(b);
  c.read_u32();
  EXPECT_THROW(c.truncate(2), WireError);
  EXPECT_THROW(c.truncate(100), WireError);
}

TEST(Wire, PeekTailDoesNotConsume) {
  WireBuffer b;
  b.write_u32(0xaabbccdd);
  WireCursor c(b);
  auto tail = c.peek_tail(4);
  EXPECT_EQ(tail.size(), 4u);
  EXPECT_EQ(tail[0], 0xdd);
  EXPECT_EQ(c.remaining(), 4u);
  EXPECT_EQ(c.read_u32(), 0xaabbccddu);
}

TEST(Wire, PeekTailPastStartThrows) {
  WireBuffer b;
  b.write_u16(1);
  WireCursor c(b);
  EXPECT_THROW(c.peek_tail(3), WireError);
}

TEST(WireIo, VectorRoundTrip) {
  WireBuffer b;
  std::vector<std::int32_t> ints{1, -2, 3};
  std::vector<std::string> strings{"a", "", "ccc"};
  std::vector<std::vector<double>> nested{{1.5}, {}, {2.5, -3.5}};
  wire_write(b, ints);
  wire_write(b, strings);
  wire_write(b, nested);

  WireCursor c(b);
  std::vector<std::int32_t> ints2;
  std::vector<std::string> strings2;
  std::vector<std::vector<double>> nested2;
  wire_read(c, ints2);
  wire_read(c, strings2);
  wire_read(c, nested2);
  EXPECT_EQ(ints2, ints);
  EXPECT_EQ(strings2, strings);
  EXPECT_EQ(nested2, nested);
}

TEST(WireIo, FloatRoundTrip) {
  WireBuffer b;
  wire_write(b, 1.5f);
  wire_write(b, -0.0f);
  WireCursor c(b);
  float f = 0;
  wire_read(c, f);
  EXPECT_EQ(f, 1.5f);
  wire_read(c, f);
  EXPECT_EQ(f, -0.0f);
}

// Property sweep: random typed sequences survive a round trip.
class WireRoundTrip : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(WireRoundTrip, RandomSequences) {
  Xoshiro256 rng(GetParam());
  WireBuffer b;
  std::vector<std::uint64_t> expect_u64;
  std::vector<std::string> expect_str;
  const std::size_t n = 1 + rng.uniform(200);
  for (std::size_t i = 0; i < n; ++i) {
    expect_u64.push_back(rng.next());
    std::string s;
    const std::size_t len = rng.uniform(64);
    for (std::size_t k = 0; k < len; ++k) {
      s += static_cast<char>(rng.uniform(256));
    }
    expect_str.push_back(std::move(s));
  }
  for (std::size_t i = 0; i < n; ++i) {
    b.write_u64(expect_u64[i]);
    b.write_string(expect_str[i]);
  }
  WireCursor c(b);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_EQ(c.read_u64(), expect_u64[i]);
    EXPECT_EQ(c.read_string(), expect_str[i]);
  }
  EXPECT_EQ(c.remaining(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, WireRoundTrip,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

}  // namespace
}  // namespace causeway
