// COM-like runtime: apartments, ORPC, STA message-loop reentrancy (the O1
// violation), and the channel hooks that keep causal chains untangled.
#include "com/apartment.h"

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <thread>

#include "analysis/dscg.h"
#include "com/stubs.h"
#include "common/work.h"
#include "monitor/tss.h"

namespace causeway::com {
namespace {

monitor::MonitorRuntime make_monitor() {
  return monitor::MonitorRuntime(
      monitor::DomainIdentity{"com-proc", "com-node", "x86"},
      monitor::MonitorConfig{true, monitor::ProbeMode::kLatency},
      ClockDomain{});
}

// Simple component: method 0 "double" doubles an int, optionally after a
// delay (used to hold an STA caller blocked long enough to force pumping).
class Doubler final : public ComServant {
 public:
  explicit Doubler(Nanos delay = 0) : delay_(delay) {}

  std::string_view interface_name() const override { return "Com::Doubler"; }

  ComDispatchResult com_dispatch(ComDispatchContext& ctx, MethodId method,
                                 WireCursor& in, WireBuffer& out) override {
    ComSkelGuard guard(ctx,
                       monitor::CallIdentity{"Com::Doubler", "double_it",
                                             ctx.object_id},
                       in, true);
    ComDispatchResult r;
    if (method != 0) {
      r.status = CallStatus::kSystemError;
      r.error_text = "bad method";
      guard.seal(out);
      return r;
    }
    const std::int32_t x = in.read_i32();
    if (delay_ > 0) idle_for(delay_);
    guard.body_end();
    out.write_i32(2 * x);
    guard.seal(out);
    return r;
  }

 private:
  Nanos delay_;
};

std::int32_t call_double(ComRuntime& rt, ComObjectId target, std::int32_t x,
                         bool instrumented = true) {
  ComCall call(rt, target, {"Com::Doubler", "double_it", 0, false},
               instrumented);
  call.request().write_i32(x);
  WireCursor reply = call.invoke();
  return reply.read_i32();
}

class ComTest : public ::testing::Test {
 protected:
  void SetUp() override { monitor::tss_clear(); }
  void TearDown() override { monitor::tss_clear(); }
};

TEST_F(ComTest, IUnknownRefCounting) {
  auto* raw = new Doubler();
  EXPECT_EQ(raw->add_ref(), 2u);
  EXPECT_EQ(raw->release(), 1u);
  void* out = nullptr;
  EXPECT_EQ(raw->query_interface("IUnknown", &out), kOk);
  EXPECT_EQ(out, raw);
  raw->release();  // from QI
  EXPECT_EQ(raw->query_interface("INope", &out), kNoInterface);
  EXPECT_EQ(out, nullptr);
  raw->release();  // destroys
}

TEST_F(ComTest, ComPtrManagesLifetime) {
  ComPtr<Doubler> p = ComPtr<Doubler>::make();
  ComPtr<Doubler> q = p;  // add_ref
  ComPtr<Doubler> r = std::move(q);
  EXPECT_TRUE(p);
  EXPECT_FALSE(q);  // NOLINT(bugprone-use-after-move)
  EXPECT_TRUE(r);
}

TEST_F(ComTest, StaDispatch) {
  auto mon = make_monitor();
  ComRuntime rt(&mon);
  const ApartmentId sta = rt.create_sta();
  const ComObjectId obj = rt.register_object(sta, ComPtr<ComServant>(new Doubler()));
  ASSERT_NE(obj, 0u);
  EXPECT_EQ(call_double(rt, obj, 21), 42);
}

TEST_F(ComTest, MtaDispatch) {
  auto mon = make_monitor();
  ComRuntime rt(&mon);
  const ApartmentId mta = rt.create_mta(2);
  const ComObjectId obj = rt.register_object(mta, ComPtr<ComServant>(new Doubler()));
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(call_double(rt, obj, i), 2 * i);
  }
}

TEST_F(ComTest, MissingObjectFails) {
  auto mon = make_monitor();
  ComRuntime rt(&mon);
  ComCall call(rt, 777, {"Com::Doubler", "double_it", 0, false}, true);
  call.request().write_i32(1);
  EXPECT_THROW(call.invoke(), ComError);
}

TEST_F(ComTest, RevokedObjectFails) {
  auto mon = make_monitor();
  ComRuntime rt(&mon);
  const ApartmentId sta = rt.create_sta();
  const ComObjectId obj = rt.register_object(sta, ComPtr<ComServant>(new Doubler()));
  rt.revoke_object(obj);
  ComCall call(rt, obj, {"Com::Doubler", "double_it", 0, false}, true);
  call.request().write_i32(1);
  EXPECT_THROW(call.invoke(), ComError);
}

// Component whose method calls another object, used for reentrancy tests.
// method 0: outer(x) -> calls helper.double_it(x), returns result + 1.
struct FrameCounter {
  std::atomic<int> current{0};
  std::atomic<int> peak{0};

  void enter() {
    const int now = current.fetch_add(1) + 1;
    int old = peak.load();
    while (old < now && !peak.compare_exchange_weak(old, now)) {
    }
  }
  void leave() { current.fetch_sub(1); }
};

class Chainer final : public ComServant {
 public:
  Chainer(std::string interface_name, ComObjectId helper,
          FrameCounter* frames = nullptr)
      : interface_name_(std::move(interface_name)),
        helper_(helper),
        frames_(frames) {}

  std::string_view interface_name() const override { return interface_name_; }

  ComDispatchResult com_dispatch(ComDispatchContext& ctx, MethodId method,
                                 WireCursor& in, WireBuffer& out) override {
    (void)method;
    ComSkelGuard guard(
        ctx, monitor::CallIdentity{interface_name_, "outer", ctx.object_id},
        in, true);
    const std::int32_t x = in.read_i32();
    if (frames_) frames_->enter();
    const std::int32_t doubled = call_double(*ctx.runtime, helper_, x);
    if (frames_) frames_->leave();
    guard.body_end();
    out.write_i32(doubled + 1);
    guard.seal(out);
    return {};
  }

 private:
  std::string interface_name_;
  ComObjectId helper_;
  FrameCounter* frames_;
};

TEST_F(ComTest, StaPumpsWhileBlockedObservationO1Violated) {
  auto mon = make_monitor();
  ComRuntime rt(&mon);
  const ApartmentId sta = rt.create_sta();
  const ApartmentId helper_sta = rt.create_sta();
  const ComObjectId helper = rt.register_object(
      helper_sta, ComPtr<ComServant>(new Doubler(40 * kNanosPerMilli)));
  FrameCounter frames;
  const ComObjectId wa = rt.register_object(
      sta, ComPtr<ComServant>(new Chainer("Com::WorkerA", helper, &frames)));
  const ComObjectId wb = rt.register_object(
      sta, ComPtr<ComServant>(new Chainer("Com::WorkerB", helper, &frames)));

  // Two plain client threads call into the SAME STA; the second call can
  // only be served while the first is blocked on its outbound call -- two
  // simultaneously-open frames prove the apartment thread multiplexed.
  std::int32_t r1 = 0, r2 = 0;
  std::thread t1([&] {
    monitor::tss_clear();
    ComCall c(rt, wa, {"Com::WorkerA", "outer", 0, false}, true);
    c.request().write_i32(10);
    r1 = c.invoke().read_i32();
  });
  idle_for(5 * kNanosPerMilli);
  std::thread t2([&] {
    monitor::tss_clear();
    ComCall c(rt, wb, {"Com::WorkerB", "outer", 0, false}, true);
    c.request().write_i32(20);
    r2 = c.invoke().read_i32();
  });
  t1.join();
  t2.join();
  EXPECT_EQ(r1, 21);
  EXPECT_EQ(r2, 41);
  EXPECT_GE(frames.peak.load(), 2);
}

TEST_F(ComTest, ReentrantCallbackIntoBlockedSta) {
  // A (STA1) -> B (STA2) -> callback into A (STA1 is blocked pumping).
  // Without pumping this deadlocks; the test completing proves reentrancy.
  auto mon = make_monitor();
  ComRuntime rt(&mon);
  const ApartmentId sta1 = rt.create_sta();
  const ApartmentId sta2 = rt.create_sta();
  const ComObjectId target =
      rt.register_object(sta1, ComPtr<ComServant>(new Doubler()));
  // B in STA2 calls back into STA1's Doubler.
  const ComObjectId back =
      rt.register_object(sta2, ComPtr<ComServant>(new Chainer("Com::Back", target)));
  // A in STA1 calls B.
  auto* a = new Chainer("Com::Front", back);
  const ComObjectId front = rt.register_object(sta1, ComPtr<ComServant>(a));

  ComCall c(rt, front, {"Com::Front", "outer", 0, false}, true);
  c.request().write_i32(5);
  // front: back(5)+1; back: double(5)+1 -> 11... then doubled? Chainer calls
  // call_double on its helper: back's helper is `target` (a Doubler) ->
  // 2*5=10 +1 = 11; front's helper is `back`, reached via call_double which
  // doubles nothing (back is a Chainer, method 0 = outer): outer(5) = 11,
  // then front adds 1 -> 12.
  EXPECT_EQ(c.invoke().read_i32(), 12);
}

TEST_F(ComTest, SameApartmentCallIsCollocated) {
  auto mon = make_monitor();
  ComRuntime rt(&mon);
  const ApartmentId sta = rt.create_sta();
  const ComObjectId helper =
      rt.register_object(sta, ComPtr<ComServant>(new Doubler()));
  const ComObjectId worker =
      rt.register_object(sta, ComPtr<ComServant>(new Chainer("Com::W", helper)));

  ComCall c(rt, worker, {"Com::W", "outer", 0, false}, true);
  c.request().write_i32(3);
  EXPECT_EQ(c.invoke().read_i32(), 7);

  // The inner call shares the apartment: its records carry the collocated
  // kind and the same thread as the outer body.
  bool saw_collocated = false;
  for (const auto& r : mon.store().snapshot()) {
    if (r.kind == monitor::CallKind::kCollocated) saw_collocated = true;
  }
  EXPECT_TRUE(saw_collocated);
}

TEST_F(ComTest, PostIsFireAndForget) {
  auto mon = make_monitor();
  ComRuntime rt(&mon);
  const ApartmentId sta = rt.create_sta();
  auto* doubler = new Doubler();
  const ComObjectId obj = rt.register_object(sta, ComPtr<ComServant>(doubler));

  ComCall call(rt, obj, {"Com::Doubler", "double_it", 0, true}, true);
  call.request().write_i32(1);
  call.invoke_post();

  // Drain: wait for the skel records to land.
  for (int i = 0; i < 500 && mon.store().size() < 4; ++i) {
    idle_for(kNanosPerMilli);
  }
  auto records = mon.store().snapshot();
  ASSERT_EQ(records.size(), 4u);
  // Stub pair on the parent chain, skel pair on the spawned chain.
  std::set<Uuid> chains;
  for (const auto& r : records) chains.insert(r.chain);
  EXPECT_EQ(chains.size(), 2u);
}

TEST_F(ComTest, PostToOwnApartmentDoesNotDeadlock) {
  // A servant posting to an object in its own STA: the envelope lands on
  // the apartment's own queue and runs after the current dispatch returns.
  class SelfPoster final : public ComServant {
   public:
    std::string_view interface_name() const override { return "Com::Self"; }
    ComDispatchResult com_dispatch(ComDispatchContext& ctx, MethodId method,
                                   WireCursor& in, WireBuffer& out) override {
      ComSkelGuard guard(
          ctx, monitor::CallIdentity{"Com::Self", method == 0 ? "kick" : "tick",
                                     ctx.object_id},
          in, true);
      if (method == 0) {
        ComCall call(*ctx.runtime, ctx.object_id, {"Com::Self", "tick", 1, true},
                     true);
        call.invoke_post();
      } else {
        ticks.fetch_add(1);
      }
      guard.body_end();
      guard.seal(out);
      return {};
    }
    std::atomic<int> ticks{0};
  };

  auto mon = make_monitor();
  ComRuntime rt(&mon);
  const ApartmentId sta = rt.create_sta();
  auto* poster = new SelfPoster();
  const ComObjectId obj = rt.register_object(sta, ComPtr<ComServant>(poster));

  ComCall kick(rt, obj, {"Com::Self", "kick", 0, false}, true);
  kick.invoke();
  for (int i = 0; i < 500 && poster->ticks.load() == 0; ++i) {
    idle_for(kNanosPerMilli);
  }
  EXPECT_EQ(poster->ticks.load(), 1);
}

TEST_F(ComTest, RuntimeShutdownFailsInFlightWaiters) {
  auto mon = make_monitor();
  ComRuntime rt(&mon);
  const ApartmentId sta = rt.create_sta();
  const ComObjectId obj = rt.register_object(
      sta, ComPtr<ComServant>(new Doubler(30 * kNanosPerMilli)));

  std::atomic<bool> finished{false};
  std::thread caller([&] {
    monitor::tss_clear();
    ComCall call(rt, obj, {"Com::Doubler", "double_it", 0, false}, true);
    call.request().write_i32(1);
    try {
      call.invoke();
    } catch (const ComError&) {
      // acceptable: shutdown raced the reply
    }
    finished = true;
  });
  idle_for(5 * kNanosPerMilli);
  rt.shutdown();
  caller.join();
  EXPECT_TRUE(finished.load());
}

// The headline experiment: STA multiplexing with the legacy (TSS-trusting)
// probe 4.  Channel hooks ON keeps every chain inside one worker interface;
// hooks OFF lets the chains mingle across transactions (paper Sec. 2.2).
class StaMinglingTest : public ComTest,
                        public ::testing::WithParamInterface<bool> {};

TEST_P(StaMinglingTest, LegacyProbe4) {
  const bool hooks = GetParam();
  auto mon = make_monitor();
  ComRuntime rt(&mon, /*channel_hooks=*/hooks);
  rt.set_strict_inout_ftl(false);  // the paper's vulnerable instrumentation

  const ApartmentId sta = rt.create_sta();
  const ApartmentId helper_sta = rt.create_sta();
  const ComObjectId helper = rt.register_object(
      helper_sta, ComPtr<ComServant>(new Doubler(40 * kNanosPerMilli)));
  const ComObjectId wa = rt.register_object(
      sta, ComPtr<ComServant>(new Chainer("Com::WorkerA", helper)));
  const ComObjectId wb = rt.register_object(
      sta, ComPtr<ComServant>(new Chainer("Com::WorkerB", helper)));

  auto drive = [&](ComObjectId target, std::string_view iface) {
    monitor::tss_clear();
    ComCall c(rt, target, {iface, "outer", 0, false}, true);
    c.request().write_i32(1);
    c.invoke();
  };

  std::thread t1([&] { drive(wa, "Com::WorkerA"); });
  idle_for(5 * kNanosPerMilli);
  std::thread t2([&] { drive(wb, "Com::WorkerB"); });
  t1.join();
  t2.join();

  // Group records by chain; check whether any chain mixes WorkerA and
  // WorkerB identities.
  std::map<Uuid, std::set<std::string_view>> workers_per_chain;
  for (const auto& r : mon.store().snapshot()) {
    if (r.interface_name == "Com::WorkerA" ||
        r.interface_name == "Com::WorkerB") {
      workers_per_chain[r.chain].insert(r.interface_name);
    }
  }
  bool mingled = false;
  for (const auto& [chain, workers] : workers_per_chain) {
    if (workers.size() > 1) mingled = true;
  }
  if (hooks) {
    EXPECT_FALSE(mingled)
        << "channel hooks must keep each transaction on its own chain";
  } else {
    EXPECT_TRUE(mingled)
        << "without hooks the STA multiplexing must mingle the chains";
  }
}

INSTANTIATE_TEST_SUITE_P(HooksOnOff, StaMinglingTest, ::testing::Bool(),
                         [](const auto& info) {
                           return info.param ? "HooksOn" : "HooksOff";
                         });

// Stress sweep: many client threads hammering STA- and MTA-hosted objects
// (sync calls + posts) must neither deadlock nor tangle chains.
class ComStressTest : public ComTest,
                      public ::testing::WithParamInterface<std::uint64_t> {};

TEST_P(ComStressTest, ConcurrentMixedTraffic) {
  auto mon = make_monitor();
  ComRuntime rt(&mon);
  const ApartmentId sta = rt.create_sta();
  const ApartmentId mta = rt.create_mta(2);
  const ApartmentId helper_sta = rt.create_sta();
  const ComObjectId helper =
      rt.register_object(helper_sta, ComPtr<ComServant>(new Doubler()));
  const ComObjectId sta_worker = rt.register_object(
      sta, ComPtr<ComServant>(new Chainer("Com::StaWorker", helper)));
  const ComObjectId mta_worker = rt.register_object(
      mta, ComPtr<ComServant>(new Chainer("Com::MtaWorker", helper)));

  constexpr int kThreads = 4;
  constexpr int kCallsEach = 8;
  std::atomic<int> failures{0};
  std::vector<std::thread> clients;
  const std::uint64_t seed = GetParam();
  for (int t = 0; t < kThreads; ++t) {
    clients.emplace_back([&, t] {
      for (int i = 0; i < kCallsEach; ++i) {
        monitor::tss_clear();  // one transaction (and chain) per call
        const bool use_sta = ((seed + t + i) % 2) == 0;
        const ComObjectId target = use_sta ? sta_worker : mta_worker;
        const std::string_view iface =
            use_sta ? "Com::StaWorker" : "Com::MtaWorker";
        if ((seed + i) % 5 == 0) {
          ComCall post(rt, helper, {"Com::Doubler", "double_it", 0, true},
                       true);
          post.request().write_i32(i);
          post.invoke_post();
          continue;
        }
        ComCall c(rt, target, {iface, "outer", 0, false}, true);
        c.request().write_i32(t * 100 + i);
        if (c.invoke().read_i32() != 2 * (t * 100 + i) + 1) {
          failures.fetch_add(1);
        }
      }
    });
  }
  for (auto& c : clients) c.join();
  EXPECT_EQ(failures.load(), 0);

  // Strict inout FTL (default): no chain may mix the two worker interfaces.
  std::map<Uuid, std::set<std::string_view>> per_chain;
  for (const auto& r : mon.store().snapshot()) {
    if (r.interface_name == "Com::StaWorker" ||
        r.interface_name == "Com::MtaWorker") {
      per_chain[r.chain].insert(r.interface_name);
    }
  }
  for (const auto& [chain, ifaces] : per_chain) {
    EXPECT_EQ(ifaces.size(), 1u) << "seed " << seed;
  }
  rt.shutdown();
}

INSTANTIATE_TEST_SUITE_P(Seeds, ComStressTest, ::testing::Values(1, 2, 3, 4));

TEST_F(ComTest, StrictInoutFtlUntanglesEvenWithoutHooks) {
  // Our stub protocol (FTL as a true inout parameter, latched in the stub)
  // subsumes the hooks for synchronous calls -- chains stay clean even with
  // hooks disabled.  This is strictly stronger than the paper's design.
  auto mon = make_monitor();
  ComRuntime rt(&mon, /*channel_hooks=*/false);

  const ApartmentId sta = rt.create_sta();
  const ApartmentId helper_sta = rt.create_sta();
  const ComObjectId helper = rt.register_object(
      helper_sta, ComPtr<ComServant>(new Doubler(40 * kNanosPerMilli)));
  const ComObjectId wa = rt.register_object(
      sta, ComPtr<ComServant>(new Chainer("Com::WorkerA", helper)));
  const ComObjectId wb = rt.register_object(
      sta, ComPtr<ComServant>(new Chainer("Com::WorkerB", helper)));

  auto drive = [&](ComObjectId target, std::string_view iface) {
    monitor::tss_clear();
    ComCall c(rt, target, {iface, "outer", 0, false}, true);
    c.request().write_i32(1);
    c.invoke();
  };
  std::thread t1([&] { drive(wa, "Com::WorkerA"); });
  idle_for(5 * kNanosPerMilli);
  std::thread t2([&] { drive(wb, "Com::WorkerB"); });
  t1.join();
  t2.join();

  std::map<Uuid, std::set<std::string_view>> workers_per_chain;
  for (const auto& r : mon.store().snapshot()) {
    if (r.interface_name == "Com::WorkerA" ||
        r.interface_name == "Com::WorkerB") {
      workers_per_chain[r.chain].insert(r.interface_name);
    }
  }
  for (const auto& [chain, workers] : workers_per_chain) {
    EXPECT_EQ(workers.size(), 1u);
  }
}

}  // namespace
}  // namespace causeway::com
