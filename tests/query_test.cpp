// Query-subsystem acceptance: tokenizer and parser (including every
// type-checking rejection), span pairing and aggregation semantics, and the
// catalog-driven planner pruning -- asserted through the QueryStats
// counters, not trusted.
#include "query/parser.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <string>
#include <vector>

#include "analysis/trace_io.h"
#include "query/engine.h"
#include "store/store.h"

namespace causeway::query {
namespace {

namespace fs = std::filesystem;

// ---------------------------------------------------------------- tokenizer

TEST(Tokenize, WordsOpsStringsAndParens) {
  const auto tokens = tokenize("count where iface == 'My::Iface' and x>=3us");
  std::vector<Token::Kind> kinds;
  for (const Token& t : tokens) kinds.push_back(t.kind);
  EXPECT_EQ(kinds, (std::vector<Token::Kind>{
                       Token::Kind::kWord, Token::Kind::kWord,
                       Token::Kind::kWord, Token::Kind::kOp,
                       Token::Kind::kString, Token::Kind::kWord,
                       Token::Kind::kWord, Token::Kind::kOp,
                       Token::Kind::kWord, Token::Kind::kEnd}));
  EXPECT_EQ(tokens[3].text, "==");
  EXPECT_EQ(tokens[4].text, "My::Iface");
  EXPECT_EQ(tokens[7].text, ">=");
  EXPECT_EQ(tokens[8].text, "3us");
}

TEST(Tokenize, RejectsUnterminatedStringAndStrayChars) {
  EXPECT_THROW(tokenize("count where iface == 'oops"), QueryError);
  EXPECT_THROW(tokenize("count ; drop"), QueryError);
  try {
    tokenize("count @");
    FAIL();
  } catch (const QueryError& e) {
    EXPECT_EQ(e.pos(), 6u);
    EXPECT_NE(std::string(e.what()).find("offset 6"), std::string::npos);
  }
}

// ------------------------------------------------------------------ parser

TEST(Parse, AggListWindowAndGroupBy) {
  const Query q = parse_query(
      "count, p95(latency), sum(latency) "
      "where iface == A::B group by func since 10us until 2ms");
  ASSERT_EQ(q.aggs.size(), 3u);
  EXPECT_EQ(q.aggs[0], AggFunc::kCount);
  EXPECT_EQ(q.aggs[1], AggFunc::kP95);
  EXPECT_EQ(q.aggs[2], AggFunc::kSum);
  ASSERT_TRUE(q.where);
  EXPECT_EQ(q.where->kind, Expr::Kind::kPred);
  EXPECT_EQ(q.where->pred.field, Field::kIface);
  EXPECT_EQ(q.where->pred.text, "A::B");
  ASSERT_TRUE(q.group_by.has_value());
  EXPECT_EQ(*q.group_by, Field::kFunc);
  EXPECT_EQ(q.since, std::optional<std::int64_t>(10'000));
  EXPECT_EQ(q.until, std::optional<std::int64_t>(2'000'000));
}

TEST(Parse, BooleanStructureAndNot) {
  const Query q = parse_query(
      "count where (iface =~ snap or func == get) and not outcome == ok");
  ASSERT_TRUE(q.where);
  ASSERT_EQ(q.where->kind, Expr::Kind::kAnd);
  ASSERT_EQ(q.where->args.size(), 2u);
  EXPECT_EQ(q.where->args[0]->kind, Expr::Kind::kOr);
  EXPECT_EQ(q.where->args[1]->kind, Expr::Kind::kNot);
  EXPECT_EQ(q.where->args[1]->args[0]->pred.field, Field::kOutcome);
}

TEST(Parse, NumberUnitsAndLatencyThreshold) {
  const Query q = parse_query("count where latency > 5ms");
  EXPECT_EQ(q.where->pred.number, 5'000'000);
  EXPECT_EQ(parse_query("count where latency > 7").where->pred.number, 7);
  EXPECT_EQ(parse_query("count where latency > 2s").where->pred.number,
            2'000'000'000);
}

TEST(Parse, ChainPredicateParsesUuid) {
  const Query q = parse_query(
      "count where chain == 01234567-89ab-cdef-0011-223344556677");
  EXPECT_EQ(q.where->pred.field, Field::kChain);
  EXPECT_EQ(q.where->pred.chain.hi, 0x0123456789abcdefull);
  EXPECT_EQ(q.where->pred.chain.lo, 0x0011223344556677ull);
}

TEST(Parse, RejectsMalformedQueries) {
  EXPECT_THROW(parse_query(""), QueryError);
  EXPECT_THROW(parse_query("frobnicate"), QueryError);          // unknown agg
  EXPECT_THROW(parse_query("p95"), QueryError);                 // missing (latency)
  EXPECT_THROW(parse_query("count where bogus == 1"), QueryError);
  EXPECT_THROW(parse_query("count where iface < x"), QueryError);   // order on string
  EXPECT_THROW(parse_query("count where latency =~ 3"), QueryError);  // match on num
  EXPECT_THROW(parse_query("count where chain > 1-2-3-4-5"), QueryError);
  EXPECT_THROW(parse_query("count where chain == notauuid"), QueryError);
  EXPECT_THROW(parse_query("count group by latency"), QueryError);  // numeric group
  EXPECT_THROW(parse_query("count where a == b where c == d"), QueryError);
  EXPECT_THROW(parse_query("count since 10 until 5"), QueryError);  // empty window
  EXPECT_THROW(parse_query("count where (iface == x"), QueryError);  // unclosed
  EXPECT_THROW(parse_query("count extra"), QueryError);  // trailing garbage
}

// ------------------------------------------------------------------ engine

Uuid uuid(std::uint64_t hi, std::uint64_t lo) {
  Uuid u;
  u.hi = hi;
  u.lo = lo;
  return u;
}

// One sync call: stub open/close around skel open/close.  Latency is
// close.value_start - open.value_end = 80ns with these stamps.
void add_call(monitor::CollectedLogs& logs, const Uuid& chain,
              std::uint64_t seq_base, std::int64_t base,
              std::string_view iface, std::string_view func,
              monitor::CallOutcome outcome,
              std::int64_t latency_pad = 0) {
  auto rec = [&](std::uint64_t seq, monitor::EventKind event,
                 std::string_view process, std::int64_t start,
                 std::int64_t end) {
    monitor::TraceRecord r;
    r.chain = chain;
    r.seq = seq_base + seq;
    r.event = event;
    r.kind = monitor::CallKind::kSync;
    r.outcome = outcome;
    r.interface_name = iface;
    r.function_name = func;
    r.object_key = 42;
    r.process_name = process;
    r.node_name = "node0";
    r.processor_type = "x86";
    r.thread_ordinal = 1;
    r.mode = monitor::ProbeMode::kLatency;
    r.value_start = start;
    r.value_end = end;
    logs.records.push_back(r);
  };
  rec(1, monitor::EventKind::kStubStart, "client", base, base + 10);
  rec(2, monitor::EventKind::kSkelStart, "server", base + 30, base + 40);
  rec(3, monitor::EventKind::kSkelEnd, "server", base + 50, base + 60);
  rec(4, monitor::EventKind::kStubEnd, "client", base + 90 + latency_pad,
      base + 100 + latency_pad);
}

monitor::CollectedLogs base_logs(std::uint64_t epoch) {
  monitor::CollectedLogs logs;
  logs.epoch = epoch;
  logs.domains.push_back({monitor::DomainIdentity{"client", "node0", "x86"},
                          monitor::ProbeMode::kLatency, 0});
  logs.domains.push_back({monitor::DomainIdentity{"server", "node0", "x86"},
                          monitor::ProbeMode::kLatency, 0});
  return logs;
}

// A scratch trace file with four calls across two interfaces; removed on
// destruction.
struct ScratchTrace {
  fs::path path;
  ScratchTrace() {
    path = fs::temp_directory_path() /
           ("causeway_query_" + std::to_string(::getpid()) + ".cwt");
    auto logs = base_logs(1);
    add_call(logs, uuid(1, 1), 0, 1'000, "Svc::Alpha", "get",
             monitor::CallOutcome::kOk);
    add_call(logs, uuid(1, 2), 10, 2'000, "Svc::Alpha", "put",
             monitor::CallOutcome::kOk, 100);
    add_call(logs, uuid(1, 3), 20, 3'000, "Svc::Beta", "get",
             monitor::CallOutcome::kAppError, 400);
    add_call(logs, uuid(1, 4), 30, 4'000, "Svc::Beta", "snap",
             monitor::CallOutcome::kOk, 900);
    analysis::write_trace_file(path.string(), logs);
  }
  ~ScratchTrace() { fs::remove(path); }
  std::vector<std::string> inputs() const { return {path.string()}; }
};

double value(const QueryResult& r, std::size_t row, std::size_t col) {
  return r.rows.at(row).values.at(col).value();
}

TEST(Engine, CountAndLatencyAggregates) {
  ScratchTrace t;
  // Each sync add_call pairs into one span (its stub open/close);
  // latency = close.value_start - open.value_end = 80 + pad.
  const QueryResult r = run_query(
      parse_query("count, min(latency), max(latency), sum(latency)"),
      t.inputs());
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(value(r, 0, 0), 4.0);
  EXPECT_EQ(value(r, 0, 1), 80.0);
  EXPECT_EQ(value(r, 0, 2), 980.0);
  EXPECT_EQ(value(r, 0, 3), 80 + 180 + 480 + 980);
  EXPECT_EQ(r.stats.spans_total, 4u);
  EXPECT_EQ(r.stats.spans_matched, 4u);
}

TEST(Engine, GroupByInterfaceIsSorted) {
  ScratchTrace t;
  const QueryResult r = run_query(
      parse_query("count, max(latency) group by iface"), t.inputs());
  ASSERT_EQ(r.rows.size(), 2u);
  EXPECT_EQ(r.rows[0].group, "Svc::Alpha");
  EXPECT_EQ(r.rows[1].group, "Svc::Beta");
  EXPECT_EQ(value(r, 0, 0), 2.0);
  EXPECT_EQ(value(r, 1, 1), 980.0);
  ASSERT_EQ(r.columns.size(), 3u);
  EXPECT_EQ(r.columns[0], "iface");
}

TEST(Engine, WhereFiltersAndPercentiles) {
  ScratchTrace t;
  {
    const QueryResult r = run_query(
        parse_query("count where func == get and outcome != ok"), t.inputs());
    EXPECT_EQ(value(r, 0, 0), 1.0);  // the Beta get call
  }
  {
    const QueryResult r =
        run_query(parse_query("count where latency > 100"), t.inputs());
    EXPECT_EQ(value(r, 0, 0), 3.0);  // latencies 180, 480, 980
  }
  {
    // p50 over the four spans [80, 180, 480, 980]: nearest-rank picks
    // the 2nd; p99 the 4th.
    const QueryResult r = run_query(
        parse_query("p50(latency), p99(latency) where process == client"),
        t.inputs());
    EXPECT_EQ(value(r, 0, 0), 180.0);
    EXPECT_EQ(value(r, 0, 1), 980.0);
  }
  {
    const QueryResult r = run_query(
        parse_query("count where iface =~ Beta or func == put"), t.inputs());
    EXPECT_EQ(value(r, 0, 0), 3.0);
  }
}

TEST(Engine, ChainEqualityAndWindow) {
  ScratchTrace t;
  {
    const QueryResult r = run_query(
        parse_query(
            "count where chain == 00000000-0000-0001-0000-000000000003"),
        t.inputs());
    EXPECT_EQ(value(r, 0, 0), 1.0);
  }
  {
    // Window [2000, 3200] keeps only the second call (opens at 2000,
    // closes at 2200); the first opens before, the third closes after.
    const QueryResult r =
        run_query(parse_query("count since 2000 until 3200"), t.inputs());
    EXPECT_EQ(value(r, 0, 0), 1.0);
  }
}

TEST(Engine, EmptyMatchYieldsCountZeroAndNullStats) {
  ScratchTrace t;
  const QueryResult r = run_query(
      parse_query("count, p95(latency) where iface == Absent"), t.inputs());
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(value(r, 0, 0), 0.0);
  EXPECT_FALSE(r.rows[0].values[1].has_value());
  EXPECT_NE(render_text(r).find("-"), std::string::npos);
}

TEST(Engine, RendersTextAndCsv) {
  ScratchTrace t;
  const QueryResult r = run_query(
      parse_query("count group by outcome"), t.inputs());
  const std::string text = render_text(r);
  EXPECT_NE(text.find("outcome"), std::string::npos);
  EXPECT_NE(text.find("app-error"), std::string::npos);
  const std::string csv = render_csv(r);
  EXPECT_NE(csv.find("outcome,count\n"), std::string::npos);
  EXPECT_NE(csv.find("ok,3\n"), std::string::npos);
}

TEST(Engine, MissingInputThrows) {
  EXPECT_THROW(
      run_query(parse_query("count"), {"/no/such/trace.cwt"}),
      analysis::TraceIoError);
}

// ------------------------------------------------------------- store plans

struct ScratchStore {
  fs::path path;
  explicit ScratchStore(const std::string& name, std::uint32_t format) {
    path = fs::temp_directory_path() /
           ("causeway_qstore_" + name + "_" + std::to_string(::getpid()));
    fs::remove_all(path);
    store::StoreOptions options;
    options.rotate_segments = 1;  // one sealed file per epoch
    options.trace_format = format;
    store::StoreWriter writer(path.string(), options);
    // Three sealed files with disjoint time ranges and distinct chains.
    for (std::uint64_t e = 1; e <= 3; ++e) {
      auto logs = base_logs(e);
      add_call(logs, uuid(0xaa, e), 0,
               static_cast<std::int64_t>(e) * 100'000, "Svc::Alpha", "get",
               monitor::CallOutcome::kOk);
      writer.append(logs);
    }
    writer.close();
  }
  ~ScratchStore() { fs::remove_all(path); }
  std::vector<std::string> inputs() const { return {path.string()}; }
};

TEST(Planner, TimeWindowPrunesWholeFiles) {
  ScratchStore s("window", analysis::kTraceFormatV4);
  const QueryResult r = run_query(
      parse_query("count since 200000 until 210000"), s.inputs());
  EXPECT_EQ(value(r, 0, 0), 1.0);  // the middle file's one call
  EXPECT_EQ(r.stats.files_total, 3u);
  EXPECT_EQ(r.stats.files_pruned, 2u);
  EXPECT_EQ(r.stats.files_opened, 1u);
  EXPECT_EQ(r.stats.segments_decoded, 1u);
  EXPECT_EQ(r.stats.records_scanned, 4u);
}

TEST(Planner, RequiredChainPrunesViaDigest) {
  ScratchStore s("chain", analysis::kTraceFormatV4);
  const QueryResult r = run_query(
      parse_query(
          "count where chain == 00000000-0000-00aa-0000-000000000002"),
      s.inputs());
  EXPECT_EQ(value(r, 0, 0), 1.0);
  EXPECT_EQ(r.stats.files_total, 3u);
  EXPECT_GE(r.stats.files_pruned, 2u);  // digest may-contain is exact here
  EXPECT_LE(r.stats.files_opened, 1u);
}

TEST(Planner, OredChainDoesNotPrune) {
  ScratchStore s("orchain", analysis::kTraceFormatV4);
  const QueryResult r = run_query(
      parse_query("count where chain == 00000000-0000-00aa-0000-000000000002 "
                  "or iface == Svc::Alpha"),
      s.inputs());
  EXPECT_EQ(value(r, 0, 0), 3.0);  // the or-arm matches every span
  EXPECT_EQ(r.stats.files_pruned, 0u);
  EXPECT_EQ(r.stats.files_opened, 3u);
}

TEST(Planner, CompressedAndUncompressedStoresAgreeByte) {
  ScratchStore v4("cmp4", analysis::kTraceFormatV4);
  ScratchStore v5("cmp5", analysis::kTraceFormatV5);
  const Query q = parse_query(
      "count, sum(latency), p95(latency) group by outcome");
  const QueryResult r4 = run_query(q, v4.inputs());
  const QueryResult r5 = run_query(q, v5.inputs());
  EXPECT_EQ(render_text(r5), render_text(r4));
  EXPECT_EQ(render_csv(r5), render_csv(r4));
}

TEST(Planner, StaleCatalogSurfacesCleanly) {
  ScratchStore s("stale", analysis::kTraceFormatV4);
  const auto victim = s.path / "store-000002.cwt";
  fs::resize_file(victim, fs::file_size(victim) - 1);
  try {
    run_query(parse_query("count"), s.inputs());
    FAIL() << "stale catalog must throw";
  } catch (const analysis::TraceIoError& e) {
    EXPECT_NE(std::string(e.what()).find("--reindex"), std::string::npos);
  }
}

}  // namespace
}  // namespace causeway::query
