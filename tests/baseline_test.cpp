#include <gtest/gtest.h>

#include <thread>

#include "baseline/flat_profiler.h"
#include "baseline/interceptor.h"
#include "baseline/trace_object.h"
#include "common/work.h"
#include "monitor/ftl.h"

namespace causeway::baseline {
namespace {

TEST(FlatProfiler, DepthOneArcsWithinAThread) {
  FlatProfiler profiler;
  {
    FlatProfiler::Scope f(profiler, "F");
    burn_cpu(500 * kNanosPerMicro);
    {
      FlatProfiler::Scope g(profiler, "G");
      burn_cpu(500 * kNanosPerMicro);
      {
        FlatProfiler::Scope h(profiler, "H");
        burn_cpu(200 * kNanosPerMicro);
      }
    }
  }
  auto arcs = profiler.arcs();
  // Depth-1 only: F->G and G->H exist; an F->H arc must NOT.
  bool fg = false, gh = false, fh = false;
  for (const auto& a : arcs) {
    if (a.caller == "F" && a.callee == "G") fg = true;
    if (a.caller == "G" && a.callee == "H") gh = true;
    if (a.caller == "F" && a.callee == "H") fh = true;
  }
  EXPECT_TRUE(fg);
  EXPECT_TRUE(gh);
  EXPECT_FALSE(fh);

  // Self CPU excludes children.
  for (const auto& e : profiler.flat_profile()) {
    if (e.function == "F") {
      EXPECT_LT(e.self_cpu, 900 * kNanosPerMicro);
      EXPECT_GT(e.self_cpu, 300 * kNanosPerMicro);
    }
  }
}

TEST(FlatProfiler, CrossThreadCallersAreLost) {
  // The gprof-style baseline cannot see that "parent" (thread 1) caused
  // "child" (thread 2): the child shows up as an orphan root.
  FlatProfiler profiler;
  {
    FlatProfiler::Scope parent(profiler, "parent");
    std::thread worker([&] {
      FlatProfiler::Scope child(profiler, "child");
      burn_cpu(100 * kNanosPerMicro);
    });
    worker.join();
  }
  EXPECT_GE(profiler.orphan_roots(), 2u);  // parent AND child are roots
  bool parent_child_arc = false;
  for (const auto& a : profiler.arcs()) {
    if (a.caller == "parent" && a.callee == "child") parent_child_arc = true;
  }
  EXPECT_FALSE(parent_child_arc);
}

TEST(TraceObject, GrowsLinearlyWithChainDepth) {
  TraceObject to;
  std::size_t last = to.encoded_size();
  for (int hop = 1; hop <= 100; ++hop) {
    to.add_hop({"Iface::Long::Name", "method_name", 7, hop});
    const std::size_t now = to.encoded_size();
    EXPECT_GT(now, last);
    last = now;
  }
  // vs the FTL, which is constant size at any depth.
  EXPECT_GT(last, 100 * 20u);
  EXPECT_EQ(monitor::kFtlTrailerSize, 28u);
}

TEST(TraceObject, EncodeDecodeRoundTrip) {
  TraceObject to;
  to.add_hop({"A", "f", 1, 100});
  to.add_hop({"B", "g", 2, 200});
  WireBuffer b;
  to.encode(b);
  WireCursor c(b);
  TraceObject back = TraceObject::decode(c);
  ASSERT_EQ(back.hops.size(), 2u);
  EXPECT_EQ(back.hops[0].interface_name, "A");
  EXPECT_EQ(back.hops[1].function_name, "g");
  EXPECT_EQ(back.hops[1].timestamp, 200);
}

TEST(Interceptor, ResolvesSameThreadNesting) {
  // parent serves on thread 5 in proc B over [100, 500]; child's client side
  // runs on that same thread within [200, 300]: resolvable.
  std::vector<AnchorRecord> records(2);
  records[0] = {"parent", 1, 5, "procA", "procB", 50, 100, 500, 550};
  records[1] = {"child", 5, 9, "procB", "procC", 200, 220, 280, 300};
  auto result = correlate_by_time(records);
  ASSERT_TRUE(result.parent[1].has_value());
  EXPECT_EQ(*result.parent[1], 0u);
  EXPECT_FALSE(result.parent[0].has_value());
}

TEST(Interceptor, AmbiguousWhenIntervalsOverlapOnSameThread) {
  // Two candidate parents both contain the child's interval on the same
  // thread: the heuristic must pick one (tightest) -- there is no ground
  // truth without causality capture, so it can be wrong.
  std::vector<AnchorRecord> records(3);
  records[0] = {"outer", 1, 5, "procA", "procB", 0, 10, 1000, 1010};
  records[1] = {"inner", 1, 5, "procA", "procB", 0, 100, 500, 510};
  records[2] = {"leaf", 5, 9, "procB", "procC", 200, 210, 290, 300};
  auto result = correlate_by_time(records);
  ASSERT_TRUE(result.parent[2].has_value());
  EXPECT_EQ(*result.parent[2], 1u);  // tightest wins, may or may not be true
}

TEST(Interceptor, CrossThreadChildIsUnresolvable) {
  // The child's client thread differs from every servant thread: no anchor
  // correlation possible -- the paper's core criticism of OVATION.
  std::vector<AnchorRecord> records(2);
  records[0] = {"parent", 1, 5, "procA", "procB", 0, 10, 1000, 1010};
  records[1] = {"orphan", 7, 9, "procB", "procC", 200, 210, 290, 300};
  auto result = correlate_by_time(records);
  EXPECT_FALSE(result.parent[1].has_value());
  EXPECT_EQ(result.unresolved, 2u);
}

}  // namespace
}  // namespace causeway::baseline
