// Tiered collection: publishers -> leaf collectd (RelaySink) -> root
// collectd (IngestSink).  The relay's contract is transparency -- the root
// must produce the same merged trace it would have produced with flat
// collection -- plus conservation: a relay-tier restart loses nothing the
// publishers managed to send.  Both suites run over Unix-domain sockets
// and TCP loopback, tier addresses alike.
#include <gtest/gtest.h>

#include <unistd.h>

#include <chrono>
#include <functional>
#include <memory>
#include <string>
#include <thread>

#include "analysis/pipeline.h"
#include "analysis/trace_io.h"
#include "monitor/tss.h"
#include "transport/endpoint.h"
#include "transport/ingest_sink.h"
#include "transport/publisher.h"
#include "transport/relay_sink.h"
#include "transport/subscriber.h"
#include "workload/synthetic.h"

namespace causeway {
namespace {

using transport::CollectorDaemon;
using transport::EndpointKind;
using transport::EpochPublisher;
using transport::IngestSink;
using transport::PublisherConfig;
using transport::RelaySink;

bool wait_for(const std::function<bool()>& pred,
              std::uint64_t timeout_ms = 10000) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  while (std::chrono::steady_clock::now() < deadline) {
    if (pred()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  return pred();
}

workload::SyntheticConfig synthetic_config(std::uint64_t seed) {
  workload::SyntheticConfig config;
  config.seed = seed;
  config.domains = 3;
  config.components = 9;
  config.interfaces = 5;
  config.methods_per_interface = 3;
  config.levels = 3;
  config.max_children = 2;
  config.monitor.mode = monitor::ProbeMode::kCausalityOnly;
  return config;
}

class RelayTest : public ::testing::TestWithParam<EndpointKind> {
 protected:
  void SetUp() override { monitor::tss_clear(); }
  void TearDown() override { monitor::tss_clear(); }

  std::string listen_spec(const char* name) {
    if (GetParam() == EndpointKind::kTcp) return "tcp:127.0.0.1:0";
    return "unix:" + ::testing::TempDir() + "cw_relay_" + name + "_" +
           std::to_string(::getpid()) + ".sock";
  }

  static std::string bound_address(const CollectorDaemon& daemon) {
    return daemon.listen_addresses().front().to_string();
  }
};

// Run one synthetic workload and publish it through `address`; returns the
// publisher's stats after a clean finish.  Sequential per publisher -- the
// monitor's thread-local state is per-workload -- but both identities
// traverse the same leaf, so the relay still multiplexes two routes.
EpochPublisher::Stats publish_workload(const std::string& address,
                                       const char* process_name,
                                       std::uint64_t seed) {
  orb::Fabric fabric;
  workload::SyntheticSystem system(fabric, synthetic_config(seed));
  monitor::Collector collector;
  system.attach_collector(collector);
  PublisherConfig config;
  config.address = address;
  config.process_name = process_name;
  config.interval_ms = 2;
  EpochPublisher publisher(collector, config);
  publisher.start();
  system.run_transactions(4);
  system.wait_quiescent();
  // Both hellos -- the leaf daemon's own and the root's, relayed down --
  // must land before this publisher leaves, so the cross-tier control
  // counters asserted below are deterministic, not a race against a
  // short-lived workload.
  EXPECT_TRUE(wait_for(
      [&] { return publisher.stats().directives_received >= 2; }))
      << process_name;
  EXPECT_TRUE(publisher.finish()) << process_name;
  const EpochPublisher::Stats stats = publisher.stats();
  EXPECT_EQ(stats.dropped_records, 0u) << process_name;
  monitor::tss_clear();
  return stats;
}

// Two publishers fan into a leaf relay; the root's merged trace must
// re-analyze to the same bytes as collecting both workloads in-process --
// the tier is invisible in the data.
TEST_P(RelayTest, RelayedMergeMatchesOfflineReference) {
  const std::string merged = ::testing::TempDir() + "cw_relay_merged_" +
                             transport::endpoint_kind_name(GetParam()) +
                             ".cwt";

  // Offline reference: both workloads collected in-process, ingested in
  // identity order -- the order the merged file's sorted groups replay in.
  std::string reference;
  std::size_t reference_records = 0;
  {
    analysis::AnalysisPipeline pipeline;
    for (const std::uint64_t seed : {101ull, 202ull}) {
      orb::Fabric fabric;
      workload::SyntheticSystem system(fabric, synthetic_config(seed));
      system.run_transactions(4);
      system.wait_quiescent();
      const monitor::CollectedLogs logs = system.collect();
      reference_records += logs.records.size();
      pipeline.ingest(logs);
      monitor::tss_clear();
    }
    reference = pipeline.report();
  }
  ASSERT_GT(reference_records, 0u);

  // Root tier: plain ingest, merged file.
  IngestSink::Options root_options;
  root_options.merged_path = merged;
  IngestSink root_sink(std::move(root_options));
  CollectorDaemon root({{listen_spec("root")}}, root_sink);
  root.start();

  // Leaf tier: relay everything upstream to the root.
  RelaySink::Options relay_options;
  relay_options.upstream = bound_address(root);
  RelaySink relay(relay_options);
  CollectorDaemon leaf({{listen_spec("leaf")}}, relay);
  relay.set_downstream(&leaf);
  leaf.start();
  const std::string leaf_address = bound_address(leaf);

  // "alpha" < "beta": identity order matches the reference's seed order.
  const EpochPublisher::Stats alpha =
      publish_workload(leaf_address, "alpha", 101);
  const EpochPublisher::Stats beta =
      publish_workload(leaf_address, "beta", 202);
  const std::uint64_t sent = alpha.records_sent + beta.records_sent;
  EXPECT_EQ(sent, reference_records);

  // Everything must traverse both tiers before the tiers come down --
  // the records, and each route's acknowledgement of the root's hello.
  ASSERT_TRUE(wait_for([&] { return root_sink.totals().records >= sent; }));
  ASSERT_TRUE(wait_for([&] { return root.stats().statuses_received >= 2; }));
  leaf.stop();
  EXPECT_TRUE(relay.finish());
  root.stop();

  const RelaySink::Totals relayed = relay.totals();
  EXPECT_EQ(relayed.routes, 2u);
  EXPECT_EQ(relayed.records_forwarded, sent);
  EXPECT_EQ(relayed.relay_dropped_records, 0u);
  // The root's hello crossed the relay once per route, and the resulting
  // acknowledgements flowed back up (waited on above).
  EXPECT_GE(relayed.directives_relayed, 2u);
  EXPECT_GE(relayed.statuses_forwarded, 2u);

  const IngestSink::Totals totals = root_sink.finalize();
  EXPECT_EQ(totals.records, sent);
  EXPECT_EQ(totals.publish_dropped_records, 0u);

  // The merged file is the acceptance artifact: byte-identical report.
  analysis::AnalysisPipeline from_file;
  analysis::read_trace_file(merged, from_file.database());
  from_file.refresh();
  EXPECT_EQ(from_file.report(), reference);
  ::unlink(merged.c_str());
}

// Kill and restart the relay tier mid-run: the publisher rides its own
// reconnect logic, the replacement relay re-routes to the root, and every
// record the publisher counted as sent arrives -- zero loss, no double
// counting.
TEST_P(RelayTest, ZeroLossAcrossRelayRestart) {
  IngestSink::Options root_options;
  IngestSink root_sink(std::move(root_options));
  CollectorDaemon root({{listen_spec("rr_root")}}, root_sink);
  root.start();
  const std::string upstream = bound_address(root);

  RelaySink::Options relay_options;
  relay_options.upstream = upstream;

  auto relay1 = std::make_unique<RelaySink>(relay_options);
  auto leaf1 = std::make_unique<CollectorDaemon>(
      CollectorDaemon::Options{{listen_spec("rr_leaf")}}, *relay1);
  relay1->set_downstream(leaf1.get());
  leaf1->start();
  // The replacement leaf must come back on the same concrete address.
  const std::string leaf_address = bound_address(*leaf1);

  orb::Fabric fabric;
  workload::SyntheticSystem system(fabric, synthetic_config(55));
  monitor::Collector collector;
  system.attach_collector(collector);
  PublisherConfig config;
  config.address = leaf_address;
  config.process_name = "phoenix";
  config.interval_ms = 2;
  config.reconnect_initial_ms = 1;
  config.reconnect_max_ms = 16;
  EpochPublisher publisher(collector, config);
  publisher.start();

  system.run_transactions(3);
  system.wait_quiescent();
  // Quiesce phase 1 end-to-end: nothing in flight when the tier dies.
  ASSERT_TRUE(wait_for([&] {
    const std::uint64_t sent = publisher.stats().records_sent;
    return sent > 0 && root_sink.totals().records >= sent;
  }));
  const std::uint64_t phase1 = root_sink.totals().records;

  leaf1->stop();
  EXPECT_TRUE(relay1->finish());
  leaf1.reset();
  relay1.reset();

  // Outage: the workload keeps producing; the publisher queues and retries.
  system.run_transactions(3);
  system.wait_quiescent();
  std::this_thread::sleep_for(std::chrono::milliseconds(20));

  RelaySink relay2(relay_options);
  CollectorDaemon leaf2({{leaf_address}}, relay2);
  relay2.set_downstream(&leaf2);
  leaf2.start();

  EXPECT_TRUE(publisher.finish());
  const EpochPublisher::Stats stats = publisher.stats();
  EXPECT_GE(stats.reconnects, 1u);
  EXPECT_EQ(stats.dropped_records, 0u);
  ASSERT_TRUE(
      wait_for([&] { return root_sink.totals().records >= stats.records_sent; }));
  leaf2.stop();
  EXPECT_TRUE(relay2.finish());
  root.stop();

  EXPECT_GE(root_sink.totals().records, phase1);
  EXPECT_EQ(root_sink.totals().records, stats.records_sent);
  EXPECT_EQ(root_sink.totals().publish_dropped_records, 0u);
  EXPECT_EQ(relay2.totals().relay_dropped_records, 0u);
  const IngestSink::Totals totals = root_sink.finalize();
  EXPECT_EQ(totals.records, stats.records_sent);
}

INSTANTIATE_TEST_SUITE_P(
    Transports, RelayTest,
    ::testing::Values(EndpointKind::kUnix, EndpointKind::kTcp),
    [](const ::testing::TestParamInfo<EndpointKind>& info) {
      return std::string(transport::endpoint_kind_name(info.param));
    });

}  // namespace
}  // namespace causeway
