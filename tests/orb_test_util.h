// Shared fixtures for ORB-level tests: a hand-written echo servant that
// follows the same guard protocol generated skeletons use.
#pragma once

#include <memory>
#include <string>

#include "common/work.h"
#include "orb/domain.h"
#include "orb/stubs.h"

namespace causeway::orb::testutil {

// Methods: 0 echo(string)->string, 1 add(i32,i32)->i32, 2 boom() throws,
// 3 oneway ping(string), 4 slow(i64 ns idle)->void, 5 burn(i64 cpu ns)->void.
class EchoServant final : public Servant {
 public:
  explicit EchoServant(bool instrumented = true)
      : instrumented_(instrumented) {}

  std::string_view interface_name() const override { return "Test::Echo"; }

  int ping_count() const { return ping_count_.load(); }

  DispatchResult dispatch(DispatchContext& ctx, MethodId method,
                          WireCursor& in, WireBuffer& out) override {
    static constexpr std::string_view kNames[] = {"echo", "add",  "boom",
                                                  "ping", "slow", "burn"};
    const std::string_view name = method < 6 ? kNames[method] : "?";
    SkeletonGuard guard(ctx,
                        monitor::CallIdentity{"Test::Echo", name,
                                              ctx.object_key},
                        in, instrumented_);
    DispatchResult r;
    switch (method) {
      case 0: {
        const std::string s = in.read_string();
        guard.body_end();
        out.write_string(s + "!");
        break;
      }
      case 1: {
        const std::int32_t a = in.read_i32();
        const std::int32_t b = in.read_i32();
        guard.body_end();
        out.write_i32(a + b);
        break;
      }
      case 2: {
        guard.body_end(monitor::CallOutcome::kAppError);
        r.status = ReplyStatus::kAppError;
        r.error_name = "Test::Boom";
        r.error_text = "requested failure";
        break;
      }
      case 3: {
        const std::string s = in.read_string();
        (void)s;
        ping_count_.fetch_add(1);
        guard.body_end();
        break;
      }
      case 4: {
        const std::int64_t ns = in.read_i64();
        idle_for(ns);
        guard.body_end();
        break;
      }
      case 5: {
        const std::int64_t ns = in.read_i64();
        burn_cpu(ns);
        guard.body_end();
        break;
      }
      default:
        guard.body_end();
        r.status = ReplyStatus::kSystemError;
        r.error_text = "unknown method";
    }
    guard.seal(out);
    return r;
  }

 private:
  bool instrumented_;
  std::atomic<int> ping_count_{0};
};

inline MethodSpec echo_spec() { return {"Test::Echo", "echo", 0, false}; }
inline MethodSpec add_spec() { return {"Test::Echo", "add", 1, false}; }
inline MethodSpec boom_spec() { return {"Test::Echo", "boom", 2, false}; }
inline MethodSpec ping_spec() { return {"Test::Echo", "ping", 3, true}; }
inline MethodSpec slow_spec() { return {"Test::Echo", "slow", 4, false}; }
inline MethodSpec burn_spec() { return {"Test::Echo", "burn", 5, false}; }

inline DomainOptions options(std::string name,
                             PolicyKind policy = PolicyKind::kThreadPool) {
  DomainOptions opts;
  opts.process_name = std::move(name);
  opts.policy = policy;
  opts.pool_size = 2;
  return opts;
}

}  // namespace causeway::orb::testutil
